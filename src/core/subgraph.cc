#include "core/subgraph.h"

#include <algorithm>

#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using graph::weight_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::Lanes;

/// Counts, per source vertex, the edges appearing in the CSC (one thread
/// per CSC entry; scattered atomics — the conversion's irregular phase).
KernelTask CscCountKernel(Ctx& c, DevPtr<vid_t> csc_col, DevPtr<uint32_t> deg,
                          uint64_t num_entries) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, num_entries), [&](Ctx& c) {
    auto src = c.Load(csc_col, tid);
    c.AtomicAdd(deg, src, c.Splat<uint32_t>(1));
  });
  co_return;
}

/// Scatters CSC entries into CSR order using per-source cursors.
KernelTask CscScatterKernel(Ctx& c, DevPtr<eid_t> csc_row,
                            DevPtr<vid_t> csc_col, DevPtr<weight_t> csc_w,
                            DevPtr<uint32_t> cursor, DevPtr<vid_t> csr_col,
                            DevPtr<weight_t> csr_w, uint32_t num_vertices) {
  auto v = c.GlobalThreadId();
  c.If(c.Lt(v, num_vertices), [&](Ctx& c) {
    auto begin = c.Load(csc_row, v);
    auto end = c.Load(csc_row, c.Add(v, 1u));
    c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
      auto src = c.Load(csc_col, e);
      auto w = c.Load(csc_w, e);
      auto pos = c.AtomicAdd(cursor, src, c.Splat<uint32_t>(1));
      c.Store(csr_col, pos, v);
      c.Store(csr_w, pos, w);
    });
  });
  co_return;
}

/// Marks the selected vertices.
KernelTask MarkKernel(Ctx& c, DevPtr<vid_t> selected, DevPtr<uint32_t> flags,
                      uint64_t count) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, count), [&](Ctx& c) {
    auto v = c.Load(selected, tid);
    c.Store(flags, v, c.Splat<uint32_t>(1));
  });
  co_return;
}

/// Emits the induced edges as renumbered COO triples (the branch-heavy
/// heart of ESBV: two flag tests and an atomic per candidate edge).
KernelTask EmitKernel(Ctx& c, DevPtr<uint32_t> csr_row32, DevPtr<vid_t> csr_col,
                      DevPtr<weight_t> csr_w, DevPtr<uint32_t> flags,
                      DevPtr<uint32_t> map, DevPtr<vid_t> coo_src,
                      DevPtr<vid_t> coo_dst, DevPtr<weight_t> coo_w,
                      DevPtr<uint32_t> coo_count, uint32_t num_vertices) {
  auto u = c.GlobalThreadId();
  c.If(c.Lt(u, num_vertices), [&](Ctx& c) {
    auto selected = c.Load(flags, u);
    c.If(c.Eq(selected, 1u), [&](Ctx& c) {
      auto begin = c.Load(csr_row32, u);
      auto end = c.Load(csr_row32, c.Add(u, 1u));
      auto new_u = c.Load(map, u);
      c.For(begin, end, [&](Ctx& c, const Lanes<uint32_t>& e) {
        auto v = c.Load(csr_col, e);
        auto v_selected = c.Load(flags, v);
        c.If(c.Eq(v_selected, 1u), [&](Ctx& c) {
          auto w = c.Load(csr_w, e);
          auto new_v = c.Load(map, v);
          auto pos =
              c.AtomicAdd(coo_count, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
          c.Store(coo_src, pos, new_u);
          c.Store(coo_dst, pos, new_v);
          c.Store(coo_w, pos, w);
        });
      });
    });
  });
  co_return;
}

/// Per-output-vertex degree of the COO (thread per COO entry).
KernelTask CooCountKernel(Ctx& c, DevPtr<vid_t> coo_src, DevPtr<uint32_t> deg,
                          uint64_t num_entries) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, num_entries), [&](Ctx& c) {
    auto src = c.Load(coo_src, tid);
    c.AtomicAdd(deg, src, c.Splat<uint32_t>(1));
  });
  co_return;
}

/// Builds the CSR-order permutation of COO entries (counting-sort scatter
/// phase of the cusparse-style argsort conversion).
KernelTask CooPermKernel(Ctx& c, DevPtr<vid_t> coo_src,
                         DevPtr<uint32_t> cursor, DevPtr<uint32_t> perm,
                         uint64_t num_entries) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, num_entries), [&](Ctx& c) {
    auto src = c.Load(coo_src, tid);
    auto pos = c.AtomicAdd(cursor, src, c.Splat<uint32_t>(1));
    c.Store(perm, pos, c.Cast<uint32_t>(tid));
  });
  co_return;
}

/// Out-of-place gather of (dst, weight) through the permutation.
KernelTask CooGatherKernel(Ctx& c, DevPtr<uint32_t> perm,
                           DevPtr<vid_t> coo_dst, DevPtr<weight_t> coo_w,
                           DevPtr<vid_t> out_col, DevPtr<weight_t> out_w,
                           uint64_t num_entries) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, num_entries), [&](Ctx& c) {
    auto e = c.Load(perm, tid);
    c.Store(out_col, tid, c.Load(coo_dst, e));
    c.Store(out_w, tid, c.Load(coo_w, e));
  });
  co_return;
}

/// Finds the source vertex of each selected edge by binary search over the
/// row offsets (the CSR has no reverse edge->src map), then marks both
/// endpoints.  Per-lane divergent search — the extraction family's
/// signature branching.
KernelTask EsbeMarkKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                          DevPtr<uint32_t> edge_list, DevPtr<vid_t> edge_src,
                          DevPtr<uint32_t> flags, uint32_t num_vertices,
                          uint64_t num_selected) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, num_selected), [&](Ctx& c) {
    auto e = c.Cast<eid_t>(c.Load(edge_list, tid));
    // src = last u with row[u] <= e: binary search for upper bound.
    auto lo = c.Splat<uint32_t>(0);
    auto hi = c.Splat<uint32_t>(num_vertices);
    c.While(
        [&](Ctx& c) {
          return c.Lt(c.Add(lo, 1u), hi);
        },
        [&](Ctx& c) {
          auto mid = c.Add(lo, c.Shr(c.Sub(hi, lo), 1u));
          auto off = c.Load(row, mid);
          c.IfElse(
              c.Le(off, e), [&](Ctx& c) { c.Assign(&lo, mid); },
              [&](Ctx& c) { c.Assign(&hi, mid); });
        });
    auto dst = c.Load(col, e);
    c.Store(edge_src, tid, lo);
    c.Store(flags, lo, c.Splat<uint32_t>(1));
    c.Store(flags, dst, c.Splat<uint32_t>(1));
  });
  co_return;
}

/// Per-output-vertex degree of the selected edges.
KernelTask EsbeCountKernel(Ctx& c, DevPtr<vid_t> edge_src, DevPtr<uint32_t> map,
                           DevPtr<uint32_t> deg, uint64_t num_selected) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, num_selected), [&](Ctx& c) {
    auto src = c.Load(edge_src, tid);
    auto new_src = c.Load(map, src);
    c.AtomicAdd(deg, new_src, c.Splat<uint32_t>(1));
  });
  co_return;
}

/// Scatters the selected edges into the output CSR (renumbered).
KernelTask EsbeScatterKernel(Ctx& c, DevPtr<vid_t> col, DevPtr<weight_t> w,
                             DevPtr<uint32_t> edge_list, DevPtr<vid_t> edge_src,
                             DevPtr<uint32_t> map, DevPtr<uint32_t> cursor,
                             DevPtr<vid_t> out_col, DevPtr<weight_t> out_w,
                             uint64_t num_selected) {
  const bool weighted = !w.is_null();
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, num_selected), [&](Ctx& c) {
    auto e = c.Cast<eid_t>(c.Load(edge_list, tid));
    auto new_src = c.Load(map, c.Load(edge_src, tid));
    auto pos = c.AtomicAdd(cursor, new_src, c.Splat<uint32_t>(1));
    c.Store(out_col, pos, c.Load(map, c.Load(col, e)));
    if (weighted) c.Store(out_w, pos, c.Load(w, e));
  });
  co_return;
}

}  // namespace

std::vector<vid_t> SelectPseudoCluster(vid_t num_vertices, double fraction,
                                       uint64_t seed) {
  std::vector<vid_t> out;
  double threshold = std::clamp(fraction, 0.0, 1.0) * 4294967296.0;
  for (vid_t v = 0; v < num_vertices; ++v) {
    uint64_t h = (v + seed + 1) * 2654435761ull;
    h ^= h >> 16;
    if (static_cast<double>(h & 0xFFFFFFFFull) < threshold) out.push_back(v);
  }
  return out;
}

Result<EsbvResult> ExtractSubgraphByVertex(vgpu::Device* device,
                                           const graph::CsrGraph& g,
                                           const EsbvOptions& options,
                                           GraphResidency* residency) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  if (n == 0) return Status::InvalidArgument("ESBV on empty graph");
  if (!g.has_weights()) {
    return Status::InvalidArgument(
        "ESBV requires edge weights (paper §4.5); attach them first");
  }
  for (vid_t v : options.vertices) {
    if (v >= n) {
      return Status::InvalidArgument("selected vertex out of range");
    }
  }

  trace::Span algo_span(device->trace_track(), "algo:esbv", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("selected", static_cast<uint64_t>(options.vertices.size()));

  // --- Library-native storage: the CSC of g, weights included -----------
  ADGRAPH_ASSIGN_OR_RETURN(
      ResidentCsr staged,
      Stage(residency, device, g, GraphVariant::kCscWeighted));
  const DeviceCsr& csc = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(
      auto selected, rt::DeviceBuffer<vid_t>::FromHost(device, options.vertices));

  // --- Working allocations (the ~44 B/edge set; see DESIGN.md) ----------
  ADGRAPH_ASSIGN_OR_RETURN(auto csr_row32,
                           rt::DeviceBuffer<uint32_t>::Create(device, n + 1));
  ADGRAPH_ASSIGN_OR_RETURN(auto csr_col,
                           rt::DeviceBuffer<vid_t>::Create(device, m));
  ADGRAPH_ASSIGN_OR_RETURN(auto csr_w,
                           rt::DeviceBuffer<weight_t>::Create(device, m));
  ADGRAPH_ASSIGN_OR_RETURN(auto cursor,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto flags,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto map,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  // Conservative full-size intermediate COO (nvGRAPH-style; extraction size
  // is unknown until the emit pass completes).
  ADGRAPH_ASSIGN_OR_RETURN(auto coo_src,
                           rt::DeviceBuffer<vid_t>::Create(device, m));
  ADGRAPH_ASSIGN_OR_RETURN(auto coo_dst,
                           rt::DeviceBuffer<vid_t>::Create(device, m));
  ADGRAPH_ASSIGN_OR_RETURN(auto coo_w,
                           rt::DeviceBuffer<weight_t>::Create(device, m));
  ADGRAPH_ASSIGN_OR_RETURN(auto coo_count,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));
  // Conversion permutation, conservatively sized like the COO (the
  // cusparse coo2csr + gather path's working set).
  ADGRAPH_ASSIGN_OR_RETURN(auto coo_perm,
                           rt::DeviceBuffer<uint32_t>::Create(device, m));

  rt::DeviceTimer timer(device);
  const uint32_t bs = options.block_size;

  // --- Phase 1: on-device CSC -> CSR conversion --------------------------
  ADGRAPH_RETURN_NOT_OK(
      primitives::Fill<uint32_t>(device, cursor.ptr(), n, 0));
  ADGRAPH_RETURN_NOT_OK(
      device
          ->Launch("esbv_csc_count", rt::CoverThreads(m, bs),
                   [&](Ctx& c) {
                     return CscCountKernel(c, csc.col_indices.ptr(),
                                           cursor.ptr(), m);
                   })
          .status());
  ADGRAPH_ASSIGN_OR_RETURN(
      uint64_t total_edges,
      primitives::ExclusiveScanU32(device, cursor.ptr(), csr_row32.ptr(), n));
  ADGRAPH_RETURN_NOT_OK(primitives::SetElement<uint32_t>(
      device, csr_row32.ptr(), n, static_cast<uint32_t>(total_edges)));
  ADGRAPH_RETURN_NOT_OK(device->CopyDeviceToDevice(
      cursor.ptr(), csr_row32.ptr(), n));
  ADGRAPH_RETURN_NOT_OK(
      device
          ->Launch("esbv_csc_scatter", rt::CoverThreads(n, bs),
                   [&](Ctx& c) {
                     return CscScatterKernel(
                         c, csc.row_offsets.ptr(), csc.col_indices.ptr(),
                         csc.weights.ptr(), cursor.ptr(), csr_col.ptr(),
                         csr_w.ptr(), n);
                   })
          .status());

  // --- Phase 2: mark + renumber ------------------------------------------
  ADGRAPH_RETURN_NOT_OK(primitives::Fill<uint32_t>(device, flags.ptr(), n, 0));
  if (!options.vertices.empty()) {
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("esbv_mark",
                     rt::CoverThreads(options.vertices.size(), bs),
                     [&](Ctx& c) {
                       return MarkKernel(c, selected.ptr(), flags.ptr(),
                                         options.vertices.size());
                     })
            .status());
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      uint64_t num_selected,
      primitives::ExclusiveScanU32(device, flags.ptr(), map.ptr(), n));

  // --- Phase 3: emit induced edges as renumbered COO ----------------------
  ADGRAPH_RETURN_NOT_OK(
      primitives::SetElement<uint32_t>(device, coo_count.ptr(), 0, 0));
  ADGRAPH_RETURN_NOT_OK(
      device
          ->Launch("esbv_emit", rt::CoverThreads(n, bs),
                   [&](Ctx& c) {
                     return EmitKernel(c, csr_row32.ptr(), csr_col.ptr(),
                                       csr_w.ptr(), flags.ptr(), map.ptr(),
                                       coo_src.ptr(), coo_dst.ptr(),
                                       coo_w.ptr(), coo_count.ptr(), n);
                   })
          .status());
  ADGRAPH_ASSIGN_OR_RETURN(
      uint32_t out_edges,
      primitives::GetElement<uint32_t>(device, coo_count.ptr(), 0));

  // --- Phase 4: on-device COO -> CSR rebuild ------------------------------
  const uint64_t k = num_selected;
  ADGRAPH_ASSIGN_OR_RETURN(auto out_row32,
                           rt::DeviceBuffer<uint32_t>::Create(device, k + 1));
  ADGRAPH_ASSIGN_OR_RETURN(auto out_col,
                           rt::DeviceBuffer<vid_t>::Create(device, out_edges));
  ADGRAPH_ASSIGN_OR_RETURN(
      auto out_w, rt::DeviceBuffer<weight_t>::Create(device, out_edges));
  ADGRAPH_ASSIGN_OR_RETURN(auto out_cursor,
                           rt::DeviceBuffer<uint32_t>::Create(device, k));
  ADGRAPH_RETURN_NOT_OK(
      primitives::Fill<uint32_t>(device, out_cursor.ptr(), k, 0));
  if (out_edges > 0) {
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("esbv_coo_count", rt::CoverThreads(out_edges, bs),
                     [&](Ctx& c) {
                       return CooCountKernel(c, coo_src.ptr(),
                                             out_cursor.ptr(), out_edges);
                     })
            .status());
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      uint64_t check_total,
      primitives::ExclusiveScanU32(device, out_cursor.ptr(), out_row32.ptr(),
                                   k));
  if (check_total != out_edges) {
    return Status::Internal("ESBV edge-count mismatch in COO->CSR rebuild");
  }
  ADGRAPH_RETURN_NOT_OK(primitives::SetElement<uint32_t>(
      device, out_row32.ptr(), k, out_edges));
  ADGRAPH_RETURN_NOT_OK(
      device->CopyDeviceToDevice(out_cursor.ptr(), out_row32.ptr(), k));
  if (out_edges > 0) {
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("esbv_coo_perm", rt::CoverThreads(out_edges, bs),
                     [&](Ctx& c) {
                       return CooPermKernel(c, coo_src.ptr(),
                                            out_cursor.ptr(), coo_perm.ptr(),
                                            out_edges);
                     })
            .status());
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("esbv_coo_gather", rt::CoverThreads(out_edges, bs),
                     [&](Ctx& c) {
                       return CooGatherKernel(c, coo_perm.ptr(),
                                              coo_dst.ptr(), coo_w.ptr(),
                                              out_col.ptr(), out_w.ptr(),
                                              out_edges);
                     })
            .status());
  }

  EsbvResult result;
  result.time_ms = timer.ElapsedMs();
  result.subgraph_vertices = k;
  result.subgraph_edges = out_edges;

  // --- Download and package the subgraph ---------------------------------
  ADGRAPH_ASSIGN_OR_RETURN(std::vector<uint32_t> h_row32, out_row32.ToHost());
  ADGRAPH_ASSIGN_OR_RETURN(std::vector<vid_t> h_col, out_col.ToHost());
  ADGRAPH_ASSIGN_OR_RETURN(std::vector<weight_t> h_w, out_w.ToHost());
  std::vector<eid_t> h_row(h_row32.begin(), h_row32.end());
  ADGRAPH_ASSIGN_OR_RETURN(
      result.subgraph,
      graph::CsrGraph::FromArrays(static_cast<vid_t>(k), std::move(h_row),
                                  std::move(h_col), std::move(h_w)));
  return result;
}


Result<EsbeResult> ExtractSubgraphByEdge(vgpu::Device* device,
                                         const graph::CsrGraph& g,
                                         const EsbeOptions& options) {
  const vid_t n = g.num_vertices();
  const eid_t m = g.num_edges();
  if (n == 0) return Status::InvalidArgument("ESBE on empty graph");
  if (m > 0xFFFFFFFFull) {
    return Status::InvalidArgument("ESBE device path limited to 2^32 edges");
  }
  for (eid_t e : options.edges) {
    if (e >= m) return Status::InvalidArgument("selected edge out of range");
  }
  const uint64_t num_selected = options.edges.size();
  std::vector<uint32_t> edges32(options.edges.begin(), options.edges.end());

  ADGRAPH_ASSIGN_OR_RETURN(DeviceCsr input, DeviceCsr::Upload(device, g));
  ADGRAPH_ASSIGN_OR_RETURN(
      auto edge_list, rt::DeviceBuffer<uint32_t>::FromHost(device, edges32));
  ADGRAPH_ASSIGN_OR_RETURN(
      auto edge_src,
      rt::DeviceBuffer<vid_t>::Create(device, std::max<uint64_t>(num_selected, 1)));
  ADGRAPH_ASSIGN_OR_RETURN(auto flags,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto map,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));

  rt::DeviceTimer timer(device);
  const uint32_t bs = options.block_size;
  ADGRAPH_RETURN_NOT_OK(primitives::Fill<uint32_t>(device, flags.ptr(), n, 0));
  if (num_selected > 0) {
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("esbe_mark", rt::CoverThreads(num_selected, bs),
                     [&](Ctx& c) {
                       return EsbeMarkKernel(c, input.row_offsets.ptr(),
                                             input.col_indices.ptr(),
                                             edge_list.ptr(), edge_src.ptr(),
                                             flags.ptr(), n, num_selected);
                     })
            .status());
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      uint64_t k,
      primitives::ExclusiveScanU32(device, flags.ptr(), map.ptr(), n));

  ADGRAPH_ASSIGN_OR_RETURN(auto out_row32,
                           rt::DeviceBuffer<uint32_t>::Create(device, k + 1));
  ADGRAPH_ASSIGN_OR_RETURN(
      auto out_col,
      rt::DeviceBuffer<vid_t>::Create(device, std::max<uint64_t>(num_selected, 1)));
  rt::DeviceBuffer<weight_t> out_w;
  if (g.has_weights()) {
    ADGRAPH_ASSIGN_OR_RETURN(
        out_w, rt::DeviceBuffer<weight_t>::Create(
                   device, std::max<uint64_t>(num_selected, 1)));
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      auto out_cursor,
      rt::DeviceBuffer<uint32_t>::Create(device, std::max<uint64_t>(k, 1)));
  ADGRAPH_RETURN_NOT_OK(
      primitives::Fill<uint32_t>(device, out_cursor.ptr(), k, 0));
  if (num_selected > 0) {
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("esbe_count", rt::CoverThreads(num_selected, bs),
                     [&](Ctx& c) {
                       return EsbeCountKernel(c, edge_src.ptr(), map.ptr(),
                                              out_cursor.ptr(), num_selected);
                     })
            .status());
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      uint64_t total,
      primitives::ExclusiveScanU32(device, out_cursor.ptr(), out_row32.ptr(),
                                   k));
  if (total != num_selected) {
    return Status::Internal("ESBE edge-count mismatch");
  }
  ADGRAPH_RETURN_NOT_OK(primitives::SetElement<uint32_t>(
      device, out_row32.ptr(), k, static_cast<uint32_t>(num_selected)));
  ADGRAPH_RETURN_NOT_OK(
      device->CopyDeviceToDevice(out_cursor.ptr(), out_row32.ptr(), k));
  if (num_selected > 0) {
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("esbe_scatter", rt::CoverThreads(num_selected, bs),
                     [&](Ctx& c) {
                       return EsbeScatterKernel(
                           c, input.col_indices.ptr(),
                           g.has_weights() ? input.weights.ptr()
                                           : DevPtr<weight_t>{},
                           edge_list.ptr(), edge_src.ptr(), map.ptr(),
                           out_cursor.ptr(), out_col.ptr(),
                           g.has_weights() ? out_w.ptr()
                                           : DevPtr<weight_t>{},
                           num_selected);
                     })
            .status());
  }

  EsbeResult result;
  result.time_ms = timer.ElapsedMs();
  result.subgraph_vertices = k;
  result.subgraph_edges = num_selected;

  ADGRAPH_ASSIGN_OR_RETURN(std::vector<uint32_t> h_row32, out_row32.ToHost());
  std::vector<eid_t> h_row(h_row32.begin(), h_row32.end());
  std::vector<vid_t> h_col(num_selected);
  std::vector<weight_t> h_w;
  if (num_selected > 0) {
    ADGRAPH_RETURN_NOT_OK(out_col.Download(h_col.data(), num_selected));
    if (g.has_weights()) {
      h_w.resize(num_selected);
      ADGRAPH_RETURN_NOT_OK(out_w.Download(h_w.data(), num_selected));
    }
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      result.subgraph,
      graph::CsrGraph::FromArrays(static_cast<vid_t>(k), std::move(h_row),
                                  std::move(h_col), std::move(h_w)));
  return result;
}

}  // namespace adgraph::core
