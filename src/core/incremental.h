#ifndef ADGRAPH_CORE_INCREMENTAL_H_
#define ADGRAPH_CORE_INCREMENTAL_H_

#include <cstdint>
#include <string>

#include "core/api.h"
#include "graph/delta.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

/// Knobs of the incremental recompute entry point (DESIGN.md §2.12).
struct IncrementalOptions {
  /// Fall back to full recompute when the delta touches more than this
  /// fraction of the snapshot's edges — past that point re-expansion does
  /// comparable work to a cold run without its memory locality.
  double full_threshold = 0.01;
  /// Force the full-recompute path (measurement baseline).
  bool force_full = false;
  uint32_t block_size = 256;
};

/// What RunIncremental actually did, for callers that report or assert on
/// the path taken.
struct IncrementalInfo {
  bool incremental = false;      ///< true = delta path ran on the device
  std::string fallback_reason;   ///< why full recompute ran ("" if not)
  uint64_t updates_applied = 0;  ///< delta length consumed
  uint64_t seed_vertices = 0;    ///< vertices seeding the re-expansion
};

/// \brief Incremental recompute over a mutated graph: recomputes
/// `spec.algo` on `delta`'s current snapshot, warm-starting from `previous`
/// (the result computed when the graph was at `previous_version`).
///
/// Supported delta paths — each produces the *same fixpoint* a full
/// recompute lands on:
///
///  * **BFS** (insert-only deltas, levels): previous levels upload as-is;
///    the frontier seeds with the endpoints the inserts improved and the
///    engine's push advance relaxes `level[v] > level[u] + 1` to
///    convergence.  Levels, depth, and vertices_visited are byte-identical
///    to a full run (shortest-path distances are a unique fixpoint);
///    iteration counters reflect the incremental rounds.
///  * **CC** (insert-only deltas): previous labels upload as-is; endpoints
///    of label-bridging inserts seed min-label propagation on the
///    symmetrized snapshot.  Labels and num_components are byte-identical.
///  * **PageRank** (any delta): re-iterates the exact full-recompute kernel
///    sequence from the previous rank vector instead of 1/n.  Converges in
///    fewer iterations for small deltas; ranks agree with a cold run to
///    the configured tolerance (not bitwise — FP iteration from a
///    different start; DESIGN.md §2.12 documents this deviation).
///
/// Everything else — deletions for BFS/CC, parents, version history gaps,
/// deltas over `options.full_threshold`, other algorithms — falls back to
/// core::Run on the snapshot (info->fallback_reason says why).  The
/// returned payload is therefore always usable, whichever path ran.
Result<AlgoResult> RunIncremental(vgpu::Device* device, const AlgoSpec& spec,
                                  graph::DeltaGraph& delta,
                                  const Params& params,
                                  const AlgoResult& previous,
                                  uint64_t previous_version,
                                  const IncrementalOptions& options = {},
                                  GraphResidency* residency = nullptr,
                                  IncrementalInfo* info = nullptr);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_INCREMENTAL_H_
