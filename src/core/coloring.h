#ifndef ADGRAPH_CORE_COLORING_H_
#define ADGRAPH_CORE_COLORING_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

struct ColoringOptions {
  uint64_t seed = 1;  ///< priority hash seed (determinism knob)
  uint32_t block_size = 256;
};

struct ColoringResult {
  /// Per-vertex color; adjacent vertices (undirected interpretation)
  /// always differ.
  std::vector<uint32_t> colors;
  uint32_t num_colors = 0;
  uint32_t rounds = 0;
  double time_ms = 0;
};

/// Jones-Plassmann greedy graph coloring: each round, vertices whose
/// hashed priority beats all uncolored neighbors take the smallest color
/// unused among colored neighbors.  The hybrid-coloring scheduling
/// primitive behind systems like Frog (paper §2.1 related work).
class GraphResidency;

Result<ColoringResult> RunGraphColoring(vgpu::Device* device,
                                        const graph::CsrGraph& g,
                                        const ColoringOptions& options,
                                        GraphResidency* residency = nullptr);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_COLORING_H_
