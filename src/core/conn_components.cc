#include "core/conn_components.h"

#include <unordered_set>

#include "core/device_graph.h"
#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::Lanes;

KernelTask IotaKernel(Ctx& c, DevPtr<vid_t> labels, uint32_t n) {
  auto v = c.GlobalThreadId();
  c.If(c.Lt(v, n), [&](Ctx& c) { c.Store(labels, v, v); });
  co_return;
}

KernelTask PropagateKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                           DevPtr<vid_t> labels, DevPtr<uint32_t> changed,
                           uint32_t n) {
  auto u = c.GlobalThreadId();
  c.If(c.Lt(u, n), [&](Ctx& c) {
    auto lu = c.Load(labels, u);
    auto begin = c.Load(row, u);
    auto end = c.Load(row, c.Add(u, 1u));
    c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
      auto v = c.Load(col, e);
      auto old = c.AtomicMin(labels, v, lu);
      c.If(c.Gt(old, lu), [&](Ctx& c) {
        c.Store(changed, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
      });
      // Pull direction too: adopt a smaller neighbor label immediately.
      auto lv = c.Load(labels, v);
      c.If(c.Lt(lv, lu), [&](Ctx& c) {
        auto old_u = c.AtomicMin(labels, u, lv);
        c.If(c.Gt(old_u, lv), [&](Ctx& c) {
          c.Store(changed, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
        });
        c.Assign(&lu, lv);
      });
    });
  });
  co_return;
}

}  // namespace

Result<CcResult> RunConnectedComponents(vgpu::Device* device,
                                        const graph::CsrGraph& g,
                                        const CcOptions& options,
                                        GraphResidency* residency) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("CC on empty graph");
  }
  // Undirected interpretation: the shared kSymSimple variant (symmetrize,
  // dedup, drop self loops).
  ADGRAPH_ASSIGN_OR_RETURN(
      ResidentCsr staged,
      Stage(residency, device, g, GraphVariant::kSymSimple));
  const DeviceCsr& d = *staged;
  const vid_t n = d.num_vertices;

  trace::Span algo_span(device->trace_track(), "algo:cc", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));

  ADGRAPH_ASSIGN_OR_RETURN(auto labels,
                           rt::DeviceBuffer<vid_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto changed,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(
      device
          ->Launch("cc_iota", rt::CoverThreads(n, options.block_size),
                   [&](Ctx& c) { return IotaKernel(c, labels.ptr(), n); })
          .status());

  CcResult result;
  for (;;) {
    trace::Span sweep(device->trace_track(), "cc.propagate_round", "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(result.iterations + 1));
    ADGRAPH_RETURN_NOT_OK(
        primitives::SetElement<uint32_t>(device, changed.ptr(), 0, 0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("cc_propagate", rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return PropagateKernel(c, d.row_offsets.ptr(),
                                              d.col_indices.ptr(),
                                              labels.ptr(), changed.ptr(), n);
                     })
            .status());
    result.iterations += 1;
    ADGRAPH_ASSIGN_OR_RETURN(
        uint32_t any,
        primitives::GetElement<uint32_t>(device, changed.ptr(), 0));
    if (any == 0 || result.iterations >= n) break;
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.labels, labels.ToHost());
  std::unordered_set<vid_t> distinct(result.labels.begin(),
                                     result.labels.end());
  result.num_components = distinct.size();
  return result;
}

}  // namespace adgraph::core
