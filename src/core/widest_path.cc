#include "core/widest_path.h"

#include <limits>
#include <string>

#include "core/device_graph.h"
#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::Lanes;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One (max, min) relaxation sweep: width(v) <- max(width(v),
/// min(width(u), w(u,v))) over edges (u,v); sets *changed on improvement.
KernelTask WidenKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                       DevPtr<double> weights, DevPtr<double> width,
                       DevPtr<uint32_t> changed, uint32_t n) {
  const bool weighted = !weights.is_null();
  auto u = c.GlobalThreadId();
  c.If(c.Lt(u, n), [&](Ctx& c) {
    auto wu = c.Load(width, u);
    c.If(c.Gt(wu, 0.0), [&](Ctx& c) {
      auto begin = c.Load(row, u);
      auto end = c.Load(row, c.Add(u, 1u));
      c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
        auto v = c.Load(col, e);
        auto w = weighted ? c.Load(weights, e) : c.Splat(1.0);
        auto candidate = c.Min(wu, w);
        auto old = c.AtomicMax(width, v, candidate);
        c.If(c.Lt(old, candidate), [&](Ctx& c) {
          c.Store(changed, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
        });
      });
    });
  });
  co_return;
}

}  // namespace

Result<WidestPathResult> RunWidestPath(vgpu::Device* device,
                                       const graph::CsrGraph& g,
                                       const WidestPathOptions& options,
                                       GraphResidency* residency) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("widest path on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("widest-path source out of range");
  }
  if (g.has_weights()) {
    for (double w : g.weights()) {
      if (w < 0) {
        return Status::InvalidArgument(
            "widest path requires non-negative capacities (got " +
            std::to_string(w) + ")");
      }
    }
  }

  trace::Span algo_span(device->trace_track(), "algo:widest", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("source", static_cast<uint64_t>(options.source));

  ADGRAPH_ASSIGN_OR_RETURN(ResidentCsr staged,
                           Stage(residency, device, g, GraphVariant::kAsIs));
  const DeviceCsr& d = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(auto width,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto changed,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(primitives::Fill<double>(device, width.ptr(), n, 0.0));
  ADGRAPH_RETURN_NOT_OK(
      primitives::SetElement<double>(device, width.ptr(), options.source,
                                     kInf));

  WidestPathResult result;
  const uint32_t max_rounds =
      options.max_rounds > 0 ? options.max_rounds : (n > 1 ? n - 1 : 1);
  for (uint32_t round = 0; round < max_rounds; ++round) {
    trace::Span sweep(device->trace_track(), "widest.relax_round", "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(round + 1));
    ADGRAPH_RETURN_NOT_OK(
        primitives::SetElement<uint32_t>(device, changed.ptr(), 0, 0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("widest_relax", rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return WidenKernel(c, d.row_offsets.ptr(),
                                          d.col_indices.ptr(),
                                          d.has_weights() ? d.weights.ptr()
                                                          : DevPtr<double>{},
                                          width.ptr(), changed.ptr(), n);
                     })
            .status());
    result.rounds = round + 1;
    ADGRAPH_ASSIGN_OR_RETURN(
        uint32_t any,
        primitives::GetElement<uint32_t>(device, changed.ptr(), 0));
    if (any == 0) break;
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.widths, width.ToHost());
  return result;
}

}  // namespace adgraph::core
