#include "core/device_graph.h"

#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {

using graph::eid_t;
using graph::vid_t;
using graph::weight_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;

Result<DeviceCsr> DeviceCsr::Upload(vgpu::Device* device,
                                    const graph::CsrGraph& g) {
  DeviceCsr d;
  d.num_vertices = g.num_vertices();
  d.num_edges = g.num_edges();
  ADGRAPH_ASSIGN_OR_RETURN(
      d.row_offsets, rt::DeviceBuffer<eid_t>::FromHost(device, g.row_offsets()));
  ADGRAPH_ASSIGN_OR_RETURN(
      d.col_indices, rt::DeviceBuffer<vid_t>::FromHost(device, g.col_indices()));
  if (g.has_weights()) {
    ADGRAPH_ASSIGN_OR_RETURN(
        d.weights, rt::DeviceBuffer<weight_t>::FromHost(device, g.weights()));
  }
  return d;
}

namespace primitives {

namespace {

template <typename T>
KernelTask FillKernel(Ctx& c, DevPtr<T> array, uint64_t count, T value) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, count), [&](Ctx& c) {
    c.Store(array, tid, c.Splat(value));
  });
  co_return;
}

// One block scans kBlockSpan elements through shared memory and emits its
// block total.  A Hillis-Steele scan: log2(span) rounds of shared
// load/add/store separated by block barriers.
constexpr uint32_t kScanBlockThreads = 256;

KernelTask ScanBlockKernel(Ctx& c, DevPtr<uint32_t> in, DevPtr<uint32_t> out,
                           DevPtr<uint32_t> block_sums, uint64_t count) {
  vgpu::SmemPtr<uint32_t> stage{0};
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  auto local = c.BlockThreadId();
  auto in_range = c.Lt(tid, count);
  // Load input (zero-pad the tail).
  auto value = c.Splat<uint32_t>(0);
  c.If(in_range, [&](Ctx& c) { c.Assign(&value, c.Load(in, tid)); });
  c.SharedStore(stage, local, value);
  co_await c.Sync();
  // Inclusive Hillis-Steele scan in shared memory.
  for (uint32_t offset = 1; offset < kScanBlockThreads; offset <<= 1) {
    auto take = c.Ge(local, offset);
    auto partner = c.Sub(local, c.Splat(offset));
    auto addend = c.Splat<uint32_t>(0);
    c.If(take, [&](Ctx& c) { c.Assign(&addend, c.SharedLoad(stage, partner)); });
    co_await c.Sync();
    auto current = c.SharedLoad(stage, local);
    c.SharedStore(stage, local, c.Add(current, addend));
    co_await c.Sync();
  }
  // Convert to exclusive: out[i] = inclusive[i] - value[i].
  auto inclusive = c.SharedLoad(stage, local);
  c.If(in_range, [&](Ctx& c) {
    c.Store(out, tid, c.Sub(inclusive, value));
  });
  // Last thread of the block records the block total.
  c.If(c.Eq(local, kScanBlockThreads - 1), [&](Ctx& c) {
    auto block = c.Splat<uint32_t>(c.block_id());
    c.Store(block_sums, block, inclusive);
  });
  co_return;
}

KernelTask AddOffsetsKernel(Ctx& c, DevPtr<uint32_t> data,
                            DevPtr<uint32_t> offsets, uint64_t count) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  c.If(c.Lt(tid, count), [&](Ctx& c) {
    auto block = c.Splat<uint32_t>(c.block_id());
    auto offset = c.Load(offsets, block);
    auto value = c.Load(data, tid);
    c.Store(data, tid, c.Add(value, offset));
  });
  co_return;
}

}  // namespace

template <typename T>
Status Fill(vgpu::Device* device, DevPtr<T> array, uint64_t count, T value) {
  if (count == 0) return Status::OK();
  auto stats = device->Launch("fill", rt::CoverThreads(count), [&](Ctx& c) {
    return FillKernel<T>(c, array, count, value);
  });
  return stats.ok() ? Status::OK() : stats.status();
}

template <typename T>
Status SetElement(vgpu::Device* device, DevPtr<T> array, uint64_t index,
                  T value) {
  return device->CopyToDevice(array + index, &value, 1);
}

template <typename T>
Result<T> GetElement(vgpu::Device* device, DevPtr<T> array, uint64_t index) {
  T value;
  ADGRAPH_RETURN_NOT_OK(device->CopyToHost(&value, array + index, 1));
  return value;
}

Result<uint64_t> ExclusiveScanU32(vgpu::Device* device, DevPtr<uint32_t> in,
                                  DevPtr<uint32_t> out, uint64_t count) {
  if (count == 0) return uint64_t{0};
  const uint32_t blocks = static_cast<uint32_t>(
      (count + kScanBlockThreads - 1) / kScanBlockThreads);
  ADGRAPH_ASSIGN_OR_RETURN(
      auto block_sums, rt::DeviceBuffer<uint32_t>::Create(device, blocks));
  vgpu::LaunchDims dims;
  dims.grid = blocks;
  dims.block = kScanBlockThreads;
  dims.shared_bytes = kScanBlockThreads * sizeof(uint32_t);
  {
    auto stats = device->Launch("scan_block", dims, [&](Ctx& c) {
      return ScanBlockKernel(c, in, out, block_sums.ptr(), count);
    });
    ADGRAPH_RETURN_NOT_OK(stats.status());
  }
  // Host combine of block sums (the classic small sequential step; real
  // libraries recurse, which for our block counts is never needed).
  ADGRAPH_ASSIGN_OR_RETURN(std::vector<uint32_t> sums, block_sums.ToHost());
  uint64_t total = 0;
  for (uint32_t& s : sums) {
    uint32_t this_block = s;
    s = static_cast<uint32_t>(total);
    total += this_block;
  }
  ADGRAPH_RETURN_NOT_OK(block_sums.Upload(sums.data(), sums.size()));
  {
    auto stats = device->Launch("scan_add_offsets", dims, [&](Ctx& c) {
      return AddOffsetsKernel(c, out, block_sums.ptr(), count);
    });
    ADGRAPH_RETURN_NOT_OK(stats.status());
  }
  return total;
}


namespace {

KernelTask ReduceSumKernel(Ctx& c, DevPtr<double> in, DevPtr<double> out,
                           uint64_t count) {
  auto tid = c.Cast<uint64_t>(c.GlobalThreadId());
  auto value = c.Splat(0.0);
  c.If(c.Lt(tid, count), [&](Ctx& c) { c.Assign(&value, c.Load(in, tid)); });
  double warp_sum = c.ReduceAdd(value);
  c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
    c.AtomicAdd(out, c.Splat<uint32_t>(0), c.Splat(warp_sum));
  });
  co_return;
}

}  // namespace

Result<double> ReduceSumF64(vgpu::Device* device, DevPtr<double> in,
                            uint64_t count) {
  ADGRAPH_ASSIGN_OR_RETURN(auto out,
                           rt::DeviceBuffer<double>::CreateZeroed(device, 1));
  if (count > 0) {
    auto stats = device->Launch("reduce_sum", rt::CoverThreads(count),
                                [&](Ctx& c) {
                                  return ReduceSumKernel(c, in, out.ptr(),
                                                         count);
                                });
    ADGRAPH_RETURN_NOT_OK(stats.status());
  }
  return GetElement<double>(device, out.ptr(), 0);
}

// Explicit instantiations for the types the library uses.
template Status Fill<uint32_t>(vgpu::Device*, DevPtr<uint32_t>, uint64_t,
                               uint32_t);
template Status Fill<uint64_t>(vgpu::Device*, DevPtr<uint64_t>, uint64_t,
                               uint64_t);
template Status Fill<int32_t>(vgpu::Device*, DevPtr<int32_t>, uint64_t,
                              int32_t);
template Status Fill<double>(vgpu::Device*, DevPtr<double>, uint64_t, double);
template Status SetElement<uint32_t>(vgpu::Device*, DevPtr<uint32_t>, uint64_t,
                                     uint32_t);
template Status SetElement<uint64_t>(vgpu::Device*, DevPtr<uint64_t>, uint64_t,
                                     uint64_t);
template Status SetElement<double>(vgpu::Device*, DevPtr<double>, uint64_t,
                                   double);
template Result<uint32_t> GetElement<uint32_t>(vgpu::Device*,
                                               DevPtr<uint32_t>, uint64_t);
template Result<uint64_t> GetElement<uint64_t>(vgpu::Device*,
                                               DevPtr<uint64_t>, uint64_t);
template Result<double> GetElement<double>(vgpu::Device*, DevPtr<double>,
                                           uint64_t);

}  // namespace primitives

}  // namespace adgraph::core
