#ifndef ADGRAPH_CORE_WIDEST_PATH_H_
#define ADGRAPH_CORE_WIDEST_PATH_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

struct WidestPathOptions {
  graph::vid_t source = 0;
  uint32_t block_size = 256;
  /// Safety bound on relaxation rounds (0 = num_vertices - 1).
  uint32_t max_rounds = 0;
};

struct WidestPathResult {
  /// Per-vertex bottleneck capacity from the source: the maximum over all
  /// paths of the minimum edge weight along the path.  +infinity at the
  /// source, 0 for unreachable vertices.
  std::vector<double> widths;
  uint32_t rounds = 0;
  double time_ms = 0;
};

/// Single-source widest (bottleneck / max-min) path — one of nvGRAPH's
/// semiring-SpMV algorithms: iterated (max, min) relaxations with an
/// on-device change flag.  Requires non-negative weights (unweighted
/// edges count as capacity 1).
class GraphResidency;

Result<WidestPathResult> RunWidestPath(vgpu::Device* device,
                                       const graph::CsrGraph& g,
                                       const WidestPathOptions& options,
                                       GraphResidency* residency = nullptr);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_WIDEST_PATH_H_
