#ifndef ADGRAPH_CORE_RESIDENCY_H_
#define ADGRAPH_CORE_RESIDENCY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>

#include "core/device_graph.h"
#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

/// \brief The device layouts an algorithm can request for a base graph.
///
/// Each variant is a *deterministic function* of the base CsrGraph, which is
/// what makes cross-job reuse byte-identical: two jobs that ask for the same
/// (graph, variant) pair get the same device arrays whether the second one
/// re-uploads or reuses a cached copy.
enum class GraphVariant : uint8_t {
  /// The base CSR verbatim (weights included when present): BFS, SSSP,
  /// Jaccard, widest path, SpMV.
  kAsIs = 0,
  /// Symmetrized, deduplicated, self-loop-free, sorted adjacency — the
  /// undirected interpretation shared by CC, k-core, coloring and
  /// unoriented (Bisson-Fatica) triangle counting.  One resident copy
  /// serves all four.
  kSymSimple,
  /// Degree-oriented DAG (triangle counting with options.orient).
  kTcOriented,
  /// Transpose with 1/outdeg(u) edge weights — PageRank's pull operand.
  kPullTranspose,
  /// Weighted CSC (plain transpose, weights following their edge) — the
  /// library-native ESBV storage.
  kCscWeighted,
  /// Out-of-core streamed execution: the graph is never whole-graph
  /// resident; only the O(n) iteration state plus a double-buffered pair of
  /// vertex-range shards occupy the device (DESIGN.md §2.13).  Not a host
  /// layout — BuildHostVariant rejects it; it exists so admission and the
  /// cache can key/charge the streamed working set instead of whole-graph
  /// bytes.
  kStreamed,
};

/// Stable lower-case name ("as-is", "sym", "tc-oriented", ...).
std::string_view GraphVariantName(GraphVariant variant);

/// Order-sensitive FNV-1a digest of the graph's *content* (vertex count,
/// row offsets, column indices, weights).  Two CsrGraph objects with equal
/// arrays fingerprint identically regardless of identity — the cache key
/// half that makes residency content-addressed rather than pointer-keyed.
uint64_t FingerprintCsr(const graph::CsrGraph& g);

/// Host-side construction of `variant` from `base`.  kAsIs returns a copy;
/// callers that only want to upload should special-case it and upload
/// `base` directly (Stage and the residency cache both do).
Result<graph::CsrGraph> BuildHostVariant(const graph::CsrGraph& base,
                                         GraphVariant variant);

/// \brief A device-resident CSR an algorithm may read for the duration of
/// one run: either an owned upload (freed on destruction) or a pinned
/// reference into a residency cache (unpinned on destruction).
class ResidentCsr {
 public:
  ResidentCsr() = default;
  explicit ResidentCsr(DeviceCsr owned) : owned_(std::move(owned)) {}
  ResidentCsr(std::shared_ptr<const DeviceCsr> cached,
              std::function<void()> unpin)
      : cached_(std::move(cached)), unpin_(std::move(unpin)) {}

  ~ResidentCsr() { Release(); }

  ResidentCsr(ResidentCsr&& other) noexcept { *this = std::move(other); }
  ResidentCsr& operator=(ResidentCsr&& other) noexcept {
    if (this != &other) {
      Release();
      owned_ = std::move(other.owned_);
      cached_ = std::move(other.cached_);
      unpin_ = std::exchange(other.unpin_, nullptr);
    }
    return *this;
  }
  ResidentCsr(const ResidentCsr&) = delete;
  ResidentCsr& operator=(const ResidentCsr&) = delete;

  const DeviceCsr& operator*() const { return cached_ ? *cached_ : owned_; }
  const DeviceCsr* operator->() const { return &**this; }

  /// True when this handle pins a cache entry (a residency hit or a freshly
  /// inserted upload) rather than owning a one-shot upload.
  bool from_cache() const { return cached_ != nullptr; }

 private:
  void Release() {
    if (unpin_) std::exchange(unpin_, nullptr)();
    cached_.reset();
  }

  DeviceCsr owned_;
  std::shared_ptr<const DeviceCsr> cached_;
  std::function<void()> unpin_;
};

/// \brief Provider of device-resident graph variants.
///
/// core/ algorithms take an optional GraphResidency*; the serve layer's
/// per-worker GraphCache implements it (DESIGN.md §2.6).  A null provider
/// means "upload per run", the pre-cache behavior.
class GraphResidency {
 public:
  virtual ~GraphResidency() = default;

  /// Returns `variant` of `base` resident on `device`, pinned until the
  /// handle is destroyed.  Implementations must hand back arrays equal to
  /// BuildHostVariant(base, variant) uploaded via DeviceCsr::Upload.
  virtual Result<ResidentCsr> Acquire(vgpu::Device* device,
                                      const graph::CsrGraph& base,
                                      GraphVariant variant) = 0;
};

/// The one staging entry point the algorithms call: with a residency
/// provider, delegates to it (hit = no host transform, no H2D transfer);
/// without one, builds the variant on the host and uploads an owned copy.
Result<ResidentCsr> Stage(GraphResidency* residency, vgpu::Device* device,
                          const graph::CsrGraph& base, GraphVariant variant);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_RESIDENCY_H_
