#include "core/sssp.h"

#include <limits>
#include <string>

#include "core/device_graph.h"
#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::LaneMask;
using vgpu::Lanes;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One push-style relaxation sweep; sets *changed when any distance drops.
/// With non-null active flags, only vertices marked active relax, and
/// improved destinations are marked for the next round (frontier mode).
KernelTask RelaxKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                       DevPtr<double> weights, DevPtr<double> dist,
                       DevPtr<uint32_t> changed, uint32_t n,
                       DevPtr<uint32_t> active, DevPtr<uint32_t> next_active) {
  const bool weighted = !weights.is_null();
  const bool frontier = !active.is_null();
  auto u = c.GlobalThreadId();
  c.If(c.Lt(u, n), [&](Ctx& c) {
    LaneMask eligible;
    if (frontier) {
      eligible = c.Eq(c.Load(active, u), 1u);
    } else {
      eligible = c.ActiveMask();
    }
    c.If(eligible, [&](Ctx& c) {
      auto du = c.Load(dist, u);
      c.If(c.Lt(du, kInf), [&](Ctx& c) {
        auto begin = c.Load(row, u);
        auto end = c.Load(row, c.Add(u, 1u));
        c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
          auto v = c.Load(col, e);
          auto w = weighted ? c.Load(weights, e) : c.Splat(1.0);
          auto candidate = c.Add(du, w);
          auto old = c.AtomicMin(dist, v, candidate);
          c.If(c.Gt(old, candidate), [&](Ctx& c) {
            c.Store(changed, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
            if (frontier) c.Store(next_active, v, c.Splat<uint32_t>(1));
          });
        });
      });
    });
  });
  co_return;
}

}  // namespace

Result<SsspResult> RunSssp(vgpu::Device* device, const graph::CsrGraph& g,
                           const SsspOptions& options,
                           GraphResidency* residency) {
  const vid_t n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("SSSP on empty graph");
  if (options.source >= n) {
    return Status::InvalidArgument("SSSP source out of range");
  }
  if (g.has_weights()) {
    for (double w : g.weights()) {
      if (w < 0) {
        return Status::InvalidArgument(
            "SSSP requires non-negative weights (got " + std::to_string(w) +
            ")");
      }
    }
  }

  trace::Span algo_span(device->trace_track(), "algo:sssp", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("source", static_cast<uint64_t>(options.source));

  ADGRAPH_ASSIGN_OR_RETURN(ResidentCsr staged,
                           Stage(residency, device, g, GraphVariant::kAsIs));
  const DeviceCsr& d = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(auto dist,
                           rt::DeviceBuffer<double>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto changed,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));
  rt::DeviceBuffer<uint32_t> active;
  rt::DeviceBuffer<uint32_t> next_active;
  if (options.use_frontier) {
    ADGRAPH_ASSIGN_OR_RETURN(active,
                             rt::DeviceBuffer<uint32_t>::Create(device, n));
    ADGRAPH_ASSIGN_OR_RETURN(next_active,
                             rt::DeviceBuffer<uint32_t>::Create(device, n));
  }

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(primitives::Fill<double>(device, dist.ptr(), n, kInf));
  ADGRAPH_RETURN_NOT_OK(
      primitives::SetElement<double>(device, dist.ptr(), options.source, 0.0));
  if (options.use_frontier) {
    ADGRAPH_RETURN_NOT_OK(
        primitives::Fill<uint32_t>(device, active.ptr(), n, 0));
    ADGRAPH_RETURN_NOT_OK(primitives::SetElement<uint32_t>(
        device, active.ptr(), options.source, 1));
  }

  SsspResult result;
  const uint32_t max_rounds =
      options.max_rounds > 0 ? options.max_rounds : (n > 1 ? n - 1 : 1);
  for (uint32_t round = 0; round < max_rounds; ++round) {
    trace::Span sweep(device->trace_track(), "sssp.relax_round", "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(round + 1));
    ADGRAPH_RETURN_NOT_OK(
        primitives::SetElement<uint32_t>(device, changed.ptr(), 0, 0));
    if (options.use_frontier) {
      ADGRAPH_RETURN_NOT_OK(
          primitives::Fill<uint32_t>(device, next_active.ptr(), n, 0));
    }
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("sssp_relax", rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return RelaxKernel(
                           c, d.row_offsets.ptr(), d.col_indices.ptr(),
                           d.has_weights() ? d.weights.ptr()
                                           : DevPtr<double>{},
                           dist.ptr(), changed.ptr(), n,
                           options.use_frontier ? active.ptr()
                                                : DevPtr<uint32_t>{},
                           options.use_frontier ? next_active.ptr()
                                                : DevPtr<uint32_t>{});
                     })
            .status());
    result.rounds = round + 1;
    ADGRAPH_ASSIGN_OR_RETURN(
        uint32_t any,
        primitives::GetElement<uint32_t>(device, changed.ptr(), 0));
    if (any == 0) break;
    if (options.use_frontier) std::swap(active, next_active);
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.distances, dist.ToHost());
  return result;
}

}  // namespace adgraph::core
