#ifndef ADGRAPH_CORE_BFS_KERNELS_H_
#define ADGRAPH_CORE_BFS_KERNELS_H_

#include <cstdint>

#include "graph/types.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core::detail {

/// Device-side state of the BFS kernels (bfs.cc).  Exposed so the
/// partitioned drivers (src/part/) can launch the exact single-device
/// kernels per shard — partitioned results are byte-identical because the
/// per-shard compute *is* the single-device compute.
struct BfsDeviceState {
  vgpu::DevPtr<graph::eid_t> row;
  vgpu::DevPtr<graph::vid_t> col;
  vgpu::DevPtr<uint32_t> levels;
  vgpu::DevPtr<graph::vid_t> parents;  ///< null unless compute_parents
  vgpu::DevPtr<graph::vid_t> frontier;
  vgpu::DevPtr<graph::vid_t> next_frontier;
  vgpu::DevPtr<uint32_t> next_size;
};

/// Dynamic shared-memory bytes the top-down kernel's staging queue needs.
uint32_t StageSharedBytes();

/// Top-down frontier expansion with shared-memory staging (bfs.cc).
vgpu::KernelTask TopDownKernel(vgpu::Ctx& c, BfsDeviceState s,
                               uint32_t frontier_size, uint32_t level);

/// Bottom-up sweep over unvisited vertices (bfs.cc).
vgpu::KernelTask BottomUpKernel(vgpu::Ctx& c, BfsDeviceState s,
                                uint32_t num_vertices, uint32_t level);

/// Rebuilds an explicit frontier queue from the level array (bfs.cc).
vgpu::KernelTask LevelsToQueueKernel(vgpu::Ctx& c, BfsDeviceState s,
                                     uint32_t num_vertices, uint32_t level);

}  // namespace adgraph::core::detail

#endif  // ADGRAPH_CORE_BFS_KERNELS_H_
