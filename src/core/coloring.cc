#include "core/coloring.h"

#include "core/device_graph.h"
#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::LaneMask;
using vgpu::Lanes;

constexpr uint32_t kUncolored = 0xFFFFFFFFu;

/// One Jones-Plassmann round.  An uncolored vertex whose hashed priority
/// beats every uncolored neighbor's takes the smallest color unused among
/// its colored neighbors (64-color windows scanned with a forbidden
/// bitmask).  Priorities are (hash, id) pairs, so ties never stall.
KernelTask ColorRoundKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                            DevPtr<uint32_t> colors, DevPtr<uint32_t> progress,
                            uint32_t n, uint32_t seed) {
  auto v = c.GlobalThreadId();
  auto hash_of = [&](const Lanes<uint32_t>& x) {
    auto h = c.Mul(c.BitXor(x, seed), 2654435761u);
    return c.BitXor(h, c.Shr(h, 16u));
  };
  c.If(c.Lt(v, n), [&](Ctx& c) {
    auto my_color = c.Load(colors, v);
    c.If(c.Eq(my_color, kUncolored), [&](Ctx& c) {
      auto my_priority = hash_of(v);
      auto begin = c.Load(row, v);
      auto end = c.Load(row, c.Add(v, 1u));
      // Am I the local max among uncolored neighbors?
      LaneMask beaten = 0;
      c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
        auto w = c.Load(col, e);
        auto cw = c.Load(colors, w);
        c.If(c.Eq(cw, kUncolored), [&](Ctx& c) {
          auto pw = hash_of(w);
          LaneMask higher = c.Gt(pw, my_priority);
          LaneMask tie = c.Eq(pw, my_priority) & c.Gt(w, v);
          beaten |= higher | tie;
        });
      });
      c.If(c.NotMask(beaten), [&](Ctx& c) {
        // Smallest free color, scanned in 64-color windows.
        auto base = c.Splat<uint32_t>(0);
        LaneMask done = 0;
        c.While(
            [&](Ctx& c) { return c.NotMask(done); },
            [&](Ctx& c) {
              auto forbidden = c.Splat<uint64_t>(0);
              c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
                auto w = c.Load(col, e);
                auto cw = c.Load(colors, w);
                LaneMask colored = c.Ne(cw, kUncolored);
                LaneMask in_window =
                    colored & c.Ge(cw, base) &
                    c.Lt(cw, c.Add(base, 64u));
                c.If(in_window, [&](Ctx& c) {
                  auto bit = c.Shl(c.Splat<uint64_t>(1),
                                   c.Cast<uint64_t>(c.Sub(cw, base)));
                  c.Assign(&forbidden, c.BitOr(forbidden, bit));
                });
              });
              LaneMask has_free = c.Ne(forbidden, ~uint64_t{0});
              c.IfElse(
                  has_free,
                  [&](Ctx& c) {
                    auto slot = c.Ctz(c.BitNot(forbidden));
                    c.Store(colors, v, c.Add(base, slot));
                    c.Store(progress, c.Splat<uint32_t>(0),
                            c.Splat<uint32_t>(1));
                    done |= c.ActiveMask();
                  },
                  [&](Ctx& c) { c.Assign(&base, c.Add(base, 64u)); });
            });
      });
    });
  });
  co_return;
}

}  // namespace

Result<ColoringResult> RunGraphColoring(vgpu::Device* device,
                                        const graph::CsrGraph& g,
                                        const ColoringOptions& options,
                                        GraphResidency* residency) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("coloring on empty graph");
  }
  // Proper coloring is defined on the undirected interpretation.
  ADGRAPH_ASSIGN_OR_RETURN(
      ResidentCsr staged,
      Stage(residency, device, g, GraphVariant::kSymSimple));
  const DeviceCsr& d = *staged;
  const vid_t n = d.num_vertices;

  trace::Span algo_span(device->trace_track(), "algo:color", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));

  ADGRAPH_ASSIGN_OR_RETURN(auto colors,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto progress,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(
      primitives::Fill<uint32_t>(device, colors.ptr(), n, kUncolored));

  ColoringResult result;
  const uint32_t seed32 = static_cast<uint32_t>(options.seed * 0x9E3779B9u + 1);
  for (;;) {
    trace::Span sweep(device->trace_track(), "color.round", "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(result.rounds + 1));
    ADGRAPH_RETURN_NOT_OK(
        primitives::SetElement<uint32_t>(device, progress.ptr(), 0, 0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("color_round", rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return ColorRoundKernel(c, d.row_offsets.ptr(),
                                               d.col_indices.ptr(),
                                               colors.ptr(), progress.ptr(), n,
                                               seed32);
                     })
            .status());
    result.rounds += 1;
    ADGRAPH_ASSIGN_OR_RETURN(
        uint32_t any,
        primitives::GetElement<uint32_t>(device, progress.ptr(), 0));
    if (any == 0) break;
    if (result.rounds > n) {
      return Status::Internal("coloring failed to converge");
    }
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.colors, colors.ToHost());
  for (uint32_t color : result.colors) {
    if (color != kUncolored) {
      result.num_colors = std::max(result.num_colors, color + 1);
    }
  }
  return result;
}

}  // namespace adgraph::core
