#ifndef ADGRAPH_CORE_PAGERANK_KERNELS_H_
#define ADGRAPH_CORE_PAGERANK_KERNELS_H_

#include <cstdint>

#include "graph/types.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core::detail {

/// ranks_next = base + alpha * ranks_next (applied after the pull SpMV) and
/// accumulates |next - prev| into *delta.  Defined in pagerank.cc; exposed
/// so the partitioned PageRank driver (src/part/) applies the identical
/// update per shard.
vgpu::KernelTask ApplyDampingKernel(vgpu::Ctx& c, vgpu::DevPtr<double> next,
                                    vgpu::DevPtr<double> prev,
                                    vgpu::DevPtr<double> delta, double base,
                                    double alpha, uint32_t n);

/// Sums the rank mass parked on dangling (out-degree 0) vertices into *out.
/// Defined in pagerank.cc.
vgpu::KernelTask DanglingSumKernel(vgpu::Ctx& c, vgpu::DevPtr<graph::eid_t> row,
                                   vgpu::DevPtr<double> ranks,
                                   vgpu::DevPtr<double> out, uint32_t n);

}  // namespace adgraph::core::detail

#endif  // ADGRAPH_CORE_PAGERANK_KERNELS_H_
