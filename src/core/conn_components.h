#ifndef ADGRAPH_CORE_CONN_COMPONENTS_H_
#define ADGRAPH_CORE_CONN_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

struct CcOptions {
  uint32_t block_size = 256;
};

struct CcResult {
  /// Per-vertex component label = smallest vertex id in the component.
  std::vector<graph::vid_t> labels;
  uint64_t num_components = 0;
  uint32_t iterations = 0;
  double time_ms = 0;
};

/// Weakly connected components via min-label propagation on the
/// symmetrized graph (iterated AtomicMin sweeps until fixpoint).
class GraphResidency;

Result<CcResult> RunConnectedComponents(vgpu::Device* device,
                                        const graph::CsrGraph& g,
                                        const CcOptions& options,
                                        GraphResidency* residency = nullptr);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_CONN_COMPONENTS_H_
