#ifndef ADGRAPH_CORE_BFS_H_
#define ADGRAPH_CORE_BFS_H_

#include <cstdint>
#include <vector>

#include "core/device_graph.h"
#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

/// Level value of vertices the traversal never reached.
inline constexpr uint32_t kUnreachedLevel = 0xFFFFFFFFu;

/// Options of the GPU breadth-first search.
struct BfsOptions {
  graph::vid_t source = 0;
  /// Direction-optimizing traversal (Beamer-style, as nvGRAPH's
  /// "direction-optimizing BFS", paper §3.2.1): top-down frontier expansion
  /// switches to bottom-up sweeps while the frontier is large.  Bottom-up
  /// scans a vertex's *out*-edges for a parent, which is only correct on
  /// symmetric graphs, so it additionally requires `assume_symmetric`.
  bool direction_optimizing = true;
  /// Caller's promise that the graph is symmetric (undirected).  Without
  /// it the traversal stays purely top-down.
  bool assume_symmetric = false;
  /// Switch to bottom-up when frontier > n / alpha.
  double alpha = 16.0;
  /// Switch back to top-down when newly-visited < n / beta.
  double beta = 64.0;
  uint32_t block_size = 256;
  /// Also produce the BFS predecessor of every reached vertex (nvGRAPH's
  /// traversal emits both levels and predecessors).
  bool compute_parents = false;
};

/// Outcome of a BFS run.
struct BfsResult {
  /// Per-vertex level from the source (kUnreachedLevel if unreachable).
  std::vector<uint32_t> levels;
  /// When compute_parents: per-vertex predecessor on some shortest path
  /// (kInvalidVertex for the source and unreached vertices).
  std::vector<graph::vid_t> parents;
  uint32_t depth = 0;              ///< deepest reached level
  uint64_t vertices_visited = 0;   ///< vertices with a finite level
  uint32_t top_down_iterations = 0;
  uint32_t bottom_up_iterations = 0;
  /// Modeled device time of the traversal kernels (upload excluded, as the
  /// paper reports on-device algorithm runtimes).
  double time_ms = 0;
};

class GraphResidency;

/// Runs BFS from `options.source` on `g` (uploads the graph first, or
/// reuses a resident copy when `residency` is provided).
/// BFS follows out-edges; benchmark callers symmetrize beforehand for
/// undirected-traversal semantics, as Graph500-style BFS studies do.
Result<BfsResult> RunBfs(vgpu::Device* device, const graph::CsrGraph& g,
                         const BfsOptions& options,
                         GraphResidency* residency = nullptr);

/// Same, on a graph already resident on `device`.
Result<BfsResult> RunBfsOnDevice(vgpu::Device* device, const DeviceCsr& g,
                                 const BfsOptions& options);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_BFS_H_
