#ifndef ADGRAPH_CORE_DEVICE_GRAPH_H_
#define ADGRAPH_CORE_DEVICE_GRAPH_H_

#include <cstdint>

#include "graph/csr.h"
#include "runtime/runtime.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

/// \brief A CSR graph resident in simulated device memory.
///
/// Move-only; owns its device buffers.  The eid_t row-offset array is
/// uploaded as 64-bit (paper-scale twitter-mpi exceeds 32-bit edge counts,
/// and the library keeps one code path).
struct DeviceCsr {
  graph::vid_t num_vertices = 0;
  graph::eid_t num_edges = 0;
  rt::DeviceBuffer<graph::eid_t> row_offsets;   ///< n+1 entries
  rt::DeviceBuffer<graph::vid_t> col_indices;   ///< m entries
  rt::DeviceBuffer<graph::weight_t> weights;    ///< 0 or m entries

  bool has_weights() const { return weights.size() > 0; }

  /// Uploads `g` (and its weights, if any).  Fails with kOutOfMemory when
  /// the graph does not fit the device's (scaled) RAM.
  static Result<DeviceCsr> Upload(vgpu::Device* device,
                                  const graph::CsrGraph& g);
};

/// \brief Common single-purpose kernels shared by the algorithm
/// implementations.
namespace primitives {

/// Fills device_array[0..count) with `value` (one kernel launch).
template <typename T>
Status Fill(vgpu::Device* device, vgpu::DevPtr<T> array, uint64_t count,
            T value);

/// Writes a single element (device equivalent of `arr[index] = value`).
template <typename T>
Status SetElement(vgpu::Device* device, vgpu::DevPtr<T> array, uint64_t index,
                  T value);

/// Reads a single element back to the host.
template <typename T>
Result<T> GetElement(vgpu::Device* device, vgpu::DevPtr<T> array,
                     uint64_t index);

/// Device-side exclusive prefix sum over `count` uint32 values into `out`
/// (out may alias in).  Three phases: per-block shared-memory Blelloch scan
/// (barriers + LDS traffic), host combine of the (small) block sums, and an
/// offset-add kernel.  Returns the total sum.
Result<uint64_t> ExclusiveScanU32(vgpu::Device* device,
                                  vgpu::DevPtr<uint32_t> in,
                                  vgpu::DevPtr<uint32_t> out, uint64_t count);

/// Device-side sum reduction of `count` doubles (warp reductions + one
/// atomic per warp).
Result<double> ReduceSumF64(vgpu::Device* device, vgpu::DevPtr<double> in,
                            uint64_t count);

}  // namespace primitives

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_DEVICE_GRAPH_H_
