#ifndef ADGRAPH_CORE_HOST_REF_H_
#define ADGRAPH_CORE_HOST_REF_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace adgraph::core {

/// \brief Single-threaded host reference implementations of every library
/// algorithm.  They are the correctness oracles of the test suite and are
/// deliberately written in the most obvious way possible.
namespace host_ref {

/// BFS levels from `source` following out-edges (kUnreachedLevel for
/// unreachable vertices).
std::vector<uint32_t> BfsLevels(const graph::CsrGraph& g, graph::vid_t source);

/// Triangle count of the undirected interpretation of `g`.
uint64_t TriangleCount(const graph::CsrGraph& g);

/// Vertex-induced subgraph with vertices renumbered in ascending original
/// order; carries weights if `g` has them.
graph::CsrGraph ExtractSubgraph(const graph::CsrGraph& g,
                                const std::vector<graph::vid_t>& vertices);

/// Power-iteration PageRank with damping `alpha`, `iterations` rounds.
/// Dangling mass is redistributed uniformly.
std::vector<double> PageRank(const graph::CsrGraph& g, double alpha,
                             uint32_t iterations);

/// Bellman-Ford single-source shortest paths over edge weights
/// (infinity = unreachable).  Requires weights.
std::vector<double> Sssp(const graph::CsrGraph& g, graph::vid_t source);

/// Connected components of the undirected interpretation: per-vertex
/// component label = smallest vertex id in the component.
std::vector<graph::vid_t> ConnectedComponents(const graph::CsrGraph& g);

/// Jaccard similarity per edge of `g`: |N(u) ∩ N(v)| / |N(u) ∪ N(v)| over
/// out-neighborhoods, in CSR edge order.
std::vector<double> JaccardPerEdge(const graph::CsrGraph& g);

/// K-core decomposition of the undirected interpretation: largest k such
/// that the vertex survives in the k-core (0 for isolated vertices).
std::vector<uint32_t> CoreNumbers(const graph::CsrGraph& g);

/// y = semiring-SpMV(A, x) with plus-times semantics.
std::vector<double> SpmvPlusTimes(const graph::CsrGraph& g,
                                  const std::vector<double>& x);

/// y[i] = min over entries (w + x[col]) with min-plus semantics (identity =
/// +infinity).
std::vector<double> SpmvMinPlus(const graph::CsrGraph& g,
                                const std::vector<double>& x);

/// Boolean or-and step: y[i] = 1 iff some edge (i,j) with nonzero weight
/// has x[j] != 0.
std::vector<double> SpmvOrAnd(const graph::CsrGraph& g,
                              const std::vector<double>& x);

/// Single-source widest (max-min bottleneck) path; +infinity at the
/// source, 0 for unreachable vertices.
std::vector<double> WidestPath(const graph::CsrGraph& g,
                               graph::vid_t source);

/// Edge-selected subgraph: keeps exactly the listed CSR edge indices,
/// vertex set = endpoints renumbered ascending.  Duplicates each
/// contribute one edge.
graph::CsrGraph ExtractSubgraphByEdge(const graph::CsrGraph& g,
                                      const std::vector<graph::eid_t>& edges);

}  // namespace host_ref

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_HOST_REF_H_
