#include "core/api.h"

namespace adgraph::core {

namespace {

template <size_t I, typename P, typename R>
constexpr bool AlternativeMatches() {
  return std::is_same_v<std::variant_alternative_t<I, Params>, P> &&
         std::is_same_v<std::variant_alternative_t<I, AlgoResult>, R>;
}

#define ADGRAPH_CHECK_ALT(algo, P, R)                                       \
  static_assert(AlternativeMatches<static_cast<size_t>(Algo::algo), P, R>(), \
                "Params/AlgoResult alternative order must match enum Algo")

ADGRAPH_CHECK_ALT(kBfs, BfsOptions, BfsResult);
ADGRAPH_CHECK_ALT(kSssp, SsspOptions, SsspResult);
ADGRAPH_CHECK_ALT(kPageRank, PageRankOptions, PageRankResult);
ADGRAPH_CHECK_ALT(kTriangleCount, TcOptions, TcResult);
ADGRAPH_CHECK_ALT(kConnectedComponents, CcOptions, CcResult);
ADGRAPH_CHECK_ALT(kKCore, KCoreOptions, KCoreResult);
ADGRAPH_CHECK_ALT(kJaccard, JaccardOptions, JaccardResult);
ADGRAPH_CHECK_ALT(kWidestPath, WidestPathOptions, WidestPathResult);
ADGRAPH_CHECK_ALT(kColoring, ColoringOptions, ColoringResult);
ADGRAPH_CHECK_ALT(kEsbv, EsbvOptions, EsbvResult);
ADGRAPH_CHECK_ALT(kBetweenness, BcOptions, BcResult);

#undef ADGRAPH_CHECK_ALT

static_assert(std::variant_size_v<Params> == std::variant_size_v<AlgoResult>,
              "every algorithm has exactly one Params and one AlgoResult "
              "alternative");

}  // namespace

std::string_view AlgorithmName(Algo algo) {
  switch (algo) {
    case Algo::kBfs:
      return "bfs";
    case Algo::kSssp:
      return "sssp";
    case Algo::kPageRank:
      return "pagerank";
    case Algo::kTriangleCount:
      return "tc";
    case Algo::kConnectedComponents:
      return "cc";
    case Algo::kKCore:
      return "kcore";
    case Algo::kJaccard:
      return "jaccard";
    case Algo::kWidestPath:
      return "widest";
    case Algo::kColoring:
      return "color";
    case Algo::kEsbv:
      return "esbv";
    case Algo::kBetweenness:
      return "bc";
  }
  return "?";
}

Result<Algo> ParseAlgorithm(std::string_view name) {
  constexpr size_t kNumAlgos = std::variant_size_v<Params>;
  for (size_t i = 0; i < kNumAlgos; ++i) {
    Algo algo = static_cast<Algo>(i);
    if (AlgorithmName(algo) == name) return algo;
  }
  return Status::NotFound("unknown algorithm: " + std::string(name));
}

double ResultTimeMs(const AlgoResult& result) {
  return std::visit([](const auto& r) { return r.time_ms; }, result);
}

}  // namespace adgraph::core
