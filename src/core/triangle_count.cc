#include "core/triangle_count.h"

#include <algorithm>

#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::LaneMask;
using vgpu::Lanes;
using vgpu::SmemPtr;

constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
constexpr uint32_t kHashMultiplier = 2654435761u;  // Knuth

/// One block per vertex u (grid-stride): stage adj(u) in a shared hash set,
/// then for every two-hop edge (v, w) with v in adj(u), probe w.  Vertices
/// whose degree exceeds the table fall back to binary search in global
/// memory (heavier branching, no shared memory — the paper's "two
/// mainstream paradigms" in one kernel).
KernelTask TcKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                    DevPtr<uint64_t> count, uint32_t num_vertices,
                    uint32_t hash_capacity, bool force_binary_search,
                    uint32_t vertex_sample) {
  SmemPtr<uint32_t> table{0};
  auto local = c.BlockThreadId();
  auto block_dim = c.Splat(c.block_dim());
  auto zero_idx = c.Splat<uint32_t>(0);
  auto my_count = c.Splat<uint64_t>(0);

  for (uint32_t u = c.block_id(); u < num_vertices; u += c.grid_dim()) {
    // Sampled simulation: process every vertex_sample-th vertex; the launch
    // extrapolates counters via LaunchDims::work_replication.
    if (u % vertex_sample != 0) continue;
    const eid_t begin = c.ScalarOf(c.Load(row, c.Splat(u)));
    const eid_t end = c.ScalarOf(c.Load(row, c.Splat(u + 1)));
    const uint32_t degree = static_cast<uint32_t>(end - begin);
    if (degree < 2) continue;
    // Keep the open-addressing load factor under 1/2.
    const bool use_hash =
        !force_binary_search && degree <= hash_capacity / 2;

    if (use_hash) {
      // Clear + build the hash set of adj(u), block-cooperatively.
      c.SharedBlockFill(table, hash_capacity, kEmptySlot);
      co_await c.Sync();
      auto cursor = local;
      auto deg_l = c.Splat(degree);
      c.While(
          [&](Ctx& c) { return c.Lt(cursor, deg_l); },
          [&](Ctx& c) {
            auto e = c.Add(c.Cast<eid_t>(cursor), begin);
            auto w = c.Load(col, e);
            c.SharedHashInsert(table, hash_capacity, w, kHashMultiplier,
                               kEmptySlot);
            c.Assign(&cursor, c.Add(cursor, block_dim));
          });
      co_await c.Sync();
    }

    // Probe phase: threads stride over v in adj(u).
    auto vcur = local;
    auto deg_l = c.Splat(degree);
    c.While(
        [&](Ctx& c) { return c.Lt(vcur, deg_l); },
        [&](Ctx& c) {
          auto ve = c.Add(c.Cast<eid_t>(vcur), begin);
          auto v = c.Load(col, ve);
          auto v_begin = c.Load(row, v);
          auto v_end = c.Load(row, c.Add(v, 1u));
          c.For(v_begin, v_end, [&](Ctx& c, const Lanes<eid_t>& e) {
            auto w = c.Load(col, e);
            if (use_hash) {
              LaneMask found = c.SharedHashProbe(table, hash_capacity, w,
                                                 kHashMultiplier, kEmptySlot);
              auto hits = c.Select(found, c.Splat<uint64_t>(1),
                                   c.Splat<uint64_t>(0));
              c.Assign(&my_count, c.Add(my_count, hits));
            } else {
              // Binary search of w in adj(u) — global loads + divergence.
              auto lo = c.Splat<eid_t>(begin);
              auto hi = c.Splat<eid_t>(end);
              c.While(
                  [&](Ctx& c) { return c.Lt(lo, hi); },
                  [&](Ctx& c) {
                    auto mid = c.Add(lo, c.Shr(c.Sub(hi, lo), eid_t{1}));
                    auto x = c.Load(col, mid);
                    auto below = c.Lt(x, w);
                    c.IfElse(
                        below,
                        [&](Ctx& c) {
                          c.Assign(&lo, c.Add(mid, eid_t{1}));
                        },
                        [&](Ctx& c) { c.Assign(&hi, mid); });
                  });
              // Found iff lo is in range and col[lo] == w.
              LaneMask in_range = c.Lt(lo, c.Splat<eid_t>(end));
              LaneMask found = 0;
              c.If(in_range, [&](Ctx& c) {
                auto x = c.Load(col, lo);
                found = c.Eq(x, w);
              });
              auto hits = c.Select(found, c.Splat<uint64_t>(1),
                                   c.Splat<uint64_t>(0));
              c.Assign(&my_count, c.Add(my_count, hits));
            }
          });
          c.Assign(&vcur, c.Add(vcur, block_dim));
        });
    if (use_hash) {
      co_await c.Sync();  // table is cleared at the top of the next round
    }
  }

  uint64_t sum = c.ReduceAdd(my_count);
  c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
    c.AtomicAdd(count, zero_idx, c.Splat(sum));
  });
  co_return;
}

/// Bisson-Fatica-style counting on the full symmetrized adjacency: each
/// block owns a smallest-vertex u, stages adj(u) in the shared hash set
/// (or falls back to binary search for hub rows that exceed it), and
/// counts w in adj(v) ∩ adj(u) over ordered wedges u < v < w.  Hub rows
/// make this the load-imbalance- and divergence-heavy variant.
KernelTask UnorientedTcKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                              DevPtr<uint64_t> count, uint32_t num_vertices,
                              uint32_t hash_capacity, bool force_binary_search,
                              uint32_t vertex_sample) {
  SmemPtr<uint32_t> table{0};
  auto local = c.BlockThreadId();
  auto block_dim = c.Splat(c.block_dim());
  auto zero_idx = c.Splat<uint32_t>(0);
  auto my_count = c.Splat<uint64_t>(0);

  for (uint32_t u = c.block_id(); u < num_vertices; u += c.grid_dim()) {
    if (u % vertex_sample != 0) continue;
    const eid_t begin = c.ScalarOf(c.Load(row, c.Splat(u)));
    const eid_t end = c.ScalarOf(c.Load(row, c.Splat(u + 1)));
    const uint32_t degree = static_cast<uint32_t>(end - begin);
    if (degree < 2) continue;
    // First neighbor > u (uniform binary search over the sorted row;
    // block-uniform, so the control flow below stays barrier-safe).
    eid_t lo = begin;
    eid_t hi = end;
    while (lo < hi) {
      eid_t mid = lo + (hi - lo) / 2;
      vid_t x = c.ScalarOf(c.Load(col, c.Splat(mid)));
      if (x <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const eid_t v_start = lo;
    if (v_start >= end) continue;

    const bool use_hash =
        !force_binary_search && degree <= hash_capacity / 2;
    if (use_hash) {
      c.SharedBlockFill(table, hash_capacity, kEmptySlot);
      co_await c.Sync();
      auto cursor = local;
      auto deg_l = c.Splat(degree);
      c.While(
          [&](Ctx& c) { return c.Lt(cursor, deg_l); },
          [&](Ctx& c) {
            auto e = c.Add(c.Cast<eid_t>(cursor), begin);
            auto w = c.Load(col, e);
            c.SharedHashInsert(table, hash_capacity, w, kHashMultiplier,
                               kEmptySlot);
            c.Assign(&cursor, c.Add(cursor, block_dim));
          });
      co_await c.Sync();
    }

    // Threads stride over candidate middles v (neighbors of u above u).
    auto vcur = c.Add(c.Cast<eid_t>(local), c.Splat(v_start));
    auto v_end_l = c.Splat<eid_t>(end);
    c.While(
        [&](Ctx& c) { return c.Lt(vcur, v_end_l); },
        [&](Ctx& c) {
          auto v = c.Load(col, vcur);
          auto adj_begin = c.Load(row, v);
          auto adj_end = c.Load(row, c.Add(v, 1u));
          // Per-lane binary search: first w > v in adj(v) (divergent).
          auto slo = adj_begin;
          auto shi = adj_end;
          c.While(
              [&](Ctx& c) { return c.Lt(slo, shi); },
              [&](Ctx& c) {
                auto mid = c.Add(slo, c.Shr(c.Sub(shi, slo), eid_t{1}));
                auto x = c.Load(col, mid);
                c.IfElse(
                    c.Le(x, v),
                    [&](Ctx& c) { c.Assign(&slo, c.Add(mid, eid_t{1})); },
                    [&](Ctx& c) { c.Assign(&shi, mid); });
              });
          c.For(slo, adj_end, [&](Ctx& c, const Lanes<eid_t>& e) {
            auto w = c.Load(col, e);
            if (use_hash) {
              LaneMask found = c.SharedHashProbe(table, hash_capacity, w,
                                                 kHashMultiplier, kEmptySlot);
              auto hits = c.Select(found, c.Splat<uint64_t>(1),
                                   c.Splat<uint64_t>(0));
              c.Assign(&my_count, c.Add(my_count, hits));
            } else {
              // Hub fallback: binary-search w in adj(u) (heavy divergence).
              auto blo = c.Splat<eid_t>(begin);
              auto bhi = c.Splat<eid_t>(end);
              c.While(
                  [&](Ctx& c) { return c.Lt(blo, bhi); },
                  [&](Ctx& c) {
                    auto mid = c.Add(blo, c.Shr(c.Sub(bhi, blo), eid_t{1}));
                    auto x = c.Load(col, mid);
                    c.IfElse(
                        c.Lt(x, w),
                        [&](Ctx& c) { c.Assign(&blo, c.Add(mid, eid_t{1})); },
                        [&](Ctx& c) { c.Assign(&bhi, mid); });
                  });
              LaneMask in_range = c.Lt(blo, c.Splat<eid_t>(end));
              LaneMask found = 0;
              c.If(in_range, [&](Ctx& c) {
                auto x = c.Load(col, blo);
                found = c.Eq(x, w);
              });
              auto hits = c.Select(found, c.Splat<uint64_t>(1),
                                   c.Splat<uint64_t>(0));
              c.Assign(&my_count, c.Add(my_count, hits));
            }
          });
          c.Assign(&vcur, c.Add(vcur, c.Cast<eid_t>(block_dim)));
        });
    if (use_hash) {
      co_await c.Sync();
    }
  }

  uint64_t sum = c.ReduceAdd(my_count);
  c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
    c.AtomicAdd(count, zero_idx, c.Splat(sum));
  });
  co_return;
}

}  // namespace

Result<graph::CsrGraph> SymmetrizeForTc(const graph::CsrGraph& g) {
  graph::CsrBuildOptions sym_options;
  sym_options.make_undirected = true;
  sym_options.remove_duplicates = true;
  sym_options.remove_self_loops = true;
  sym_options.sort_neighbors = true;
  return graph::CsrGraph::FromCoo(g.ToCoo(), sym_options);
}

Result<graph::CsrGraph> OrientByDegree(const graph::CsrGraph& g) {
  // Undirected interpretation: symmetrize, drop loops and duplicates.
  ADGRAPH_ASSIGN_OR_RETURN(graph::CsrGraph sym, SymmetrizeForTc(g));
  // Keep u -> v iff (deg(u), u) < (deg(v), v): every undirected edge
  // survives exactly once and the result is a DAG with bounded out-degree.
  graph::CooGraph oriented;
  oriented.num_vertices = sym.num_vertices();
  auto keep = [&sym](vid_t u, vid_t v) {
    eid_t du = sym.degree(u);
    eid_t dv = sym.degree(v);
    return du != dv ? du < dv : u < v;
  };
  for (vid_t u = 0; u < sym.num_vertices(); ++u) {
    for (vid_t v : sym.neighbors(u)) {
      if (keep(u, v)) oriented.AddEdge(u, v);
    }
  }
  graph::CsrBuildOptions dag_options;
  dag_options.sort_neighbors = true;
  return graph::CsrGraph::FromCoo(oriented, dag_options);
}

Result<TcResult> RunTriangleCountOnDevice(vgpu::Device* device,
                                          const DeviceCsr& prepared,
                                          const TcOptions& options) {
  if (prepared.num_vertices == 0) {
    return Status::InvalidArgument("triangle count on empty graph");
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      auto count, rt::DeviceBuffer<uint64_t>::CreateZeroed(device, 1));

  const uint32_t sample = std::max<uint32_t>(options.vertex_sample, 1);
  rt::DeviceTimer timer(device);
  vgpu::LaunchDims dims;
  dims.grid = std::min(prepared.num_vertices, options.max_grid);
  dims.block = options.block_size;
  dims.shared_bytes = options.hash_capacity * sizeof(uint32_t);
  dims.work_replication = sample;
  ADGRAPH_RETURN_NOT_OK(
      device
          ->Launch(options.orient ? "tc_hash_intersect" : "tc_bisson_fatica",
                   dims,
                   [&](Ctx& c) {
                     if (options.orient) {
                       return TcKernel(c, prepared.row_offsets.ptr(),
                                       prepared.col_indices.ptr(),
                                       count.ptr(), prepared.num_vertices,
                                       options.hash_capacity,
                                       options.force_binary_search, sample);
                     }
                     return UnorientedTcKernel(
                         c, prepared.row_offsets.ptr(),
                         prepared.col_indices.ptr(), count.ptr(),
                         prepared.num_vertices, options.hash_capacity,
                         options.force_binary_search, sample);
                   })
          .status());

  TcResult result;
  result.time_ms = timer.ElapsedMs();
  result.oriented_edges = prepared.num_edges;
  result.sampled = sample > 1;
  ADGRAPH_ASSIGN_OR_RETURN(
      result.triangles,
      primitives::GetElement<uint64_t>(device, count.ptr(), 0));
  result.triangles *= sample;  // extrapolation (exact when sample == 1)
  return result;
}

Result<TcResult> RunTriangleCount(vgpu::Device* device,
                                  const graph::CsrGraph& g,
                                  const TcOptions& options,
                                  GraphResidency* residency) {
  trace::Span algo_span(device->trace_track(), "algo:tc", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(g.num_vertices()));
  ResidentCsr staged;
  {
    trace::Span prep(device->trace_track(), "tc.prepare", "phase");
    prep.Arg("mode", options.orient ? "orient" : "symmetrize");
    ADGRAPH_ASSIGN_OR_RETURN(
        staged, Stage(residency, device, g,
                      options.orient ? GraphVariant::kTcOriented
                                     : GraphVariant::kSymSimple));
  }
  return RunTriangleCountOnDevice(device, *staged, options);
}

}  // namespace adgraph::core
