#ifndef ADGRAPH_CORE_SSSP_H_
#define ADGRAPH_CORE_SSSP_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/device.h"

namespace adgraph::core {

struct SsspOptions {
  graph::vid_t source = 0;
  uint32_t block_size = 256;
  /// Safety bound on relaxation rounds (0 = num_vertices - 1).
  uint32_t max_rounds = 0;
  /// Active-set optimization: each round relaxes only vertices whose
  /// distance changed last round instead of the whole vertex set (the
  /// standard frontier-based Bellman-Ford refinement).  Results are
  /// identical; work usually is not.
  bool use_frontier = true;
};

struct SsspResult {
  /// Per-vertex distance (+infinity when unreachable).
  std::vector<double> distances;
  uint32_t rounds = 0;
  double time_ms = 0;
};

/// Bellman-Ford single-source shortest paths: each round is a min-plus
/// relaxation sweep (the tropical-semiring iteration nvGRAPH's SSSP is
/// built on), with an on-device change flag for early termination.
/// Unweighted edges count as 1.  Negative weights are rejected.
class GraphResidency;

Result<SsspResult> RunSssp(vgpu::Device* device, const graph::CsrGraph& g,
                           const SsspOptions& options,
                           GraphResidency* residency = nullptr);

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_SSSP_H_
