#include "core/jaccard.h"

#include "core/device_graph.h"
#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::LaneMask;
using vgpu::Lanes;

/// One thread per vertex u; for each out-edge (u,v), a sorted-merge
/// intersection of adj(u) and adj(v) (dual-cursor While — per-lane data-
/// dependent loops with heavy divergence).
KernelTask JaccardKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                         DevPtr<double> out, uint32_t n) {
  auto u = c.GlobalThreadId();
  c.If(c.Lt(u, n), [&](Ctx& c) {
    auto u_begin = c.Load(row, u);
    auto u_end = c.Load(row, c.Add(u, 1u));
    c.For(u_begin, u_end, [&](Ctx& c, const Lanes<eid_t>& e) {
      auto v = c.Load(col, e);
      auto v_begin = c.Load(row, v);
      auto v_end = c.Load(row, c.Add(v, 1u));
      auto iu = u_begin;
      auto iv = v_begin;
      auto inter = c.Splat<uint32_t>(0);
      c.While(
          [&](Ctx& c) { return c.Lt(iu, u_end) & c.Lt(iv, v_end); },
          [&](Ctx& c) {
            auto a = c.Load(col, iu);
            auto b = c.Load(col, iv);
            LaneMask lt = c.Lt(a, b);
            LaneMask gt = c.Gt(a, b);
            LaneMask eq = c.NotMask(lt | gt);
            c.If(eq, [&](Ctx& c) {
              c.Assign(&inter, c.Add(inter, 1u));
              c.Assign(&iu, c.Add(iu, eid_t{1}));
              c.Assign(&iv, c.Add(iv, eid_t{1}));
            });
            c.If(lt, [&](Ctx& c) { c.Assign(&iu, c.Add(iu, eid_t{1})); });
            c.If(gt, [&](Ctx& c) { c.Assign(&iv, c.Add(iv, eid_t{1})); });
          });
      auto du = c.Cast<uint32_t>(c.Sub(u_end, u_begin));
      auto dv = c.Cast<uint32_t>(c.Sub(v_end, v_begin));
      auto uni = c.Sub(c.Add(du, dv), inter);
      auto denom = c.Cast<double>(uni);
      auto numer = c.Cast<double>(inter);
      // Guard empty unions.
      auto zero_union = c.Eq(uni, 0u);
      auto coeff = c.Select(zero_union, c.Splat(0.0), c.Div(numer, denom));
      c.Store(out, e, coeff);
    });
  });
  co_return;
}

}  // namespace

Result<JaccardResult> RunJaccard(vgpu::Device* device,
                                 const graph::CsrGraph& g,
                                 const JaccardOptions& options,
                                 GraphResidency* residency) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("Jaccard on empty graph");
  }
  trace::Span algo_span(device->trace_track(), "algo:jaccard", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(g.num_vertices()));

  ADGRAPH_ASSIGN_OR_RETURN(ResidentCsr staged,
                           Stage(residency, device, g, GraphVariant::kAsIs));
  const DeviceCsr& d = *staged;
  ADGRAPH_ASSIGN_OR_RETURN(
      auto out, rt::DeviceBuffer<double>::Create(device, g.num_edges()));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(
      device
          ->Launch("jaccard",
                   rt::CoverThreads(g.num_vertices(), options.block_size),
                   [&](Ctx& c) {
                     return JaccardKernel(c, d.row_offsets.ptr(),
                                          d.col_indices.ptr(), out.ptr(),
                                          g.num_vertices());
                   })
          .status());

  JaccardResult result;
  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.coefficients, out.ToHost());
  return result;
}

}  // namespace adgraph::core
