#include "core/kcore.h"

#include "core/device_graph.h"
#include "core/residency.h"
#include "trace/trace.h"
#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::Lanes;

KernelTask InitDegreeKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<int32_t> degree,
                            DevPtr<uint32_t> alive, uint32_t n) {
  auto v = c.GlobalThreadId();
  c.If(c.Lt(v, n), [&](Ctx& c) {
    auto begin = c.Load(row, v);
    auto end = c.Load(row, c.Add(v, 1u));
    c.Store(degree, v, c.Cast<int32_t>(c.Sub(end, begin)));
    c.Store(alive, v, c.Splat<uint32_t>(1));
  });
  co_return;
}

/// Removes alive vertices of degree < k, decrementing neighbor degrees.
/// When `core` is non-null, records k-1 as the removed vertex's core
/// number (full decomposition mode).
KernelTask PeelKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                      DevPtr<int32_t> degree, DevPtr<uint32_t> alive,
                      DevPtr<uint32_t> changed, uint32_t n, int32_t k,
                      DevPtr<uint32_t> core) {
  auto u = c.GlobalThreadId();
  c.If(c.Lt(u, n), [&](Ctx& c) {
    auto is_alive = c.Load(alive, u);
    c.If(c.Eq(is_alive, 1u), [&](Ctx& c) {
      auto deg = c.Load(degree, u);
      c.If(c.Lt(deg, k), [&](Ctx& c) {
        c.Store(alive, u, c.Splat<uint32_t>(0));
        c.Store(changed, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
        if (!core.is_null()) {
          c.Store(core, u, c.Splat<uint32_t>(static_cast<uint32_t>(k - 1)));
        }
        auto begin = c.Load(row, u);
        auto end = c.Load(row, c.Add(u, 1u));
        c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
          auto v = c.Load(col, e);
          c.AtomicAdd(degree, v, c.Splat<int32_t>(-1));
        });
      });
    });
  });
  co_return;
}

}  // namespace

Result<KCoreResult> RunKCore(vgpu::Device* device, const graph::CsrGraph& g,
                             const KCoreOptions& options,
                             GraphResidency* residency) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("k-core on empty graph");
  }
  ADGRAPH_ASSIGN_OR_RETURN(
      ResidentCsr staged,
      Stage(residency, device, g, GraphVariant::kSymSimple));
  const DeviceCsr& d = *staged;
  const vid_t n = d.num_vertices;

  trace::Span algo_span(device->trace_track(), "algo:kcore", "algo");
  algo_span.ArgNum("num_vertices", static_cast<uint64_t>(n));
  algo_span.ArgNum("k", static_cast<uint64_t>(options.k));

  ADGRAPH_ASSIGN_OR_RETURN(auto degree,
                           rt::DeviceBuffer<int32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto alive,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto changed,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(
      device
          ->Launch("kcore_init", rt::CoverThreads(n, options.block_size),
                   [&](Ctx& c) {
                     return InitDegreeKernel(c, d.row_offsets.ptr(),
                                             degree.ptr(), alive.ptr(), n);
                   })
          .status());

  KCoreResult result;
  for (;;) {
    trace::Span sweep(device->trace_track(), "kcore.peel_round", "phase");
    sweep.ArgNum("round", static_cast<uint64_t>(result.peel_rounds + 1));
    ADGRAPH_RETURN_NOT_OK(
        primitives::SetElement<uint32_t>(device, changed.ptr(), 0, 0));
    ADGRAPH_RETURN_NOT_OK(
        device
            ->Launch("kcore_peel", rt::CoverThreads(n, options.block_size),
                     [&](Ctx& c) {
                       return PeelKernel(c, d.row_offsets.ptr(),
                                         d.col_indices.ptr(), degree.ptr(),
                                         alive.ptr(), changed.ptr(), n,
                                         static_cast<int32_t>(options.k),
                                         DevPtr<uint32_t>{});
                     })
            .status());
    result.peel_rounds += 1;
    ADGRAPH_ASSIGN_OR_RETURN(
        uint32_t any,
        primitives::GetElement<uint32_t>(device, changed.ptr(), 0));
    if (any == 0 || result.peel_rounds > n) break;
  }

  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.in_core, alive.ToHost());
  for (uint32_t flag : result.in_core) result.core_size += flag;
  return result;
}


Result<CoreDecompositionResult> RunCoreDecomposition(vgpu::Device* device,
                                                     const graph::CsrGraph& g,
                                                     uint32_t block_size) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("core decomposition on empty graph");
  }
  graph::CsrBuildOptions sym_options;
  sym_options.make_undirected = true;
  sym_options.remove_duplicates = true;
  sym_options.remove_self_loops = true;
  ADGRAPH_ASSIGN_OR_RETURN(graph::CsrGraph sym,
                           graph::CsrGraph::FromCoo(g.ToCoo(), sym_options));
  const vid_t n = sym.num_vertices();
  uint32_t max_degree = 0;
  for (vid_t v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, static_cast<uint32_t>(sym.degree(v)));
  }

  ADGRAPH_ASSIGN_OR_RETURN(DeviceCsr d, DeviceCsr::Upload(device, sym));
  ADGRAPH_ASSIGN_OR_RETURN(auto degree,
                           rt::DeviceBuffer<int32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto alive,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto core,
                           rt::DeviceBuffer<uint32_t>::Create(device, n));
  ADGRAPH_ASSIGN_OR_RETURN(auto changed,
                           rt::DeviceBuffer<uint32_t>::Create(device, 1));

  rt::DeviceTimer timer(device);
  ADGRAPH_RETURN_NOT_OK(primitives::Fill<uint32_t>(device, core.ptr(), n, 0));
  ADGRAPH_RETURN_NOT_OK(
      device
          ->Launch("kcore_init", rt::CoverThreads(n, block_size),
                   [&](Ctx& c) {
                     return InitDegreeKernel(c, d.row_offsets.ptr(),
                                             degree.ptr(), alive.ptr(), n);
                   })
          .status());

  CoreDecompositionResult result;
  uint64_t remaining = n;
  for (uint32_t k = 1; k <= max_degree + 1 && remaining > 0; ++k) {
    for (;;) {
      ADGRAPH_RETURN_NOT_OK(
          primitives::SetElement<uint32_t>(device, changed.ptr(), 0, 0));
      ADGRAPH_RETURN_NOT_OK(
          device
              ->Launch("kcore_peel", rt::CoverThreads(n, block_size),
                       [&](Ctx& c) {
                         return PeelKernel(c, d.row_offsets.ptr(),
                                           d.col_indices.ptr(), degree.ptr(),
                                           alive.ptr(), changed.ptr(), n,
                                           static_cast<int32_t>(k),
                                           core.ptr());
                       })
              .status());
      result.peel_rounds += 1;
      ADGRAPH_ASSIGN_OR_RETURN(
          uint32_t any,
          primitives::GetElement<uint32_t>(device, changed.ptr(), 0));
      if (any == 0) break;
    }
    // Vertices still alive at phase k survive the k-core; their core
    // number is at least k (finalized when they eventually peel).
  }
  result.time_ms = timer.ElapsedMs();
  ADGRAPH_ASSIGN_OR_RETURN(result.core_numbers, core.ToHost());
  for (uint32_t value : result.core_numbers) {
    result.max_core = std::max(result.max_core, value);
  }
  (void)remaining;
  return result;
}

}  // namespace adgraph::core
