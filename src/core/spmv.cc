#include "core/spmv.h"

#include <limits>
#include <string>

#include "vgpu/ctx.h"
#include "vgpu/kernel.h"

namespace adgraph::core {
namespace {

using graph::eid_t;
using graph::vid_t;
using vgpu::Ctx;
using vgpu::DevPtr;
using vgpu::KernelTask;
using vgpu::Lanes;

}  // namespace

namespace detail {

KernelTask SpmvRowSliceKernel(Ctx& c, DevPtr<eid_t> row, DevPtr<vid_t> col,
                              DevPtr<double> weights, DevPtr<double> x,
                              DevPtr<double> y, uint32_t num_rows,
                              Semiring semiring) {
  const bool weighted = !weights.is_null();
  const double identity = semiring == Semiring::kMinPlus
                              ? std::numeric_limits<double>::infinity()
                              : 0.0;
  auto u = c.GlobalThreadId();
  c.If(c.Lt(u, num_rows), [&](Ctx& c) {
    auto begin = c.Load(row, u);
    auto end = c.Load(row, c.Add(u, 1u));
    auto acc = c.Splat(identity);
    c.For(begin, end, [&](Ctx& c, const Lanes<eid_t>& e) {
      auto v = c.Load(col, e);
      auto xv = c.Load(x, v);
      auto w = weighted ? c.Load(weights, e) : c.Splat(1.0);
      switch (semiring) {
        case Semiring::kPlusTimes:
          c.Assign(&acc, c.Add(acc, c.Mul(w, xv)));
          break;
        case Semiring::kMinPlus:
          c.Assign(&acc, c.Min(acc, c.Add(w, xv)));
          break;
        case Semiring::kOrAnd: {
          // acc |= (w != 0) & (x != 0), on doubles: max of 0/1 products.
          auto w_nz = c.Select(c.Ne(w, 0.0), c.Splat(1.0), c.Splat(0.0));
          auto x_nz = c.Select(c.Ne(xv, 0.0), c.Splat(1.0), c.Splat(0.0));
          c.Assign(&acc, c.Max(acc, c.Mul(w_nz, x_nz)));
          break;
        }
      }
    });
    c.Store(y, u, acc);
  });
  co_return;
}

}  // namespace detail

Status RunSpmvOnDevice(vgpu::Device* device, const DeviceCsr& g,
                       DevPtr<double> x, DevPtr<double> y,
                       const SpmvOptions& options) {
  if (x.addr == y.addr) {
    return Status::InvalidArgument("SpMV output may not alias input");
  }
  auto stats = device->Launch(
      "spmv", rt::CoverThreads(g.num_vertices, options.block_size),
      [&](Ctx& c) {
        return detail::SpmvRowSliceKernel(
            c, g.row_offsets.ptr(), g.col_indices.ptr(),
            g.has_weights() ? g.weights.ptr() : DevPtr<double>{}, x, y,
            g.num_vertices, options.semiring);
      });
  return stats.ok() ? Status::OK() : stats.status();
}

Result<std::vector<double>> RunSpmv(vgpu::Device* device,
                                    const graph::CsrGraph& g,
                                    const std::vector<double>& x,
                                    const SpmvOptions& options) {
  if (x.size() != g.num_vertices()) {
    return Status::InvalidArgument("x has " + std::to_string(x.size()) +
                                   " entries; graph has " +
                                   std::to_string(g.num_vertices()) +
                                   " vertices");
  }
  ADGRAPH_ASSIGN_OR_RETURN(DeviceCsr d, DeviceCsr::Upload(device, g));
  ADGRAPH_ASSIGN_OR_RETURN(auto dx,
                           rt::DeviceBuffer<double>::FromHost(device, x));
  ADGRAPH_ASSIGN_OR_RETURN(
      auto dy, rt::DeviceBuffer<double>::Create(device, g.num_vertices()));
  ADGRAPH_RETURN_NOT_OK(
      RunSpmvOnDevice(device, d, dx.ptr(), dy.ptr(), options));
  return dy.ToHost();
}

}  // namespace adgraph::core
