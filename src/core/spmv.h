#ifndef ADGRAPH_CORE_SPMV_H_
#define ADGRAPH_CORE_SPMV_H_

#include <vector>

#include "core/device_graph.h"
#include "graph/csr.h"
#include "util/status.h"
#include "vgpu/ctx.h"
#include "vgpu/device.h"

namespace adgraph::core {

/// Algebraic semiring of the SpMV (nvGRAPH's "semiring Sparse
/// Matrix-Vector Product", paper §3.2.1).
enum class Semiring {
  kPlusTimes,  ///< classic (+, *, identity 0): PageRank, random walks
  kMinPlus,    ///< tropical (min, +, identity +inf): shortest paths
  kOrAnd,      ///< boolean (or, and, identity 0): one reachability step
};

struct SpmvOptions {
  Semiring semiring = Semiring::kPlusTimes;
  uint32_t block_size = 256;
};

/// y = A (semiring-) * x on the device.  A is `g` (CSR); missing weights
/// act as 1.0.  x and y are device vectors of length num_vertices; y may
/// not alias x.
Status RunSpmvOnDevice(vgpu::Device* device, const DeviceCsr& g,
                       vgpu::DevPtr<double> x, vgpu::DevPtr<double> y,
                       const SpmvOptions& options);

/// Convenience host-to-host wrapper (uploads g and x, downloads y).
Result<std::vector<double>> RunSpmv(vgpu::Device* device,
                                    const graph::CsrGraph& g,
                                    const std::vector<double>& x,
                                    const SpmvOptions& options);

namespace detail {

/// Thread-per-row SpMV over a row *slice*: `row` holds num_rows+1 offsets
/// rebased to the slice (row[0] == 0) into `col`/`weights`; `x` is indexed
/// by the (global) column ids and results land in y[0..num_rows).  This is
/// the exact kernel body RunSpmvOnDevice launches over the whole matrix —
/// per-row accumulation order is identical, which is what makes the
/// out-of-core sharded PageRank bit-identical to the in-memory run
/// (src/ooc/, DESIGN.md §2.13).
vgpu::KernelTask SpmvRowSliceKernel(vgpu::Ctx& c,
                                    vgpu::DevPtr<graph::eid_t> row,
                                    vgpu::DevPtr<graph::vid_t> col,
                                    vgpu::DevPtr<double> weights,
                                    vgpu::DevPtr<double> x,
                                    vgpu::DevPtr<double> y,
                                    uint32_t num_rows, Semiring semiring);

}  // namespace detail

}  // namespace adgraph::core

#endif  // ADGRAPH_CORE_SPMV_H_
