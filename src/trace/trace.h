#ifndef ADGRAPH_TRACE_TRACE_H_
#define ADGRAPH_TRACE_TRACE_H_

/// \file
/// Low-overhead structured span tracing across the whole stack
/// (DESIGN.md §2.5).
///
/// Every layer emits *complete spans* — named intervals with a start
/// timestamp, a duration, a track and optional key/value args:
///
///   - `vgpu::Device`: one span per kernel launch (with the KernelStats
///     cycle breakdown attached as args) and per host<->device copy;
///   - `rt::Stream`: launch / record / synchronize;
///   - `core/`: one span per algorithm entry point, child spans per
///     iteration or phase (e.g. BFS top-down vs bottom-up sweeps);
///   - `serve::Scheduler`: queue-wait, admission and execute spans on one
///     track per worker thread.
///
/// Tracks are timelines in the exported view: every simulated device gets
/// its own track, every serve worker thread another — loading the Chrome
/// trace-event JSON into chrome://tracing or Perfetto reproduces the
/// paper's Figure 7/8 coarse-grained timelines for *any* run.
///
/// Two kinds of sinks can be active at once:
///   - the process-global ring buffer, controlled by Start()/Stop()
///     (what `adgraph_cli --trace file.json` uses), and
///   - any number of per-session Collector objects (what a
///     `serve::Scheduler` with TraceOptions uses), each receiving every
///     event emitted while attached.
///
/// Overhead contract: with no sink active, every instrumentation site
/// reduces to a single relaxed atomic load (`Enabled()` returning false);
/// the compiled-in-but-disabled cost is <5% on bench_micro.  When sinks
/// are active, emission takes one global mutex — serializing writers is
/// what keeps the ring buffer ThreadSanitizer-clean under the serve pool.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace adgraph::trace {

/// Configuration of a tracing window (global or per-session).
struct TraceOptions {
  /// Master switch; false = construct-but-ignore (convenient to thread
  /// through option structs unconditionally).
  bool enabled = false;
  /// If non-empty, the Chrome trace-event JSON is written here when the
  /// window closes (Stop() for the global window, Scheduler shutdown for
  /// a serve session).
  std::string path;
  /// Ring capacity in events; the oldest events are dropped (and counted)
  /// once the window holds this many.
  size_t ring_capacity = 1 << 16;
};

/// One key/value annotation on a span.  Numbers are kept unquoted in the
/// exported JSON so Perfetto can aggregate them.
struct TraceArg {
  std::string key;
  std::string value;
  bool is_number = false;
};

/// One event: a complete span ("ph":"X" in the Chrome trace-event format)
/// or, when `phase` is 'i', an instant marker ("ph":"i", zero duration) —
/// what the metrics alert engine drops onto its `alerts` track.
struct TraceEvent {
  std::string name;
  std::string category;  ///< "kernel", "memcpy", "stream", "algo", "phase", "serve", "alert"
  uint64_t track = 0;    ///< from RegisterTrack(); 0 = the host track
  double ts_us = 0;      ///< start, microseconds since the trace epoch
  double dur_us = 0;     ///< 0 for instants
  char phase = 'X';      ///< 'X' complete span, 'i' instant event
  std::vector<TraceArg> args;
};

/// Microseconds since the process-wide trace epoch (first use).
double NowUs();
/// Converts a steady_clock time_point to trace-epoch microseconds.
double ToUs(std::chrono::steady_clock::time_point tp);

/// Registers a named timeline and returns its id.  Duplicate names get a
/// " #n" suffix so two A100 devices stay distinguishable.  Thread-safe;
/// tracks are process-lifetime (ids are never reused).
uint64_t RegisterTrack(const std::string& name);

/// Names of all registered tracks, indexed by track id.
std::vector<std::string> TrackNames();

/// True iff at least one sink is active for the calling thread: a global
/// window, a Collector, or a per-job SpanCapture installed via
/// ScopedTraceContext.  One relaxed atomic load plus one thread-local read
/// — the fast-path guard of every emission site.
bool Enabled();

/// Routes one event to every active sink.  When the calling thread carries
/// a trace context (ScopedTraceContext), the job's identity args
/// (`trace_id`, `wire_job_id`, `sched_job_id`) are stamped onto the event
/// first and the event is also appended to the context's SpanCapture.
/// No-op when nothing is active.
void Emit(TraceEvent event);

/// Emits an instant marker ("ph":"i") at the current time on `track`; the
/// optional numeric args land unquoted, Perfetto-aggregatable.  No-op when
/// tracing is disabled.
void EmitInstant(uint64_t track, std::string name, std::string category,
                 std::vector<TraceArg> args = {});

// ---------------------------------------------------------------------------
// Process-global window
// ---------------------------------------------------------------------------

/// Opens the global tracing window (idempotent: a second Start while open
/// fails with kAlreadyExists).  Clears any previous ring contents.
Status Start(TraceOptions options);

/// Closes the global window; if its options named a path, writes the
/// Chrome JSON there first.  OK (no-op) when no window is open.
Status Stop();

/// True iff the global window is open (Collectors do not count).
bool GlobalActive();

/// Copy of the globally collected events, oldest first.
std::vector<TraceEvent> GlobalEvents();

/// Events evicted from the global ring since Start().
uint64_t GlobalDropped();

/// Writes the global window's events as Chrome trace-event JSON.
Status WriteChromeTrace(const std::string& path);

// ---------------------------------------------------------------------------
// Per-session sinks
// ---------------------------------------------------------------------------

/// \brief A private event sink: attaches to the emission fan-out on
/// construction, detaches on destruction, and keeps its own bounded ring —
/// independent of (and concurrent with) the global window.
class Collector {
 public:
  explicit Collector(size_t ring_capacity = 1 << 16);
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  std::vector<TraceEvent> Events() const;
  uint64_t dropped() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  friend void Emit(TraceEvent);
  void Accept(const TraceEvent& event);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;       ///< ring write cursor once full
  uint64_t dropped_ = 0;
};

/// Serializes `events` (with track metadata from the registry) in Chrome
/// trace-event JSON format to `out`.
void WriteChromeTraceJson(std::ostream& out,
                          const std::vector<TraceEvent>& events);

// ---------------------------------------------------------------------------
// Per-job trace context (DESIGN.md §2.14)
// ---------------------------------------------------------------------------

/// \brief Bounded thread-safe span buffer owned by one job: every event a
/// thread emits while a ScopedTraceContext referencing it is installed
/// lands here, in addition to the regular sinks.  This is what survives
/// after the global ring has overwritten a slow job's spans — the flight
/// recorder retains the capture, not ring indices.
class SpanCapture {
 public:
  explicit SpanCapture(size_t capacity = 2048);
  SpanCapture(const SpanCapture&) = delete;
  SpanCapture& operator=(const SpanCapture&) = delete;

  void Append(const TraceEvent& event);
  std::vector<TraceEvent> Events() const;
  /// Events not retained because the capture was full (newest dropped:
  /// the head of a job's story — wire, queue, admission — is the part an
  /// operator can least afford to lose).
  uint64_t dropped() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  size_t capacity_;
  uint64_t dropped_ = 0;
};

/// \brief Identity of the job the calling thread is currently working for.
/// Propagated explicitly across thread hops (net handler -> scheduler
/// worker) by copying it into the JobSpec and re-installing it with
/// ScopedTraceContext on the far side.
struct TraceContext {
  uint64_t trace_id = 0;      ///< end-to-end id; 0 = no context
  uint64_t wire_job_id = 0;   ///< net-server-minted job id (0 off the wire)
  uint64_t sched_job_id = 0;  ///< scheduler-minted job id
  std::shared_ptr<SpanCapture> capture;
};

/// Mints a process-unique nonzero trace id (counter-seeded, bit-mixed so
/// ids from concurrent sessions do not collide visually).
uint64_t MintTraceId();

/// 16-digit lowercase hex spelling of a trace id — the wire/CLI form.
std::string TraceIdHex(uint64_t trace_id);

/// Parses the hex spelling back; 0 on malformed input (0 is never minted).
uint64_t ParseTraceIdHex(const std::string& hex);

/// Copy of the calling thread's installed context (all-zero when none).
TraceContext CurrentContext();

/// \brief RAII: installs `context` as the calling thread's trace context,
/// restoring the previous one on destruction.  While installed, every
/// Emit() on this thread stamps the job identity args and feeds the
/// context's SpanCapture — which also makes Enabled() true on this thread
/// even when no global sink is attached, so per-job capture works with
/// process-wide tracing off.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

// ---------------------------------------------------------------------------
// Span RAII
// ---------------------------------------------------------------------------

/// \brief Scoped span: captures the start time at construction and emits
/// one complete event at destruction (or End()).  When tracing is
/// disabled at construction the object is inert and costs one atomic
/// load.
class Span {
 public:
  /// Inert span (never emits).
  Span() = default;

  Span(uint64_t track, std::string name, std::string category)
      : active_(Enabled()) {
    if (!active_) return;
    event_.track = track;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.ts_us = NowUs();
  }

  Span(Span&& other) noexcept
      : active_(std::exchange(other.active_, false)),
        event_(std::move(other.event_)) {}

  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;

  /// False when tracing was off at construction — callers can skip
  /// arg-formatting work.
  bool active() const { return active_; }

  void Arg(std::string key, std::string value) {
    if (!active_) return;
    event_.args.push_back({std::move(key), std::move(value), false});
  }
  void ArgNum(std::string key, double value);
  void ArgNum(std::string key, uint64_t value);

  /// Emits the span now (idempotent; the destructor becomes a no-op).
  void End() {
    if (!active_) return;
    active_ = false;
    event_.dur_us = NowUs() - event_.ts_us;
    Emit(std::move(event_));
  }

 private:
  bool active_ = false;
  TraceEvent event_;
};

}  // namespace adgraph::trace

#endif  // ADGRAPH_TRACE_TRACE_H_
