#include "trace/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

namespace adgraph::trace {

namespace {

/// All tracer state behind one mutex: the global ring, the attached
/// Collectors and the track registry.  One lock per emission is the whole
/// synchronization story — simple to reason about, ThreadSanitizer-clean,
/// and cheap at the span granularity we emit (spans, not instructions).
struct TracerState {
  std::mutex mutex;

  // Global window (Start()/Stop()).
  bool global_active = false;
  TraceOptions global_options;
  std::vector<TraceEvent> ring;
  size_t ring_next = 0;  ///< write cursor once the ring is full
  uint64_t dropped = 0;

  // Per-session sinks.
  std::vector<Collector*> collectors;

  // Track registry (process-lifetime; index = track id).
  std::vector<std::string> tracks;
  std::map<std::string, uint32_t> name_uses;
};

TracerState& State() {
  static TracerState* state = new TracerState();  // leaked: used at exit
  return *state;
}

/// Fast-path guard: true iff any sink is attached.  Updated under the
/// state mutex, read with a relaxed load from every emission site.
std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

void UpdateEnabledLocked(const TracerState& state) {
  EnabledFlag().store(state.global_active || !state.collectors.empty(),
                      std::memory_order_relaxed);
}

std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  AppendJsonEscaped(&out, s);
  out += "\"";
  return out;
}

std::string JsonNumber(double v) {
  // Plain decimal (never exponent/NaN) so any JSON parser accepts it.
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// The calling thread's installed job context.  Read on every emission;
/// written only by ScopedTraceContext on the same thread, so no atomics.
TraceContext& ThreadContext() {
  thread_local TraceContext context;
  return context;
}

std::string FormatU64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

}  // namespace

double NowUs() {
  // Touch the epoch before sampling the clock: on the very first call the
  // epoch's static initializer would otherwise run *after* the sample was
  // taken, handing the first span of the process a negative timestamp.
  (void)Epoch();
  return ToUs(std::chrono::steady_clock::now());
}

double ToUs(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double, std::micro>(tp - Epoch()).count();
}

uint64_t RegisterTrack(const std::string& name) {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.tracks.empty()) state.tracks.push_back("host");  // track 0
  uint32_t uses = state.name_uses[name]++;
  std::string unique =
      uses == 0 ? name : name + " #" + std::to_string(uses + 1);
  state.tracks.push_back(unique);
  return state.tracks.size() - 1;
}

std::vector<std::string> TrackNames() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.tracks.empty()) state.tracks.push_back("host");
  return state.tracks;
}

bool Enabled() {
  return EnabledFlag().load(std::memory_order_relaxed) ||
         ThreadContext().capture != nullptr;
}

void Emit(TraceEvent event) {
  if (!Enabled()) return;
  const TraceContext& context = ThreadContext();
  if (context.trace_id != 0) {
    // Stamp the job identity so every span the job touches — wire, queue,
    // admission, engine rounds, kernels — joins on one id (§2.14).
    event.args.push_back({"trace_id", TraceIdHex(context.trace_id), false});
    if (context.wire_job_id != 0) {
      event.args.push_back(
          {"wire_job_id", FormatU64(context.wire_job_id), true});
    }
    if (context.sched_job_id != 0) {
      event.args.push_back(
          {"sched_job_id", FormatU64(context.sched_job_id), true});
    }
  }
  if (context.capture != nullptr) context.capture->Append(event);
  if (!EnabledFlag().load(std::memory_order_relaxed)) return;
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (Collector* collector : state.collectors) collector->Accept(event);
  if (!state.global_active) return;
  if (state.ring.size() < state.global_options.ring_capacity) {
    state.ring.push_back(std::move(event));
  } else if (!state.ring.empty()) {
    state.ring[state.ring_next] = std::move(event);
    state.ring_next = (state.ring_next + 1) % state.ring.size();
    state.dropped += 1;
  }
}

void EmitInstant(uint64_t track, std::string name, std::string category,
                 std::vector<TraceArg> args) {
  if (!Enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.ts_us = NowUs();
  event.phase = 'i';
  event.args = std::move(args);
  Emit(std::move(event));
}

Status Start(TraceOptions options) {
  // Pin the epoch no later than the window opens: timestamps captured
  // after this point (e.g. Scheduler's enqueued_at, converted retroactively
  // via ToUs) can then never precede it and go negative.
  (void)Epoch();
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.global_active) {
    return Status::AlreadyExists("global tracing window already open");
  }
  options.ring_capacity = std::max<size_t>(options.ring_capacity, 1);
  state.global_active = true;
  state.global_options = std::move(options);
  state.ring.clear();
  state.ring_next = 0;
  state.dropped = 0;
  UpdateEnabledLocked(state);
  return Status::OK();
}

bool GlobalActive() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.global_active;
}

std::vector<TraceEvent> GlobalEvents() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<TraceEvent> events;
  events.reserve(state.ring.size());
  // Oldest first: the ring holds [next, end) then [0, next).
  for (size_t i = 0; i < state.ring.size(); ++i) {
    events.push_back(state.ring[(state.ring_next + i) % state.ring.size()]);
  }
  return events;
}

uint64_t GlobalDropped() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.dropped;
}

Status Stop() {
  std::string path;
  {
    TracerState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.global_active) return Status::OK();
    path = state.global_options.path;
  }
  if (!path.empty()) {
    ADGRAPH_RETURN_NOT_OK(WriteChromeTrace(path));
  }
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.global_active = false;
  UpdateEnabledLocked(state);
  return Status::OK();
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open trace file '" + path + "'");
  WriteChromeTraceJson(out, GlobalEvents());
  out.flush();
  if (!out) return Status::IOError("failed writing trace file '" + path + "'");
  return Status::OK();
}

void WriteChromeTraceJson(std::ostream& out,
                          const std::vector<TraceEvent>& events) {
  const std::vector<std::string> tracks = TrackNames();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  // Metadata: name every referenced track, plus track 0.
  std::vector<bool> referenced(tracks.size(), false);
  if (!referenced.empty()) referenced[0] = true;
  for (const TraceEvent& event : events) {
    if (event.track < referenced.size()) referenced[event.track] = true;
  }
  for (size_t t = 0; t < tracks.size(); ++t) {
    if (!referenced[t]) continue;
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << t
        << ",\"args\":{\"name\":" << JsonString(tracks[t])
        << "},\"ts\":0}";
  }
  for (const TraceEvent& event : events) {
    if (!first) out << ",\n";
    first = false;
    const bool instant = event.phase == 'i';
    out << "{\"ph\":\"" << (instant ? 'i' : 'X')
        << "\",\"name\":" << JsonString(event.name)
        << ",\"cat\":" << JsonString(event.category)
        << ",\"pid\":1,\"tid\":" << event.track
        << ",\"ts\":" << JsonNumber(event.ts_us);
    if (instant) {
      // Thread-scoped instant marker; no duration field.
      out << ",\"s\":\"t\"";
    } else {
      out << ",\"dur\":" << JsonNumber(event.dur_us);
    }
    if (!event.args.empty()) {
      out << ",\"args\":{";
      for (size_t i = 0; i < event.args.size(); ++i) {
        const TraceArg& arg = event.args[i];
        if (i) out << ",";
        out << JsonString(arg.key) << ":"
            << (arg.is_number ? arg.value : JsonString(arg.value));
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

Collector::Collector(size_t ring_capacity)
    : capacity_(std::max<size_t>(ring_capacity, 1)) {
  (void)Epoch();  // see Start(): no sink may outrun the epoch
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.collectors.push_back(this);
  UpdateEnabledLocked(state);
}

Collector::~Collector() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto& collectors = state.collectors;
  collectors.erase(std::remove(collectors.begin(), collectors.end(), this),
                   collectors.end());
  UpdateEnabledLocked(state);
}

void Collector::Accept(const TraceEvent& event) {
  // Called with the tracer mutex held; ours nests strictly inside it.
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % ring_.size();
    dropped_ += 1;
  }
}

std::vector<TraceEvent> Collector::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return events;
}

uint64_t Collector::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

Status Collector::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open trace file '" + path + "'");
  WriteChromeTraceJson(out, Events());
  out.flush();
  if (!out) return Status::IOError("failed writing trace file '" + path + "'");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Per-job trace context
// ---------------------------------------------------------------------------

SpanCapture::SpanCapture(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void SpanCapture::Append(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() < capacity_) {
    events_.push_back(event);
  } else {
    // Keep the head of the job's story (wire/queue/admission), drop the
    // tail; a truncated kernel storm is recoverable from counters, a lost
    // submission path is not.
    dropped_ += 1;
  }
}

std::vector<TraceEvent> SpanCapture::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

uint64_t SpanCapture::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

uint64_t MintTraceId() {
  static std::atomic<uint64_t> next{1};
  // splitmix64 finalizer: spreads the counter over the id space so ids
  // minted by different submission paths are visually distinct, while
  // staying deterministic per process (no wall-clock dependence).
  uint64_t z = next.fetch_add(1, std::memory_order_relaxed);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return buf;
}

uint64_t ParseTraceIdHex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  uint64_t value = 0;
  for (char ch : hex) {
    value <<= 4;
    if (ch >= '0' && ch <= '9') {
      value |= static_cast<uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      value |= static_cast<uint64_t>(ch - 'a' + 10);
    } else if (ch >= 'A' && ch <= 'F') {
      value |= static_cast<uint64_t>(ch - 'A' + 10);
    } else {
      return 0;
    }
  }
  return value;
}

TraceContext CurrentContext() { return ThreadContext(); }

ScopedTraceContext::ScopedTraceContext(TraceContext context)
    : previous_(std::move(ThreadContext())) {
  ThreadContext() = std::move(context);
}

ScopedTraceContext::~ScopedTraceContext() {
  ThreadContext() = std::move(previous_);
}

// ---------------------------------------------------------------------------
// Span arg helpers
// ---------------------------------------------------------------------------

void Span::ArgNum(std::string key, double value) {
  if (!active_) return;
  event_.args.push_back({std::move(key), JsonNumber(value), true});
}

void Span::ArgNum(std::string key, uint64_t value) {
  if (!active_) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  event_.args.push_back({std::move(key), buf, true});
}

}  // namespace adgraph::trace
