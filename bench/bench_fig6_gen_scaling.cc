// Reproduces paper Figure 6: "Speed Up of adGRAPH on Z100L relative to
// Z100" — generational scaling of the AMD-like architecture (same library
// on both).  Paper averages: BFS 1.64x, TC 1.59x, ESBV 1.74x; overall
// ~1.65x, against an FP64 ratio of ~1.71x — the paper's evidence that
// adGRAPH's parallel efficiency is high.

#include "bench/bench_common.h"
#include "vgpu/arch.h"

int main(int argc, char** argv) {
  return adgraph::bench::RunSpeedupFigure(
      argc, argv, adgraph::vgpu::Z100LConfig(), adgraph::vgpu::Z100Config(),
      "Figure 6: Speed Up of adGRAPH on Z100L relative to Z100",
      "fig6_gen_scaling");
}
