// Reproduces paper Table 4: "Specification of DataSet" — for each of the
// seven datasets, the paper-scale statistics alongside the generated
// proxy's measured statistics (vertices, edges, maxDegree), demonstrating
// that the proxies preserve edge-count ordering and skew character.

#include <iostream>

#include "bench/bench_common.h"
#include "graph/datasets.h"
#include "graph/stats.h"
#include "util/table.h"

namespace adgraph::bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  EnsureOutDir(config);

  TablePrinter table({"DataSet", "category", "paper V", "paper E",
                      "paper maxDeg", "divisor", "proxy V", "proxy E",
                      "proxy maxDeg", "proxy skew", "deg p50/p99",
                      "tail alpha"});
  for (const auto& spec : config.SelectedDatasets()) {
    auto graph = graph::Materialize(spec, config.extra_divisor);
    if (!graph.ok()) {
      std::cerr << spec.name << ": " << graph.status().ToString() << "\n";
      return 1;
    }
    auto stats = graph::ComputeDegreeStats(*graph);
    auto dist = graph::ComputeDegreeDistribution(*graph);
    table.AddRow({spec.name, spec.category,
                  FormatWithCommas(spec.paper_vertices),
                  FormatWithCommas(spec.paper_edges),
                  FormatWithCommas(spec.paper_max_degree),
                  FormatFixed(spec.scale_divisor * config.extra_divisor, 0),
                  FormatWithCommas(stats.num_vertices),
                  FormatWithCommas(stats.num_edges),
                  FormatWithCommas(stats.max_degree),
                  FormatFixed(stats.skew(), 1),
                  std::to_string(dist.p50) + "/" + std::to_string(dist.p99),
                  FormatFixed(dist.powerlaw_alpha, 2)});
  }

  std::cout << "=== Table 4: Specification of DataSet (proxies) ===\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/table4_datasets.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
