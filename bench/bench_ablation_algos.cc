// Algorithm-design ablation: the implementation choices DESIGN.md calls
// out, each toggled on both flagship GPUs over the soc-liveJournal1 proxy:
//
//   BFS: direction-optimizing (nvGRAPH's bottom-up, paper §4.4) vs pure
//        top-down;
//   TC:  degree-oriented DAG (this library's optimization) vs the
//        nvGRAPH-style Bisson-Fatica full-adjacency kernel vs forcing the
//        binary-search paradigm ("the other mainstream paradigm", §4.4),
//        plus a shared-memory hash capacity sweep (the fallback boundary).

#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "core/bfs.h"
#include "core/triangle_count.h"
#include "graph/generate.h"
#include "util/table.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  EnsureOutDir(config);

  auto spec_result = graph::FindDataset("soc-liveJournal1");
  if (!spec_result.ok()) return 1;
  const auto& spec = *spec_result;
  auto directed = graph::Materialize(spec, config.extra_divisor);
  if (!directed.ok()) {
    std::cerr << directed.status().ToString() << "\n";
    return 1;
  }
  graph::CsrBuildOptions sym_options;
  sym_options.make_undirected = true;
  sym_options.remove_duplicates = true;
  sym_options.remove_self_loops = true;
  auto sym = graph::CsrGraph::FromCoo(directed->ToCoo(), sym_options).value();
  graph::vid_t source = 0;
  for (graph::vid_t v = 0; v < sym.num_vertices(); ++v) {
    if (sym.degree(v) > sym.degree(source)) source = v;
  }
  auto oriented = core::OrientByDegree(*directed).value();

  TablePrinter table({"Variant", "Z100L ms", "A100 ms", "notes"});
  auto run_both = [&](const std::string& name, auto fn,
                      const std::string& notes) {
    std::vector<std::string> row{name};
    for (const auto* arch : {&vgpu::Z100LConfig(), &vgpu::A100Config()}) {
      vgpu::Device::Options options;
      options.memory_scale = spec.scale_divisor * config.extra_divisor;
      vgpu::Device device(*arch, options);
      auto time = fn(&device);
      row.push_back(time.ok() ? FormatFixed(*time, 3)
                              : time.status().ToString());
    }
    row.push_back(notes);
    table.AddRow(std::move(row));
  };

  // --- BFS direction ablation -------------------------------------------
  for (bool dir_opt : {true, false}) {
    run_both(
        dir_opt ? "BFS direction-optimizing" : "BFS top-down only",
        [&](vgpu::Device* device) -> Result<double> {
          core::BfsOptions options;
          options.source = source;
          options.assume_symmetric = true;
          options.direction_optimizing = dir_opt;
          ADGRAPH_ASSIGN_OR_RETURN(auto r,
                                   core::RunBfs(device, sym, options));
          return r.time_ms;
        },
        dir_opt ? "nvGRAPH's bottom-up switch" : "frontier expansion only");
  }
  table.AddSeparator();

  // --- TC paradigm ablation ----------------------------------------------
  run_both(
      "TC degree-oriented DAG",
      [&](vgpu::Device* device) -> Result<double> {
        ADGRAPH_ASSIGN_OR_RETURN(auto d,
                                 core::DeviceCsr::Upload(device, oriented));
        ADGRAPH_ASSIGN_OR_RETURN(
            auto r, core::RunTriangleCountOnDevice(device, d, {}));
        return r.time_ms;
      },
      "this library's optimization");
  run_both(
      "TC Bisson-Fatica (nvGRAPH)",
      [&](vgpu::Device* device) -> Result<double> {
        ADGRAPH_ASSIGN_OR_RETURN(auto d, core::DeviceCsr::Upload(device, sym));
        core::TcOptions options;
        options.orient = false;
        options.hash_capacity = 2048;
        ADGRAPH_ASSIGN_OR_RETURN(
            auto r, core::RunTriangleCountOnDevice(device, d, options));
        return r.time_ms;
      },
      "full adjacency + ordering filters");
  run_both(
      "TC binary-search paradigm",
      [&](vgpu::Device* device) -> Result<double> {
        ADGRAPH_ASSIGN_OR_RETURN(auto d,
                                 core::DeviceCsr::Upload(device, oriented));
        core::TcOptions options;
        options.force_binary_search = true;
        ADGRAPH_ASSIGN_OR_RETURN(
            auto r, core::RunTriangleCountOnDevice(device, d, options));
        return r.time_ms;
      },
      "paper's 'other mainstream paradigm'");
  table.AddSeparator();

  // --- TC shared-set capacity sweep ---------------------------------------
  for (uint32_t capacity : {512u, 2048u, 8192u}) {
    run_both(
        "TC hash capacity " + std::to_string(capacity),
        [&](vgpu::Device* device) -> Result<double> {
          ADGRAPH_ASSIGN_OR_RETURN(auto d,
                                   core::DeviceCsr::Upload(device, sym));
          core::TcOptions options;
          options.orient = false;
          options.hash_capacity = capacity;
          ADGRAPH_ASSIGN_OR_RETURN(
              auto r, core::RunTriangleCountOnDevice(device, d, options));
          return r.time_ms;
        },
        capacity == 2048 ? "paper-reproduction setting" : "");
  }

  std::cout << "=== Algorithm-design ablation on soc-liveJournal1 "
               "(runtimes, ms) ===\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/ablation_algos.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
