#include "bench/bench_common.h"

#include <sys/stat.h>

#include <fstream>
#include <sstream>

#include "core/bfs.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "graph/generate.h"
#include "prof/session.h"
#include "runtime/runtime.h"
#include "util/logging.h"
#include "util/table.h"

namespace adgraph::bench {

std::string AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kBfs:
      return "BFS";
    case Algo::kTc:
      return "TC";
    case Algo::kEsbv:
      return "ESBV";
  }
  return "?";
}

std::string AlgoLongName(Algo algo) {
  switch (algo) {
    case Algo::kBfs:
      return "Breadth First Search";
    case Algo::kTc:
      return "Triangle Counting";
    case Algo::kEsbv:
      return "Extracting Subgraph by vertex";
  }
  return "?";
}

BenchConfig BenchConfig::FromArgs(int argc, const char* const* argv) {
  BenchConfig config;
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    ADGRAPH_LOG(Warning) << "flag parse error: "
                         << flags.status().ToString();
    return config;
  }
  config.extra_divisor = flags->GetDouble("extra-divisor", 1.0);
  config.out_dir = flags->GetString("out-dir", "bench_results");
  config.skip_twitter = flags->GetBool("skip-twitter", false);
  std::string list = flags->GetString("datasets", "");
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) config.datasets.push_back(item);
  }
  return config;
}

std::vector<graph::DatasetSpec> BenchConfig::SelectedDatasets() const {
  std::vector<graph::DatasetSpec> out;
  for (const auto& spec : graph::PaperDatasets()) {
    if (skip_twitter && spec.name == "twitter-mpi") continue;
    if (!datasets.empty()) {
      bool wanted = false;
      for (const auto& name : datasets) wanted |= name == spec.name;
      if (!wanted) continue;
    }
    out.push_back(spec);
  }
  return out;
}

uint32_t TcSampleFor(const graph::DatasetSpec& spec) {
  // Sampled simulation keeps the billion-wedge proxies affordable in a
  // functional simulator; counters, timing and counts extrapolate by the
  // factor (EXPERIMENTS.md "Sampled simulation").
  if (spec.name == "twitter-mpi") return 32;
  if (spec.name == "soc-sinaweibo" || spec.name == "web-uk-2002-all") {
    return 2;
  }
  return 1;
}

std::string FormatTimeCell(const CellResult& cell) {
  if (cell.oom) return "OOM";
  return FormatFixed(cell.time_ms, cell.time_ms >= 100 ? 0 : 2);
}

std::string FormatMtepsCell(const CellResult& cell) {
  if (cell.oom) return "OOM";
  if (cell.skipped) return "skipped";
  return FormatFixed(cell.mteps, 2);
}

void EnsureOutDir(const BenchConfig& config) {
  ::mkdir(config.out_dir.c_str(), 0755);
}

// --------------------------------------------------------------- runner

CellRunner::CellRunner(BenchConfig config) : config_(std::move(config)) {
  EnsureOutDir(config_);
  LoadCache();
}

std::string CellRunner::CellKey(const std::string& gpu, const std::string& ds,
                                Algo algo, double extra) {
  return gpu + "|" + ds + "|" + AlgoName(algo) + "|" + FormatFixed(extra, 4);
}

Result<const DatasetBundle*> CellRunner::Bundle(
    const graph::DatasetSpec& spec) {
  auto it = bundles_.find(spec.name);
  if (it != bundles_.end()) return &it->second;

  ADGRAPH_LOG(Info) << "materializing proxy for " << spec.name << " ...";
  DatasetBundle bundle;
  bundle.spec = spec;
  ADGRAPH_ASSIGN_OR_RETURN(bundle.directed,
                           graph::Materialize(spec, config_.extra_divisor));

  graph::CsrBuildOptions sym;
  sym.make_undirected = true;
  sym.remove_duplicates = true;
  sym.remove_self_loops = true;
  ADGRAPH_ASSIGN_OR_RETURN(
      bundle.symmetric,
      graph::CsrGraph::FromCoo(bundle.directed.ToCoo(), sym));
  for (graph::vid_t v = 0; v < bundle.symmetric.num_vertices(); ++v) {
    if (bundle.symmetric.degree(v) >
        bundle.symmetric.degree(bundle.bfs_source)) {
      bundle.bfs_source = v;
    }
  }

  // TC runs the nvGRAPH-faithful unoriented (Bisson-Fatica) kernel on the
  // symmetrized graph; the symmetric BFS input is exactly that graph.
  bundle.oriented = bundle.symmetric;

  graph::CooGraph weighted_coo = bundle.directed.ToCoo();
  graph::AttachRandomWeights(&weighted_coo, 0.0, 1.0,
                             /*seed=*/spec.recipe.seed + 1000);
  ADGRAPH_ASSIGN_OR_RETURN(bundle.weighted,
                           graph::CsrGraph::FromCoo(weighted_coo));
  bundle.esbv_vertices = core::SelectPseudoCluster(
      bundle.weighted.num_vertices(), 0.6, /*seed=*/42);

  auto [pos, inserted] = bundles_.emplace(spec.name, std::move(bundle));
  ADGRAPH_CHECK(inserted);
  return &pos->second;
}

std::unique_ptr<vgpu::Device> CellRunner::MakeDevice(
    const vgpu::ArchConfig& gpu, const graph::DatasetSpec& spec) {
  vgpu::Device::Options options;
  // Uniform world scaling: GPU RAM shrinks by the same factor as the
  // dataset, preserving the paper's capacity phenomena (ESBV OOM).
  options.memory_scale = spec.scale_divisor * config_.extra_divisor;
  return std::make_unique<vgpu::Device>(gpu, options);
}

Result<CellResult> CellRunner::Compute(vgpu::Device* device,
                                       const DatasetBundle& bundle,
                                       Algo algo) {
  CellResult cell;
  const double proxy_edges =
      static_cast<double>(bundle.directed.num_edges());
  switch (algo) {
    case Algo::kBfs: {
      core::BfsOptions options;
      options.source = bundle.bfs_source;
      options.assume_symmetric = true;
      auto result = core::RunBfs(device, bundle.symmetric, options);
      if (!result.ok()) {
        if (result.status().IsOutOfMemory()) {
          cell.oom = true;
          return cell;
        }
        return result.status();
      }
      cell.time_ms = result->time_ms;
      break;
    }
    case Algo::kTc: {
      core::TcOptions options;
      options.orient = false;  // nvGRAPH-style full-adjacency counting
      // 2048-entry shared set: at the proxies' scale, the fallback
      // boundary splits the datasets exactly as the paper-scale degrees
      // split nvGRAPH's shared-memory capacity.
      options.hash_capacity = 2048;
      options.vertex_sample = TcSampleFor(bundle.spec);
      auto uploaded = core::DeviceCsr::Upload(device, bundle.oriented);
      if (!uploaded.ok()) {
        if (uploaded.status().IsOutOfMemory()) {
          cell.oom = true;
          return cell;
        }
        return uploaded.status();
      }
      auto result =
          core::RunTriangleCountOnDevice(device, *uploaded, options);
      if (!result.ok()) {
        if (result.status().IsOutOfMemory()) {
          cell.oom = true;
          return cell;
        }
        return result.status();
      }
      cell.time_ms = result->time_ms;
      cell.sampled = result->sampled;
      break;
    }
    case Algo::kEsbv: {
      core::EsbvOptions options;
      options.vertices = bundle.esbv_vertices;
      auto result =
          core::ExtractSubgraphByVertex(device, bundle.weighted, options);
      if (!result.ok()) {
        if (result.status().IsOutOfMemory()) {
          cell.oom = true;
          return cell;
        }
        return result.status();
      }
      cell.time_ms = result->time_ms;
      break;
    }
  }
  if (cell.time_ms <= 0 || proxy_edges <= 0) {
    // A zero-edge proxy or a sub-resolution runtime has no meaningful
    // traversal rate; 0.0 + the skipped marker instead of inf/NaN or a
    // fake rate.
    cell.mteps = 0.0;
    cell.skipped = true;
  } else {
    cell.mteps = proxy_edges / (cell.time_ms * 1e3);
  }
  return cell;
}

Result<CellResult> CellRunner::Run(const vgpu::ArchConfig& gpu,
                                   const graph::DatasetSpec& spec,
                                   Algo algo) {
  std::string key = CellKey(gpu.name, spec.name, algo, config_.extra_divisor);
  auto it = cell_cache_.find(key);
  if (it != cell_cache_.end()) return it->second;

  ADGRAPH_ASSIGN_OR_RETURN(const DatasetBundle* bundle, Bundle(spec));
  auto device = MakeDevice(gpu, spec);
  ADGRAPH_LOG(Info) << "running " << AlgoName(algo) << " / " << spec.name
                    << " on " << gpu.name;
  ADGRAPH_ASSIGN_OR_RETURN(CellResult cell, Compute(device.get(), *bundle, algo));
  cell_cache_[key] = cell;
  cache_dirty_ = true;
  SaveCache();
  return cell;
}

Result<ProfileCell> CellRunner::RunProfiled(const vgpu::ArchConfig& gpu,
                                            const graph::DatasetSpec& spec,
                                            Algo algo) {
  std::string key =
      "prof|" + CellKey(gpu.name, spec.name, algo, config_.extra_divisor);
  auto it = profile_cache_.find(key);
  if (it != profile_cache_.end()) return it->second;

  ADGRAPH_ASSIGN_OR_RETURN(const DatasetBundle* bundle, Bundle(spec));
  auto device = MakeDevice(gpu, spec);
  ADGRAPH_LOG(Info) << "profiling " << AlgoName(algo) << " / " << spec.name
                    << " on " << gpu.name;
  prof::Session session(device.get());
  ADGRAPH_ASSIGN_OR_RETURN(CellResult cell, Compute(device.get(), *bundle, algo));
  if (cell.oom) {
    return Status::OutOfMemory("profiled cell hit device OOM");
  }
  prof::AlgoProfile profile = session.Finish();
  ProfileCell out;
  out.time_ms = cell.time_ms;
  auto platform = rt::PlatformOf(*device);
  out.fine = prof::ComputeFineGrained(profile, platform);
  out.coarse = prof::ComputeCoarse(profile, platform, gpu,
                                   vgpu::DefaultTimingParams());
  profile_cache_[key] = out;
  cache_dirty_ = true;
  SaveCache();
  return out;
}

int RunSpeedupFigure(int argc, const char* const* argv,
                     const vgpu::ArchConfig& target,
                     const vgpu::ArchConfig& baseline,
                     const std::string& title, const std::string& csv_name) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  CellRunner runner(config);

  TablePrinter table({"Workload", "BFS", "TC", "ESBV"});
  const std::vector<Algo> algos{Algo::kBfs, Algo::kTc, Algo::kEsbv};
  std::map<Algo, double> sum;
  std::map<Algo, double> minimum;
  std::map<Algo, double> maximum;
  std::map<Algo, int> counted;
  for (const auto& spec : config.SelectedDatasets()) {
    std::vector<std::string> row{spec.name};
    for (Algo algo : algos) {
      auto t = runner.Run(target, spec, algo);
      auto b = runner.Run(baseline, spec, algo);
      if (!t.ok() || !b.ok()) {
        std::cerr << "cell failed for " << spec.name << "\n";
        return 1;
      }
      if (t->oom || b->oom || t->time_ms <= 0) {
        row.push_back("OOM");
        continue;
      }
      double speedup = b->time_ms / t->time_ms;
      row.push_back(FormatFixed(speedup, 2) + "x");
      sum[algo] += speedup;
      counted[algo] += 1;
      if (counted[algo] == 1) {
        minimum[algo] = maximum[algo] = speedup;
      } else {
        minimum[algo] = std::min(minimum[algo], speedup);
        maximum[algo] = std::max(maximum[algo], speedup);
      }
    }
    table.AddRow(std::move(row));
  }
  table.AddSeparator();
  std::vector<std::string> avg{"average"};
  std::vector<std::string> range{"range"};
  for (Algo algo : algos) {
    if (counted[algo] == 0) {
      avg.push_back("-");
      range.push_back("-");
      continue;
    }
    avg.push_back(FormatFixed(sum[algo] / counted[algo], 2) + "x");
    range.push_back(FormatFixed(minimum[algo], 2) + "x-" +
                    FormatFixed(maximum[algo], 2) + "x");
  }
  table.AddRow(std::move(avg));
  table.AddRow(std::move(range));

  std::cout << "=== " << title << " ===\n"
            << "(speedup = runtime(" << baseline.name << ") / runtime("
            << target.name << "); >1 means " << target.name << " wins)\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/" + csv_name + ".csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

// ---------------------------------------------------------------- cache

namespace {
constexpr char kCacheFile[] = "/cell_cache.csv";
}  // namespace

void CellRunner::LoadCache() {
  std::ifstream in(config_.out_dir + kCacheFile);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream ss(line);
    std::string kind, key;
    if (!std::getline(ss, kind, ';') || !std::getline(ss, key, ';')) continue;
    if (kind == "cell") {
      CellResult cell;
      int oom = 0, sampled = 0, skipped = 0;
      char sep;
      // Five fields; pre-`skipped` cache lines fail the parse and the cell
      // is recomputed rather than loaded with a guessed flag.
      if (ss >> oom >> sep >> cell.time_ms >> sep >> cell.mteps >> sep >>
          sampled >> sep >> skipped) {
        cell.oom = oom != 0;
        cell.sampled = sampled != 0;
        cell.skipped = skipped != 0;
        cell_cache_[key] = cell;
      }
    } else if (kind == "prof") {
      ProfileCell cell;
      char sep;
      if (ss >> cell.time_ms >> sep >> cell.fine.type1 >> sep >>
          cell.fine.type2 >> sep >> cell.fine.type3 >> sep >>
          cell.fine.type4 >> sep >> cell.coarse.warp_utilization >> sep >>
          cell.coarse.shared_memory >> sep >> cell.coarse.l2_hit >> sep >>
          cell.coarse.global_memory) {
        profile_cache_[key] = cell;
      }
    }
  }
}

void CellRunner::SaveCache() const {
  if (!cache_dirty_) return;
  std::ofstream out(config_.out_dir + kCacheFile);
  if (!out) return;
  out.precision(17);
  for (const auto& [key, cell] : cell_cache_) {
    out << "cell;" << key << ';' << (cell.oom ? 1 : 0) << ',' << cell.time_ms
        << ',' << cell.mteps << ',' << (cell.sampled ? 1 : 0) << ','
        << (cell.skipped ? 1 : 0) << '\n';
  }
  for (const auto& [key, cell] : profile_cache_) {
    out << "prof;" << key << ';' << cell.time_ms << ',' << cell.fine.type1
        << ',' << cell.fine.type2 << ',' << cell.fine.type3 << ','
        << cell.fine.type4 << ',' << cell.coarse.warp_utilization << ','
        << cell.coarse.shared_memory << ',' << cell.coarse.l2_hit << ','
        << cell.coarse.global_memory << '\n';
  }
}

}  // namespace adgraph::bench
