// Extension experiment (paper §5.3, threat-to-validity #3): the paper
// conjectures that optimized data layouts (RealGraphGPU-style) could
// reduce the irregular-memory-access penalty behind Hypothesis 2.  The
// simulator lets us test that directly: run BFS and TC on
// soc-liveJournal1 under three vertex labelings — original (permuted
// ids), degree-ordered, and BFS-ordered — on both flagship GPUs, and
// report runtime plus the memory-efficiency metrics that the layout
// actually moves.

#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "core/bfs.h"
#include "core/triangle_count.h"
#include "graph/reorder.h"
#include "prof/session.h"
#include "util/table.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::bench {
namespace {

struct Layout {
  std::string name;
  graph::CsrGraph symmetric;
};

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  EnsureOutDir(config);

  auto spec = graph::FindDataset("soc-liveJournal1").value();
  auto directed = graph::Materialize(spec, config.extra_divisor);
  if (!directed.ok()) {
    std::cerr << directed.status().ToString() << "\n";
    return 1;
  }
  graph::CsrBuildOptions sym_options;
  sym_options.make_undirected = true;
  sym_options.remove_duplicates = true;
  sym_options.remove_self_loops = true;
  auto base =
      graph::CsrGraph::FromCoo(directed->ToCoo(), sym_options).value();

  std::vector<Layout> layouts;
  layouts.push_back({"original ids", base});
  layouts.push_back(
      {"degree order",
       graph::ApplyPermutation(base, graph::DegreeOrder(base)).value()});
  layouts.push_back(
      {"BFS order",
       graph::ApplyPermutation(base, graph::BfsOrder(base, 0)).value()});

  TablePrinter table({"GPU", "layout", "BFS ms", "BFS gld_eff", "BFS L2 hit",
                      "TC ms", "TC L2 hit"});
  for (const auto* arch : {&vgpu::Z100LConfig(), &vgpu::A100Config()}) {
    for (const auto& layout : layouts) {
      vgpu::Device::Options options;
      options.memory_scale = spec.scale_divisor * config.extra_divisor;
      vgpu::Device device(*arch, options);

      graph::vid_t source = 0;
      for (graph::vid_t v = 0; v < layout.symmetric.num_vertices(); ++v) {
        if (layout.symmetric.degree(v) > layout.symmetric.degree(source)) {
          source = v;
        }
      }
      prof::Session bfs_session(&device);
      core::BfsOptions bfs_options;
      bfs_options.source = source;
      bfs_options.assume_symmetric = true;
      auto bfs = core::RunBfs(&device, layout.symmetric, bfs_options);
      if (!bfs.ok()) {
        std::cerr << bfs.status().ToString() << "\n";
        return 1;
      }
      auto bfs_profile = bfs_session.Finish();

      prof::Session tc_session(&device);
      auto uploaded =
          core::DeviceCsr::Upload(&device, layout.symmetric).value();
      core::TcOptions tc_options;
      tc_options.orient = false;
      tc_options.hash_capacity = 2048;
      auto tc = core::RunTriangleCountOnDevice(&device, uploaded, tc_options);
      if (!tc.ok()) {
        std::cerr << tc.status().ToString() << "\n";
        return 1;
      }
      auto tc_profile = tc_session.Finish();

      table.AddRow(
          {arch->name, layout.name, FormatFixed(bfs->time_ms, 4),
           FormatFixed(100 * bfs_profile.counters.gld_efficiency(), 1) + "%",
           FormatFixed(100 * bfs_profile.counters.l2_hit_rate(), 1) + "%",
           FormatFixed(tc->time_ms, 4),
           FormatFixed(100 * tc_profile.counters.l2_hit_rate(), 1) + "%"});
    }
    table.AddSeparator();
  }

  std::cout << "=== Extension: data-layout (vertex reordering) study on "
               "soc-liveJournal1 ===\n"
            << "(the paper's §5.3 conjecture: better layouts weaken the "
               "irregular-access premise of Hypothesis 2)\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/ext_reordering.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
