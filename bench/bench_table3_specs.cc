// Reproduces paper Table 3: "Specification of GPUs" — the four simulated
// architecture configurations, plus the model-only parameters (paradigm,
// warp width, shared-memory path) that the paper's §2.4 comparison is
// about.

#include <iostream>

#include "bench/bench_common.h"
#include "util/table.h"
#include "vgpu/arch.h"

namespace adgraph::bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  EnsureOutDir(config);

  auto gpus = vgpu::PaperGpus();
  TablePrinter table({"Features", "Z100", "V100", "Z100L", "A100"});
  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto* gpu : gpus) cells.push_back(getter(*gpu));
    table.AddRow(std::move(cells));
  };

  row("FP64", [](const vgpu::ArchConfig& g) {
    return FormatFixed(g.fp64_tflops, 1) + "TFLOPS";
  });
  row("FP32", [](const vgpu::ArchConfig& g) {
    return FormatFixed(g.fp32_tflops, 1) + "TFLOPS";
  });
  row("RAM Volume", [](const vgpu::ArchConfig& g) {
    return std::to_string(g.dram_capacity_bytes >> 30) + "GB";
  });
  row("RAM Bandwidth", [](const vgpu::ArchConfig& g) {
    return FormatFixed(g.dram_bandwidth_gbps, 0) + "GB/s";
  });
  row("RAM Bitwidth", [](const vgpu::ArchConfig& g) {
    return std::to_string(g.ram_bitwidth) + "bit";
  });
  row("RAM Type", [](const vgpu::ArchConfig& g) { return g.ram_type; });
  row("SM/CU", [](const vgpu::ArchConfig& g) {
    return std::to_string(g.num_sms);
  });
  row("Cores/SP", [](const vgpu::ArchConfig& g) {
    return std::to_string(g.num_sms * g.lanes_per_sm);
  });
  table.AddSeparator();
  // Simulator-visible architectural distinctions (paper §2.4).
  row("Paradigm", [](const vgpu::ArchConfig& g) {
    return g.paradigm == vgpu::Paradigm::kSimt ? "SIMT" : "SIMD";
  });
  row("Warp/Wavefront", [](const vgpu::ArchConfig& g) {
    return std::to_string(g.warp_width);
  });
  row("SharedMem path", [](const vgpu::ArchConfig& g) {
    return g.shared_path == vgpu::SharedMemPath::kUnifiedWithL1
               ? "unified with L1"
               : "independent LDS";
  });

  std::cout << "=== Table 3: Specification of GPUs (simulated) ===\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/table3_specs.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
