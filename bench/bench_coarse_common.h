#ifndef ADGRAPH_BENCH_BENCH_COARSE_COMMON_H_
#define ADGRAPH_BENCH_BENCH_COARSE_COMMON_H_

#include "bench/bench_common.h"
#include "vgpu/arch.h"

namespace adgraph::bench {

/// Shared driver of the Figure 7/8 coarse-grained profiling benches: for
/// each of the four Table 2 metrics, the per-algorithm utilization on
/// `gpu` (averaged over the six profiled datasets, as the paper's bar
/// charts aggregate them).
int RunCoarseFigure(int argc, const char* const* argv,
                    const vgpu::ArchConfig& gpu, const std::string& title,
                    const std::string& csv_name);

}  // namespace adgraph::bench

#endif  // ADGRAPH_BENCH_BENCH_COARSE_COMMON_H_
