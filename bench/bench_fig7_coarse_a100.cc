// Reproduces paper Figure 7: "Coarse-grained Profiling Results of nvGRAPH
// on A100" — achieved_occupancy, shared_efficiency, l2_tex_hit_rate and
// gld_efficiency per benchmark algorithm.

#include "bench/bench_coarse_common.h"

int main(int argc, char** argv) {
  return adgraph::bench::RunCoarseFigure(
      argc, argv, adgraph::vgpu::A100Config(),
      "Figure 7: Coarse-grained Profiling Results of nvGRAPH on A100",
      "fig7_coarse_a100");
}
