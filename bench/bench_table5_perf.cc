// Reproduces paper Table 5: "Performance Result of nvGRAPH and adGRAPH" —
// runtime (ms) and edge throughput (million edges/s) for BFS, TC, ESBV on
// the seven proxy datasets, across the two GPU groups:
//   group 1: Z100 (adGRAPH) vs V100 (nvGRAPH)
//   group 2: Z100L (adGRAPH) vs A100 (nvGRAPH)
// The ESBV/twitter-mpi row reports OOM on every GPU, as in the paper.
//
// Results are cached in --out-dir so the figure benches (4/5/6) derive
// their speedups from this sweep instead of re-running it.

#include <iostream>

#include "bench/bench_common.h"
#include "util/table.h"
#include "vgpu/arch.h"

namespace adgraph::bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  CellRunner runner(config);

  const std::vector<Algo> algos{Algo::kBfs, Algo::kTc, Algo::kEsbv};
  const std::vector<const vgpu::ArchConfig*> gpus{
      &vgpu::Z100Config(), &vgpu::V100Config(), &vgpu::Z100LConfig(),
      &vgpu::A100Config()};

  TablePrinter table({"Task", "Workload", "Z100 ms", "V100 ms",
                      "Z100 MTEPS", "V100 MTEPS", "Z100L ms", "A100 ms",
                      "Z100L MTEPS", "A100 MTEPS"});
  for (Algo algo : algos) {
    bool first = true;
    for (const auto& spec : config.SelectedDatasets()) {
      std::vector<CellResult> cells;
      for (const auto* gpu : gpus) {
        auto cell = runner.Run(*gpu, spec, algo);
        if (!cell.ok()) {
          std::cerr << "cell failed (" << gpu->name << "/" << spec.name
                    << "/" << AlgoName(algo)
                    << "): " << cell.status().ToString() << "\n";
          return 1;
        }
        cells.push_back(*cell);
      }
      if (first) table.AddSeparator();
      std::string workload = spec.name;
      if (cells[0].sampled) workload += " (sampled)";
      table.AddRow({first ? AlgoName(algo) : "", workload,
                    FormatTimeCell(cells[0]), FormatTimeCell(cells[1]),
                    FormatMtepsCell(cells[0]), FormatMtepsCell(cells[1]),
                    FormatTimeCell(cells[2]), FormatTimeCell(cells[3]),
                    FormatMtepsCell(cells[2]), FormatMtepsCell(cells[3])});
      first = false;
    }
  }

  std::cout << "=== Table 5: Performance Result of nvGRAPH and adGRAPH "
               "(simulated) ===\n"
            << "(adGRAPH runs on Z100/Z100L, nvGRAPH on V100/A100 — one "
               "code base, per DESIGN.md)\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/table5_perf.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
