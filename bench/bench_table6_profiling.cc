// Reproduces paper Table 6: "Fine-grained Profiling Results of 2 GPUs
// running nvGRAPH or adGRAPH" — the per-component instruction-issue rates
// (instructions / runtime-ms) for BFS, ESBV, TC on A100 (ncu metrics) vs
// Z100L (ROCm-like metrics), over the six profiled datasets (the paper,
// too, excludes twitter-mpi here):
//   Type 1: inst_issued                  / SQ_INSTS_VALU
//   Type 2: inst_executed_shared_stores  / SQ_INSTS_LDS
//   Type 3: inst_executed_global_loads   / SQ_INSTS_VMEM_RD
//   Type 4: inst_executed_global_stores  / SQ_INSTS_VMEM_WR

#include <iostream>

#include "bench/bench_common.h"
#include "util/table.h"
#include "vgpu/arch.h"

namespace adgraph::bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  CellRunner runner(config);

  const std::vector<Algo> algos{Algo::kBfs, Algo::kEsbv, Algo::kTc};
  TablePrinter table({"Metrics Type", "Workload", "BFS A100", "BFS Z100L",
                      "ESBV A100", "ESBV Z100L", "TC A100", "TC Z100L"});

  // type index -> (dataset -> per-gpu-per-algo rate strings)
  for (int type = 0; type < 4; ++type) {
    bool first = true;
    for (const auto& spec : config.SelectedDatasets()) {
      if (spec.name == "twitter-mpi") continue;  // paper profiles 6 datasets
      std::vector<std::string> row{
          first ? "Type " + std::to_string(type + 1) : "", spec.name};
      for (Algo algo : algos) {
        for (const auto* gpu :
             {&vgpu::A100Config(), &vgpu::Z100LConfig()}) {
          auto cell = runner.RunProfiled(*gpu, spec, algo);
          if (!cell.ok()) {
            std::cerr << "profiled cell failed: "
                      << cell.status().ToString() << "\n";
            return 1;
          }
          uint64_t count = 0;
          switch (type) {
            case 0: count = cell->fine.type1; break;
            case 1: count = cell->fine.type2; break;
            case 2: count = cell->fine.type3; break;
            case 3: count = cell->fine.type4; break;
          }
          double rate =
              cell->time_ms > 0 ? static_cast<double>(count) / cell->time_ms
                                : 0;
          row.push_back(FormatRate(rate));
        }
      }
      if (first) table.AddSeparator();
      table.AddRow(std::move(row));
      first = false;
    }
  }

  std::cout
      << "=== Table 6: Fine-grained Profiling Results (simulated) ===\n"
      << "Type 1: inst_issued / SQ_INSTS_VALU; Type 2: shared stores / "
         "SQ_INSTS_LDS;\n"
      << "Type 3: global loads / SQ_INSTS_VMEM_RD; Type 4: global stores / "
         "SQ_INSTS_VMEM_WR.\n"
      << "Values are instruction-issue rates (per ms of modeled runtime), "
         "as in the paper.\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/table6_profiling.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
