// google-benchmark microbenchmarks of the substrate hot paths: coalescer,
// cache model, bank-conflict model, PRNG, generators, CSR construction,
// device scan, SpMV, and a small end-to-end BFS.  These guard the
// *simulator's own* performance — the wall-clock cost of the paper
// reproduction — rather than modeled GPU time.

#include <benchmark/benchmark.h>

#include "core/bfs.h"
#include "core/device_graph.h"
#include "core/spmv.h"
#include "graph/csr.h"
#include "graph/generate.h"
#include "runtime/runtime.h"
#include "util/random.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"
#include "vgpu/mem/cache.h"
#include "vgpu/mem/coalescer.h"
#include "vgpu/mem/shared_mem.h"

namespace adgraph {
namespace {

void BM_RngNext64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next64());
}
BENCHMARK(BM_RngNext64);

void BM_CoalesceSequential(benchmark::State& state) {
  vgpu::Lanes<uint64_t> addrs;
  for (uint32_t i = 0; i < 32; ++i) addrs[i] = i * 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vgpu::Coalesce(addrs, vgpu::FullMask(32), 4, 32));
  }
}
BENCHMARK(BM_CoalesceSequential);

void BM_CoalesceScattered(benchmark::State& state) {
  vgpu::Lanes<uint64_t> addrs;
  Rng rng(3);
  for (uint32_t i = 0; i < 32; ++i) addrs[i] = rng.Uniform(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vgpu::Coalesce(addrs, vgpu::FullMask(32), 4, 32));
  }
}
BENCHMARK(BM_CoalesceScattered);

void BM_CacheAccess(benchmark::State& state) {
  vgpu::CacheModel cache(40 << 20, 128, 16);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(rng.Uniform(1ull << 28)));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_BankConflictDegree(benchmark::State& state) {
  vgpu::SharedMemory smem(16 << 10, 32);
  vgpu::Lanes<uint64_t> offsets;
  Rng rng(7);
  for (uint32_t i = 0; i < 32; ++i) offsets[i] = rng.Uniform(4096) * 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smem.ConflictDegree(offsets, vgpu::FullMask(32), 4));
  }
}
BENCHMARK(BM_BankConflictDegree);

void BM_GenerateRmat(benchmark::State& state) {
  graph::RmatParams params;
  params.scale = static_cast<uint32_t>(state.range(0));
  params.edge_factor = 8;
  params.seed = 11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GenerateRmat(params));
  }
  state.SetItemsProcessed(state.iterations() *
                          (params.edge_factor * (1 << params.scale)));
}
BENCHMARK(BM_GenerateRmat)->Arg(12)->Arg(14);

void BM_CsrFromCoo(benchmark::State& state) {
  auto coo = graph::GenerateRmat({.scale = 14, .edge_factor = 8, .seed = 13})
                 .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CsrGraph::FromCoo(coo));
  }
  state.SetItemsProcessed(state.iterations() * coo.num_edges());
}
BENCHMARK(BM_CsrFromCoo);

void BM_DeviceScan(benchmark::State& state) {
  vgpu::Device dev(vgpu::A100Config());
  const uint64_t n = state.range(0);
  std::vector<uint32_t> host(n, 1);
  auto in = rt::DeviceBuffer<uint32_t>::FromHost(&dev, host).value();
  auto out = rt::DeviceBuffer<uint32_t>::Create(&dev, n).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::primitives::ExclusiveScanU32(&dev, in.ptr(), out.ptr(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DeviceScan)->Arg(1 << 12)->Arg(1 << 16);

void BM_DeviceSpmv(benchmark::State& state) {
  vgpu::Device dev(vgpu::A100Config());
  auto coo = graph::GenerateRmat({.scale = 12, .edge_factor = 8, .seed = 17})
                 .value();
  graph::AttachRandomWeights(&coo, 0.0, 1.0, 18);
  auto g = graph::CsrGraph::FromCoo(coo).value();
  auto d = core::DeviceCsr::Upload(&dev, g).value();
  auto x = rt::DeviceBuffer<double>::CreateZeroed(&dev, g.num_vertices())
               .value();
  auto y = rt::DeviceBuffer<double>::Create(&dev, g.num_vertices()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::RunSpmvOnDevice(&dev, d, x.ptr(), y.ptr(), {}));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DeviceSpmv);

void BM_DeviceBfs(benchmark::State& state) {
  vgpu::Device dev(vgpu::A100Config());
  auto coo = graph::GenerateRmat({.scale = 12, .edge_factor = 8, .seed = 19})
                 .value();
  graph::CsrBuildOptions sym;
  sym.make_undirected = true;
  sym.remove_duplicates = true;
  sym.remove_self_loops = true;
  auto g = graph::CsrGraph::FromCoo(coo.src.empty() ? coo : coo, sym).value();
  auto d = core::DeviceCsr::Upload(&dev, g).value();
  core::BfsOptions options;
  options.assume_symmetric = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RunBfsOnDevice(&dev, d, options));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DeviceBfs);

}  // namespace
}  // namespace adgraph

BENCHMARK_MAIN();
