// Reproduces paper Figure 8: "Coarse-grained Profiling Results of adGRAPH
// on Z100L" — VALUBusy, 1-ALUStalledByLDS, L2CacheHit and MemUnitBusy per
// benchmark algorithm.

#include "bench/bench_coarse_common.h"

int main(int argc, char** argv) {
  return adgraph::bench::RunCoarseFigure(
      argc, argv, adgraph::vgpu::Z100LConfig(),
      "Figure 8: Coarse-grained Profiling Results of adGRAPH on Z100L",
      "fig8_coarse_z100l");
}
