// Out-of-core streamed execution benchmark (DESIGN.md §2.13): what the
// device<->host<->disk tier costs and what transfer/compute overlap buys.
//
// For each dataset proxy the device is shrunk (memory_scale) until the
// whole-graph PageRank working set no longer fits — today's hard
// kResourceExhausted — and BFS + PageRank run through ooc::RunStreamed
// instead, double-buffering vertex-range shards on two streams.
//
// This is the CI acceptance gate for the out-of-core tentpole.  Exit
// status 1 unless, on every proxy:
//  1. the in-memory PageRank really is over budget on the shrunk device,
//  2. streamed BFS and PageRank complete with byte-identical outputs to
//     the in-memory reference, and
//  3. double-buffered overlap beats serialized shard staging by >= 1.1x
//     on modeled time.
//
// Usage:
//   bench_ooc [--smoke] [--datasets=...] [--extra-divisor=F]
// --smoke restricts to one proxy at extra divisor 32 for CI.

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/api.h"
#include "graph/csr.h"
#include "graph/datasets.h"
#include "ooc/ooc_csr.h"
#include "ooc/streamed.h"
#include "util/flags.h"
#include "util/table.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::bench {
namespace {

constexpr double kOverlapGate = 1.1;

/// Peak device bytes of the in-memory PageRank path: base + transpose row
/// offsets, columns, 1/outdeg weights, ranks/next/scalars.  The streamed
/// path must be admitted under a budget below this.
uint64_t FullPageRankBytes(const graph::CsrGraph& g) {
  const uint64_t n = g.num_vertices();
  const uint64_t m = g.num_edges();
  return 2 * (n + 1) * sizeof(graph::eid_t) + m * sizeof(graph::vid_t) +
         m * sizeof(double) + 3 * n * sizeof(double) + 2 * sizeof(double);
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

int Main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::cerr << flags_result.status().ToString() << "\n";
    return 2;
  }
  const Flags& flags = *flags_result;
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  if (config.datasets.empty()) {
    config.datasets = smoke ? std::vector<std::string>{"web-Google"}
                            : std::vector<std::string>{"web-Google",
                                                       "soc-liveJournal1",
                                                       "cit-Patents"};
  }
  if (smoke && config.extra_divisor < 32) config.extra_divisor = 32;
  EnsureOutDir(config);

  const vgpu::ArchConfig& arch = vgpu::A100Config();
  core::PageRankOptions pr;
  pr.max_iterations = 20;
  core::BfsOptions bfs;
  bfs.source = 0;
  bool gate_failed = false;

  TablePrinter table({"DataSet", "edges", "full (B)", "budget (B)", "shards",
                      "staged (B)", "serialized (ms)", "overlapped (ms)",
                      "overlap", "identical", "verdict"});
  for (const auto& spec : config.SelectedDatasets()) {
    auto materialized = graph::Materialize(spec, config.extra_divisor);
    if (!materialized.ok()) {
      std::cerr << spec.name << ": " << materialized.status().ToString()
                << "\n";
      return 1;
    }
    auto g = std::make_shared<const graph::CsrGraph>(
        std::move(*materialized));
    if (g->num_edges() == 0) continue;

    // In-memory reference on a full-size device.
    vgpu::Device reference_device(arch);
    auto bfs_ref = core::Run(&reference_device, {core::Algo::kBfs}, *g, bfs);
    auto pr_ref =
        core::Run(&reference_device, {core::Algo::kPageRank}, *g, pr);
    if (!bfs_ref.ok() || !pr_ref.ok()) {
      std::cerr << spec.name << ": reference run failed\n";
      return 1;
    }

    // Shrink the device below the whole-graph working set but above the
    // streamed one (memory_scale divides capacity).
    const uint64_t full_bytes = FullPageRankBytes(*g);
    const uint64_t shard_bytes = std::max<uint64_t>(full_bytes / 8, 4 << 10);
    auto streamed_bytes =
        ooc::EstimateStreamedBytes(core::Algo::kPageRank, g->num_vertices(),
                                   g->has_weights(), shard_bytes);
    if (!streamed_bytes.ok()) {
      std::cerr << streamed_bytes.status().ToString() << "\n";
      return 1;
    }
    const uint64_t budget = std::max<uint64_t>(
        full_bytes * 3 / 5, *streamed_bytes + *streamed_bytes / 4);
    vgpu::Device::Options small;
    {
      vgpu::Device probe(arch);
      small.memory_scale =
          static_cast<double>(probe.memory_capacity_bytes()) /
          static_cast<double>(budget);
    }
    vgpu::Device device(arch, small);

    // Gate 1: the in-memory path must actually be over budget here.
    const bool over_budget =
        !core::Run(&device, {core::Algo::kPageRank}, *g, pr).ok();

    ooc::OocOptions ooc_options;
    ooc_options.shard_bytes = shard_bytes;
    ooc::StreamedStats bfs_stats;
    auto bfs_ooc = ooc::RunStreamed(&device, core::Algo::kBfs, g,
                                    core::Params(bfs), ooc_options,
                                    &bfs_stats);
    ooc::StreamedStats pr_stats;
    auto pr_ooc = ooc::RunStreamed(&device, core::Algo::kPageRank, g,
                                   core::Params(pr), ooc_options, &pr_stats);
    if (!bfs_ooc.ok() || !pr_ooc.ok()) {
      std::cerr << spec.name << ": streamed run failed: "
                << (bfs_ooc.ok() ? pr_ooc.status() : bfs_ooc.status())
                       .ToString()
                << "\n";
      return 1;
    }

    // Gate 2: byte-identical outputs.
    const auto& br = std::get<core::BfsResult>(*bfs_ref);
    const auto& bo = std::get<core::BfsResult>(*bfs_ooc);
    const auto& rr = std::get<core::PageRankResult>(*pr_ref);
    const auto& ro = std::get<core::PageRankResult>(*pr_ooc);
    const bool identical =
        br.levels == bo.levels && br.depth == bo.depth &&
        br.vertices_visited == bo.vertices_visited &&
        BitIdentical(rr.ranks, ro.ranks) && rr.iterations == ro.iterations;

    // Gate 3: the double-buffered pipeline beats serialized staging.
    const double overlap = pr_stats.overlap_speedup();
    const bool ok = over_budget && identical && overlap >= kOverlapGate;
    if (!ok) gate_failed = true;

    table.AddRow(
        {spec.name, std::to_string(g->num_edges()),
         std::to_string(full_bytes), std::to_string(budget),
         std::to_string(pr_stats.num_shards),
         std::to_string(pr_stats.staged_bytes),
         FormatFixed(pr_stats.serialized_ms, 4),
         FormatFixed(pr_stats.overlapped_ms, 4),
         FormatFixed(overlap, 2) + "x", identical ? "yes" : "NO",
         ok ? "streamed wins"
            : (!over_budget ? "NOT OVER BUDGET"
                            : (!identical ? "DIVERGED" : "NO OVERLAP WIN"))});
  }

  std::cout << "=== Out-of-core streaming: over-budget graphs through the "
               "double buffer ("
            << arch.name << ") ===\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/ooc_overlap.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";

  if (gate_failed) {
    std::cerr << "FAIL: an over-budget proxy did not complete "
                 "byte-identically with >= "
              << kOverlapGate << "x transfer/compute overlap\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
