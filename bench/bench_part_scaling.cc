// Modeled strong scaling of partitioned execution (DESIGN.md §2.7): BFS and
// PageRank on Table 4 dataset proxies across 1/2/4/8 simulated A100 devices
// linked by NVLink.  The single-device column is the library's own top-down
// RunBfs (direction-optimizing off — the partitioned driver is top-down
// only), and every multi-device BFS is checked byte-identical against it,
// so the scaling numbers never come at the cost of correctness.
//
// Usage:
//   bench_part_scaling [--smoke] [--datasets=...] [--extra-divisor=F]
//       [--interconnect=nvlink|pcie] [--partition=degree|uniform]
// --smoke restricts to three datasets at extra divisor 8 for CI.

#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "core/bfs.h"
#include "graph/generate.h"
#include "part/engine.h"
#include "part/part_bfs.h"
#include "part/part_pagerank.h"
#include "util/flags.h"
#include "util/table.h"

namespace adgraph::bench {
namespace {

constexpr uint32_t kDeviceCounts[] = {1, 2, 4, 8};

struct ScalingRow {
  std::string dataset;
  // Indexed like kDeviceCounts.
  std::vector<double> time_ms;
  std::vector<double> exchange_mb;
  bool byte_identical = true;
};

int Main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::cerr << flags_result.status().ToString() << "\n";
    return 2;
  }
  const Flags& flags = *flags_result;
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  if (smoke) {
    config.skip_twitter = true;
    if (config.extra_divisor < 8) config.extra_divisor = 8;
  }
  EnsureOutDir(config);

  part::PartitionedEngine::Options engine_options;
  const std::string link = flags.GetString("interconnect", "nvlink");
  auto preset = vgpu::InterconnectPresetByName(link);
  if (!preset.ok()) {
    std::cerr << preset.status().ToString() << "\n";
    return 2;
  }
  engine_options.interconnect = *preset;
  engine_options.strategy =
      flags.GetString("partition", "degree") == "uniform"
          ? part::PartitionStrategy::kUniform
          : part::PartitionStrategy::kDegreeBalanced;
  const vgpu::ArchConfig& arch = vgpu::A100Config();

  std::vector<graph::DatasetSpec> datasets = config.SelectedDatasets();
  if (smoke && datasets.size() > 3) datasets.resize(3);

  std::vector<ScalingRow> bfs_rows;
  TablePrinter bfs_table({"DataSet", "1 dev (ms)", "2 dev (ms)", "4 dev (ms)",
                          "8 dev (ms)", "speedup 1->4", "exch MB (4 dev)",
                          "levels"});
  TablePrinter pr_table({"DataSet", "1 dev (ms)", "2 dev (ms)", "4 dev (ms)",
                         "8 dev (ms)", "speedup 1->4", "exch MB (4 dev)"});

  for (const auto& spec : datasets) {
    auto directed = graph::Materialize(spec, config.extra_divisor);
    if (!directed.ok()) {
      std::cerr << spec.name << ": " << directed.status().ToString() << "\n";
      return 1;
    }
    graph::CsrBuildOptions sym;
    sym.make_undirected = true;
    sym.remove_duplicates = true;
    sym.remove_self_loops = true;
    auto symmetric = graph::CsrGraph::FromCoo(directed->ToCoo(), sym);
    if (!symmetric.ok()) {
      std::cerr << spec.name << ": " << symmetric.status().ToString() << "\n";
      return 1;
    }
    graph::vid_t source = 0;
    for (graph::vid_t v = 0; v < symmetric->num_vertices(); ++v) {
      if (symmetric->degree(v) > symmetric->degree(source)) source = v;
    }

    // Single-device reference: the library's own top-down BFS.  Its levels
    // are the byte-identity baseline AND its runtime is the 1-device
    // column, so speedups are against the real single-GPU code path.
    vgpu::Device reference_device(arch);
    core::BfsOptions ref_options;
    ref_options.source = source;
    ref_options.direction_optimizing = false;
    auto reference = core::RunBfs(&reference_device, *symmetric, ref_options);
    if (!reference.ok()) {
      std::cerr << spec.name << ": " << reference.status().ToString() << "\n";
      return 1;
    }

    ScalingRow bfs_row;
    bfs_row.dataset = spec.name;
    ScalingRow pr_row;
    pr_row.dataset = spec.name;
    std::cout << "scaling " << spec.name << " (" << symmetric->num_vertices()
              << " vertices, " << symmetric->num_edges() << " edges) ..."
              << std::endl;

    for (uint32_t num_devices : kDeviceCounts) {
      engine_options.num_devices = num_devices;
      auto engine = part::PartitionedEngine::Create(arch, engine_options);
      if (!engine.ok()) {
        std::cerr << engine.status().ToString() << "\n";
        return 1;
      }
      auto plan = part::MakePartitionPlan(*symmetric, num_devices,
                                          engine_options.strategy);
      if (!plan.ok()) {
        std::cerr << plan.status().ToString() << "\n";
        return 1;
      }

      part::PartBfsOptions bfs_options;
      bfs_options.source = source;
      auto bfs = part::RunPartitionedBfs(engine->get(), *symmetric, *plan,
                                         bfs_options);
      if (!bfs.ok()) {
        std::cerr << spec.name << " bfs x" << num_devices << ": "
                  << bfs.status().ToString() << "\n";
        return 1;
      }
      if (num_devices > 1 &&
          (bfs->levels.size() != reference->levels.size() ||
           std::memcmp(bfs->levels.data(), reference->levels.data(),
                       bfs->levels.size() * sizeof(uint32_t)) != 0)) {
        bfs_row.byte_identical = false;
      }
      bfs_row.time_ms.push_back(bfs->time_ms);
      bfs_row.exchange_mb.push_back(static_cast<double>(bfs->exchange_bytes) /
                                    1e6);

      // PageRank at a fixed iteration count so every device count does the
      // same numeric work (tolerance-based early exit could stop shards at
      // different FP states).
      part::PartPageRankOptions pr_options;
      pr_options.max_iterations = smoke ? 5 : 20;
      pr_options.tolerance = 0;
      auto pr = part::RunPartitionedPageRank(engine->get(), *symmetric, *plan,
                                             pr_options);
      if (!pr.ok()) {
        std::cerr << spec.name << " pagerank x" << num_devices << ": "
                  << pr.status().ToString() << "\n";
        return 1;
      }
      pr_row.time_ms.push_back(pr->time_ms);
      pr_row.exchange_mb.push_back(static_cast<double>(pr->exchange_bytes) /
                                   1e6);
    }

    auto add_row = [](TablePrinter* table, const ScalingRow& row,
                      bool with_levels) {
      std::vector<std::string> cells{row.dataset};
      for (double ms : row.time_ms) cells.push_back(FormatFixed(ms, 4));
      cells.push_back(FormatFixed(row.time_ms[0] / row.time_ms[2], 2) + "x");
      cells.push_back(FormatFixed(row.exchange_mb[2], 3));
      if (with_levels) {
        cells.push_back(row.byte_identical ? "identical" : "MISMATCH");
      }
      table->AddRow(std::move(cells));
    };
    add_row(&bfs_table, bfs_row, /*with_levels=*/true);
    add_row(&pr_table, pr_row, /*with_levels=*/false);
    bfs_rows.push_back(std::move(bfs_row));
  }

  std::cout << "=== Partitioned strong scaling: BFS (" << arch.name << " x "
            << link << ", "
            << part::PartitionStrategyName(engine_options.strategy)
            << " partition) ===\n";
  bfs_table.Print(std::cout);
  std::cout << "\n=== Partitioned strong scaling: PageRank ===\n";
  pr_table.Print(std::cout);

  auto status = bfs_table.WriteCsv(config.out_dir + "/part_scaling_bfs.csv");
  if (status.ok()) {
    status = pr_table.WriteCsv(config.out_dir + "/part_scaling_pagerank.csv");
  }
  if (!status.ok()) std::cerr << status.ToString() << "\n";

  // Acceptance gate: every multi-device BFS byte-identical (always), and
  // modeled throughput monotonically increasing 1 -> 2 -> 4 devices on at
  // least 3 datasets.  The monotonicity half only gates full-scale runs:
  // --smoke shrinks the proxies ~8x for CI, below the point where any
  // per-round link latency can amortize, so there it is informational.
  int failures = 0;
  size_t monotone = 0;
  for (const auto& row : bfs_rows) {
    if (!row.byte_identical) {
      std::cerr << "FAIL " << row.dataset
                << ": partitioned BFS levels differ from single-device\n";
      ++failures;
    }
    if (row.time_ms[0] > row.time_ms[1] && row.time_ms[1] > row.time_ms[2]) {
      ++monotone;
    } else {
      std::cout << "note " << row.dataset
                << ": modeled BFS time not monotone 1->2->4 devices ("
                << FormatFixed(row.time_ms[0], 4) << " / "
                << FormatFixed(row.time_ms[1], 4) << " / "
                << FormatFixed(row.time_ms[2], 4) << " ms)\n";
    }
  }
  const size_t required = std::min<size_t>(3, bfs_rows.size());
  std::cout << "\nscaling check: BFS monotone 1->4 on " << monotone << "/"
            << bfs_rows.size() << " datasets"
            << (smoke ? " (informational under --smoke)" : "") << "\n";
  if (!smoke && monotone < required) {
    std::cerr << "FAIL: monotone scaling on " << monotone << " datasets, "
              << "need >= " << required << "\n";
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
