#include "bench/bench_coarse_common.h"

#include <array>
#include <iostream>

#include "prof/metrics.h"
#include "runtime/runtime.h"
#include "util/table.h"

namespace adgraph::bench {

int RunCoarseFigure(int argc, const char* const* argv,
                    const vgpu::ArchConfig& gpu, const std::string& title,
                    const std::string& csv_name) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  CellRunner runner(config);

  auto platform = gpu.vendor == "NVIDIA" ? rt::Platform::kCuda
                                         : rt::Platform::kRocmLike;
  auto names = prof::CoarseMetricNames(platform);
  const std::vector<Algo> algos{Algo::kBfs, Algo::kTc, Algo::kEsbv};

  TablePrinter table({"Metric", "BFS", "TC", "ESBV"});
  std::vector<std::array<double, 3>> sums(4, {0, 0, 0});
  std::array<int, 3> counts{0, 0, 0};
  for (size_t a = 0; a < algos.size(); ++a) {
    for (const auto& spec : config.SelectedDatasets()) {
      if (spec.name == "twitter-mpi") continue;
      auto cell = runner.RunProfiled(gpu, spec, algos[a]);
      if (!cell.ok()) {
        std::cerr << "profiled cell failed: " << cell.status().ToString()
                  << "\n";
        return 1;
      }
      sums[0][a] += cell->coarse.warp_utilization;
      sums[1][a] += cell->coarse.shared_memory;
      sums[2][a] += cell->coarse.l2_hit;
      sums[3][a] += cell->coarse.global_memory;
      counts[a] += 1;
    }
  }
  for (size_t m = 0; m < 4; ++m) {
    std::vector<std::string> row{names[m]};
    for (size_t a = 0; a < algos.size(); ++a) {
      double avg = counts[a] > 0 ? sums[m][a] / counts[a] : 0;
      row.push_back(FormatFixed(avg * 100, 1) + "%");
    }
    table.AddRow(std::move(row));
  }

  std::cout << "=== " << title << " ===\n"
            << "(averaged over the six profiled datasets; "
            << rt::PlatformName(platform) << " metric view)\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/" + csv_name + ".csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

}  // namespace adgraph::bench
