// bench_serve_throughput — wall-clock jobs/sec of the src/serve/ scheduler
// as a function of worker-pool size, on a mixed BFS / TC / ESBV batch.
//
// The pool uses identical A100 slots so that per-job results are
// byte-identical across pool sizes (warp width changes FP reduction order
// between vendors); every outcome is fingerprint-checked against a serial
// run of the same registry handler on a fresh device.
//
// The simulator executes kernels on the host, so host CPU time — not the
// modeled GPU time — is what a wall-clock throughput bench measures.  To
// model a real serving host (which is mostly *waiting* on asynchronous
// devices), each worker keeps its device occupied for a wall-time floor per
// job (--floor-ms, default auto-calibrated from the serial run).  Those
// waits overlap across workers, so pool scaling shows up even on a
// single-core container.
//
// Usage: bench_serve_throughput [--scale=11] [--jobs=24] [--floor-ms=F]
//        [--workers=1,2,4]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bfs.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "graph/generate.h"
#include "net/client.h"
#include "net/server.h"
#include "net/tenant.h"
#include "net/wire.h"
#include "prof/report.h"
#include "serve/job.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "util/flags.h"
#include "util/table.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<serve::JobSpec> BuildBatch(
    const std::shared_ptr<const graph::CsrGraph>& g, int count) {
  std::vector<serve::JobSpec> jobs;
  jobs.reserve(count);
  for (int i = 0; i < count; ++i) {
    serve::JobSpec spec;
    spec.graph = g;
    spec.tag = "job" + std::to_string(i);
    switch (i % 3) {
      case 0: {
        core::BfsOptions o;
        o.source = static_cast<graph::vid_t>(
            (i * 97) % g->num_vertices());
        o.assume_symmetric = true;
        spec.params = o;
        break;
      }
      case 1: {
        core::TcOptions o;
        spec.params = o;
        break;
      }
      default: {
        core::EsbvOptions o;
        o.vertices = core::SelectPseudoCluster(
            g->num_vertices(), 0.3 + 0.05 * (i % 4),
            static_cast<uint64_t>(i));
        spec.params = o;
        break;
      }
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv).value();
  uint32_t scale = static_cast<uint32_t>(flags.GetInt("scale", 11));
  int job_count = static_cast<int>(flags.GetInt("jobs", 24));

  auto coo =
      graph::GenerateRmat({.scale = scale, .edge_factor = 8.0, .seed = 42})
          .value();
  graph::AttachRandomWeights(&coo, 0.0, 1.0, 7);
  graph::CsrBuildOptions build;
  build.remove_duplicates = true;
  build.remove_self_loops = true;
  build.make_undirected = true;
  auto g = std::make_shared<const graph::CsrGraph>(
      graph::CsrGraph::FromCoo(coo, build).value());
  std::printf("graph: R-MAT scale %u, %u vertices, %llu edges\n", scale,
              g->num_vertices(),
              static_cast<unsigned long long>(g->num_edges()));

  std::vector<serve::JobSpec> jobs = BuildBatch(g, job_count);

  // Serial reference: every job on one fresh A100, fingerprints recorded.
  std::vector<uint64_t> serial_fp(jobs.size());
  vgpu::Device serial_device(vgpu::A100Config());
  auto serial_start = Clock::now();
  for (size_t i = 0; i < jobs.size(); ++i) {
    const auto& handler = serve::GetHandler(jobs[i].algorithm());
    auto payload = handler.run(&serial_device, jobs[i], nullptr).value();
    serial_fp[i] = serve::FingerprintPayload(payload);
    serial_device.ResetCounters();
  }
  double serial_ms = MsSince(serial_start);
  double mean_job_ms = serial_ms / jobs.size();
  std::printf("serial reference: %d jobs in %.1f ms (%.2f ms/job)\n\n",
              job_count, serial_ms, mean_job_ms);

  // Each job occupies its device for at least ~4x the host simulation cost,
  // mimicking a host that spends most of each job waiting on the device.
  double floor_ms = flags.GetDouble("floor-ms", 0.0);
  if (floor_ms <= 0) floor_ms = std::max(4.0, 4.0 * mean_job_ms);
  std::printf("device occupancy floor: %.1f ms/job\n\n", floor_ms);

  std::vector<int> worker_counts;
  {
    std::istringstream list(flags.GetString("workers", "1,2,4"));
    std::string tok;
    while (std::getline(list, tok, ',')) worker_counts.push_back(std::stoi(tok));
  }

  TablePrinter table({"workers", "wall (ms)", "jobs/s", "speedup", "match"});
  double base_jobs_per_sec = 0;
  std::string last_snapshot;
  for (int workers : worker_counts) {
    serve::Scheduler::Options options;
    for (int w = 0; w < workers; ++w) {
      options.devices.push_back({.arch = &vgpu::A100Config(), .options = {}});
    }
    options.queue_capacity = jobs.size();
    options.device_occupancy_floor_ms = floor_ms;
    auto scheduler = serve::Scheduler::Create(std::move(options)).value();

    auto start = Clock::now();
    std::vector<std::future<serve::JobOutcome>> futures;
    futures.reserve(jobs.size());
    for (const auto& job : jobs) {
      futures.push_back(scheduler->Submit(job).value());
    }
    size_t matched = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::JobOutcome outcome = futures[i].get();
      if (outcome.status.ok() &&
          serve::FingerprintPayload(outcome.payload) == serial_fp[i]) {
        ++matched;
      }
    }
    double wall_ms = MsSince(start);
    double jobs_per_sec = 1e3 * jobs.size() / wall_ms;
    if (base_jobs_per_sec == 0) base_jobs_per_sec = jobs_per_sec;
    table.AddRow({std::to_string(workers), FormatFixed(wall_ms, 1),
                  FormatFixed(jobs_per_sec, 2),
                  FormatFixed(jobs_per_sec / base_jobs_per_sec, 2) + "x",
                  std::to_string(matched) + "/" +
                      std::to_string(futures.size())});
    scheduler->Drain();
    last_snapshot = prof::FormatServerStats(scheduler->Snapshot());
  }
  std::ostringstream rendered;
  table.Print(rendered);
  std::printf("%s\n%s", rendered.str().c_str(), last_snapshot.c_str());

  // --- graph residency cache: the repeated-graph serving workload --------
  //
  // Many queries over one resident graph is the serving-layer common case
  // (the reason DESIGN.md §2.6 exists).  Compare *modeled* device time —
  // kernel ms plus PCIe transfer ms — for the same single-worker batch with
  // the cache on and off; results must stay byte-identical.
  int cache_job_count = static_cast<int>(flags.GetInt("cache-jobs", 16));
  std::vector<serve::JobSpec> repeat_jobs;
  std::vector<uint64_t> repeat_fp;
  for (int i = 0; i < cache_job_count; ++i) {
    core::BfsOptions o;
    o.source = static_cast<graph::vid_t>((i * 131) % g->num_vertices());
    o.assume_symmetric = true;
    serve::JobSpec spec;
    spec.graph = g;
    spec.params = o;
    spec.tag = "repeat" + std::to_string(i);
    const auto& handler = serve::GetHandler(spec.algorithm());
    auto payload = handler.run(&serial_device, spec, nullptr).value();
    repeat_fp.push_back(serve::FingerprintPayload(payload));
    serial_device.ResetCounters();
    repeat_jobs.push_back(std::move(spec));
  }

  std::printf("\ngraph residency cache: %d BFS jobs over one graph, "
              "single worker (modeled device time)\n",
              cache_job_count);
  TablePrinter cache_table(
      {"cache", "modeled (ms)", "modeled jobs/s", "speedup", "hits", "match"});
  double off_jobs_per_sec = 0;
  for (bool enabled : {false, true}) {
    serve::Scheduler::Options options;
    options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
    options.queue_capacity = repeat_jobs.size();
    options.cache.enabled = enabled;
    auto scheduler = serve::Scheduler::Create(std::move(options)).value();
    std::vector<std::future<serve::JobOutcome>> futures;
    for (const auto& job : repeat_jobs) {
      futures.push_back(scheduler->Submit(job).value());
    }
    double modeled_total_ms = 0;
    size_t matched = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::JobOutcome outcome = futures[i].get();
      modeled_total_ms += outcome.modeled_ms + outcome.modeled_transfer_ms;
      if (outcome.status.ok() &&
          serve::FingerprintPayload(outcome.payload) == repeat_fp[i]) {
        ++matched;
      }
    }
    scheduler->Drain();
    auto stats = scheduler->Snapshot();
    double jobs_per_sec = 1e3 * repeat_jobs.size() / modeled_total_ms;
    if (!enabled) off_jobs_per_sec = jobs_per_sec;
    cache_table.AddRow(
        {enabled ? "on" : "off", FormatFixed(modeled_total_ms, 2),
         FormatFixed(jobs_per_sec, 1),
         FormatFixed(jobs_per_sec / off_jobs_per_sec, 2) + "x",
         std::to_string(stats.cache_hits) + "/" +
             std::to_string(stats.cache_hits + stats.cache_misses),
         std::to_string(matched) + "/" + std::to_string(futures.size())});
  }
  std::ostringstream cache_rendered;
  cache_table.Print(cache_rendered);
  std::printf("%s", cache_rendered.str().c_str());

  // --- metrics sampling overhead (DESIGN.md §2.9) -------------------------
  //
  // Same single-worker repeated-graph batch, metrics sampler off vs. on at
  // an aggressive 10 ms interval.  Registry updates are always on (relaxed
  // atomics); what this measures is the marginal cost of the background
  // sampler thread re-entering Snapshot() and scraping every series.  The
  // modeled jobs/s (simulated device time, which the sampler cannot touch)
  // must agree within noise; wall jobs/s shows the host-side cost.
  double metrics_interval_ms = flags.GetDouble("metrics-interval-ms", 10.0);
  std::printf("\nmetrics sampling overhead: %d BFS jobs, single worker, "
              "%.0f ms sample interval\n",
              cache_job_count, metrics_interval_ms);
  TablePrinter obs_table({"metrics", "wall (ms)", "modeled (ms)",
                          "modeled jobs/s", "samples", "match"});
  double modeled_off = 0;
  double modeled_on = 0;
  for (bool enabled : {false, true}) {
    serve::Scheduler::Options options;
    options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
    options.queue_capacity = repeat_jobs.size();
    options.metrics.enabled = enabled;
    options.metrics.interval_ms = metrics_interval_ms;
    options.metrics.quiet = true;
    auto scheduler = serve::Scheduler::Create(std::move(options)).value();
    auto start = Clock::now();
    std::vector<std::future<serve::JobOutcome>> futures;
    for (const auto& job : repeat_jobs) {
      futures.push_back(scheduler->Submit(job).value());
    }
    double modeled_total_ms = 0;
    size_t matched = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::JobOutcome outcome = futures[i].get();
      modeled_total_ms += outcome.modeled_ms + outcome.modeled_transfer_ms;
      if (outcome.status.ok() &&
          serve::FingerprintPayload(outcome.payload) == repeat_fp[i]) {
        ++matched;
      }
    }
    scheduler->Drain();
    double wall_ms = MsSince(start);
    size_t samples = scheduler->MetricsBatches().size();
    double jobs_per_sec = 1e3 * repeat_jobs.size() / modeled_total_ms;
    (enabled ? modeled_on : modeled_off) = jobs_per_sec;
    obs_table.AddRow({enabled ? "on" : "off", FormatFixed(wall_ms, 1),
                      FormatFixed(modeled_total_ms, 2),
                      FormatFixed(jobs_per_sec, 1), std::to_string(samples),
                      std::to_string(matched) + "/" +
                          std::to_string(futures.size())});
  }
  std::ostringstream obs_rendered;
  obs_table.Print(obs_rendered);
  double overhead_pct =
      modeled_off > 0 ? 100.0 * (modeled_off - modeled_on) / modeled_off : 0;
  std::printf("%smetrics overhead on modeled jobs/s: %.2f%% (acceptance "
              "bound: 5%%)\n",
              obs_rendered.str().c_str(), overhead_pct);

  // --- per-job profile attribution overhead (DESIGN.md §2.14) -------------
  //
  // Same single-worker repeated-graph batch with per-job kernel attribution
  // plus the flight recorder off vs. on (both default on in production).
  // "On" folds every job's kernel window into a JobProfile, feeds the
  // adgraph_job_* histograms, and retains the K-worst records; all of that
  // is host-side bookkeeping, so the modeled jobs/s (simulated device
  // time) must agree within noise — the observability tentpole's 5%
  // acceptance bound.  Wall jobs/s shows the host cost for reference.
  std::printf("\nper-job profile attribution overhead: %d BFS jobs, "
              "single worker\n",
              cache_job_count);
  TablePrinter prof_table({"profiles", "wall (ms)", "modeled (ms)",
                           "modeled jobs/s", "profiled", "match"});
  double prof_modeled_off = 0;
  double prof_modeled_on = 0;
  for (bool enabled : {false, true}) {
    serve::Scheduler::Options options;
    options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
    options.queue_capacity = repeat_jobs.size();
    options.job_profiles = enabled;
    options.flight_recorder.enabled = enabled;
    auto scheduler = serve::Scheduler::Create(std::move(options)).value();
    auto start = Clock::now();
    std::vector<std::future<serve::JobOutcome>> futures;
    for (const auto& job : repeat_jobs) {
      futures.push_back(scheduler->Submit(job).value());
    }
    double modeled_total_ms = 0;
    size_t matched = 0;
    size_t profiled = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::JobOutcome outcome = futures[i].get();
      modeled_total_ms += outcome.modeled_ms + outcome.modeled_transfer_ms;
      if (outcome.job_profile.num_kernels > 0) ++profiled;
      if (outcome.status.ok() &&
          serve::FingerprintPayload(outcome.payload) == repeat_fp[i]) {
        ++matched;
      }
    }
    scheduler->Drain();
    double wall_ms = MsSince(start);
    double jobs_per_sec = 1e3 * repeat_jobs.size() / modeled_total_ms;
    (enabled ? prof_modeled_on : prof_modeled_off) = jobs_per_sec;
    prof_table.AddRow({enabled ? "on" : "off", FormatFixed(wall_ms, 1),
                       FormatFixed(modeled_total_ms, 2),
                       FormatFixed(jobs_per_sec, 1),
                       std::to_string(profiled) + "/" +
                           std::to_string(futures.size()),
                       std::to_string(matched) + "/" +
                           std::to_string(futures.size())});
  }
  std::ostringstream prof_rendered;
  prof_table.Print(prof_rendered);
  double prof_overhead_pct =
      prof_modeled_off > 0
          ? 100.0 * (prof_modeled_off - prof_modeled_on) / prof_modeled_off
          : 0;
  std::printf("%sprofile overhead on modeled jobs/s: %.2f%% (acceptance "
              "bound: 5%%)\n",
              prof_rendered.str().c_str(), prof_overhead_pct);
  if (prof_overhead_pct > 5.0) {
    std::printf("FAIL: profile attribution overhead exceeds the 5%% "
                "acceptance bound\n");
    return 1;
  }

  // --- TCP front door (DESIGN.md §2.10) -----------------------------------
  //
  // A high-frequency mixed-tenant workload replayed two ways: straight into
  // Scheduler::Submit (in-process baseline) and over loopback TCP through
  // net::Server with one session per tenant.  Four tenants across two
  // priority classes; "capped" carries a deliberately tight token-bucket
  // quota so the front door sheds its excess while the compliant tenants
  // keep flowing.  Acceptance: socket jobs/s >= 80% of in-process at the
  // same worker count; compliant-tenant p99 queue-wait within 1.5x of a
  // solo run without the capped tenant; responses byte-identical
  // (fingerprint) to the serial reference.
  int net_job_count = static_cast<int>(flags.GetInt("net-jobs", 48));
  int net_workers = static_cast<int>(flags.GetInt("net-workers", 4));
  std::printf("\nTCP front door: %d jobs, 4 tenants / 2 priority classes, "
              "%d workers\n",
              net_job_count, net_workers);

  std::vector<net::TenantConfig> tenants(4);
  tenants[0] = {.name = "gold-a", .priority = 0, .weight = 2.0};
  tenants[1] = {.name = "gold-b", .priority = 0, .weight = 1.0};
  tenants[2] = {.name = "silver", .priority = 1, .weight = 1.0};
  tenants[3] = {.name = "capped",
                .rate_per_sec = 40.0,
                .burst = 4.0,
                .priority = 1,
                .weight = 1.0};

  struct NetJob {
    int tenant = 0;
    serve::Algorithm algo = serve::Algorithm::kBfs;
    std::map<std::string, std::string> kv;
    uint64_t serial_fp = 0;
  };
  std::vector<NetJob> net_jobs(net_job_count);
  for (int i = 0; i < net_job_count; ++i) {
    NetJob& job = net_jobs[i];
    job.tenant = i % 4;
    switch (i % 3) {
      case 0:
        job.algo = serve::Algorithm::kBfs;
        job.kv["source"] = std::to_string((i * 97) % g->num_vertices());
        job.kv["symmetric"] = "1";
        break;
      case 1:
        job.algo = serve::Algorithm::kTriangleCount;
        break;
      default:
        job.algo = serve::Algorithm::kEsbv;
        job.kv["fraction"] = "0.3";
        job.kv["seed"] = std::to_string(i);
        break;
    }
    // Serial reference fingerprint via the *same* wire param mapping the
    // server uses, so a mismatch can only come from the transport.
    serve::JobSpec spec;
    spec.graph = g;
    spec.params = net::BuildJobParams(job.algo, job.kv, g->num_vertices())
                      .value();
    const auto& handler = serve::GetHandler(job.algo);
    job.serial_fp = serve::FingerprintPayload(
        handler.run(&serial_device, spec, nullptr).value());
    serial_device.ResetCounters();
  }

  auto make_pool_options = [&](size_t queue_capacity) {
    serve::Scheduler::Options options;
    for (int w = 0; w < net_workers; ++w) {
      options.devices.push_back({.arch = &vgpu::A100Config(), .options = {}});
    }
    options.queue_capacity = queue_capacity;
    options.device_occupancy_floor_ms = floor_ms;
    return options;
  };
  auto p99 = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[static_cast<size_t>(std::ceil(0.99 * v.size())) - 1];
  };

  // In-process baseline: same jobs, same tenant QoS fields, no socket.
  double inproc_jobs_per_sec = 0;
  {
    auto scheduler =
        serve::Scheduler::Create(make_pool_options(net_jobs.size())).value();
    auto start = Clock::now();
    std::vector<std::future<serve::JobOutcome>> futures;
    for (const NetJob& job : net_jobs) {
      serve::JobSpec spec;
      spec.graph = g;
      spec.params =
          net::BuildJobParams(job.algo, job.kv, g->num_vertices()).value();
      const net::TenantConfig& t = tenants[job.tenant];
      spec.tenant = t.name;
      spec.priority = t.priority;
      spec.fair_weight = t.weight;
      futures.push_back(scheduler->Submit(spec).value());
    }
    size_t completed = 0;
    for (auto& future : futures) {
      if (future.get().status.ok()) ++completed;
    }
    double wall_ms = MsSince(start);
    inproc_jobs_per_sec = 1e3 * completed / wall_ms;
    scheduler->Drain();
    std::printf("in-process baseline: %zu jobs in %.1f ms (%.1f jobs/s)\n",
                completed, wall_ms, inproc_jobs_per_sec);
  }

  // Socket replay: one session per tenant, each on its own thread; submits
  // are pipelined per session, then every job is polled to completion.
  struct TenantRun {
    int submitted = 0;
    int completed = 0;
    int rejected_quota = 0;
    int shed = 0;
    int failed = 0;
    int mismatched = 0;
    std::vector<double> queue_ms;
  };
  struct SocketRun {
    double wall_ms = 0;
    double jobs_per_sec = 0;
    std::vector<TenantRun> per_tenant;
  };
  auto run_socket = [&](bool include_capped) -> SocketRun {
    auto scheduler =
        serve::Scheduler::Create(make_pool_options(net_jobs.size())).value();
    net::ServerOptions server_options;
    server_options.handler_threads = 2;
    server_options.tenants = tenants;
    net::Server::GraphMap graphs;
    graphs["default"] = g;
    auto server =
        net::Server::Start(scheduler.get(), std::move(graphs), server_options)
            .value();

    SocketRun run;
    run.per_tenant.resize(tenants.size());
    std::mutex mu;
    auto start = Clock::now();
    std::vector<std::thread> threads;
    for (size_t t = 0; t < tenants.size(); ++t) {
      if (!include_capped && tenants[t].name == "capped") continue;
      threads.emplace_back([&, t] {
        TenantRun local;
        auto client =
            net::Client::Connect("127.0.0.1", server->port()).value();
        (void)client.Hello(tenants[t].name).value();
        std::vector<std::pair<uint64_t, const NetJob*>> in_flight;
        for (const NetJob& job : net_jobs) {
          if (job.tenant != static_cast<int>(t)) continue;
          net::Json request = net::Json::MakeObject();
          request.Set("op", "SUBMIT");
          request.Set("algo",
                      std::string(serve::AlgorithmName(job.algo)));
          net::Json params = net::Json::MakeObject();
          for (const auto& [key, value] : job.kv) params.Set(key, value);
          request.Set("params", std::move(params));
          ++local.submitted;
          net::Json response = client.Call(request).value();
          if (!response.GetBool("ok", false)) {
            ++local.rejected_quota;
            continue;
          }
          in_flight.emplace_back(
              static_cast<uint64_t>(response.GetNumber("job", 0)), &job);
        }
        for (const auto& [job_id, job] : in_flight) {
          net::Json done = client.WaitJob(job_id).value();
          std::string status = done.GetString("status", "?");
          if (status == "ok") {
            ++local.completed;
            local.queue_ms.push_back(done.GetNumber("queue_ms", 0));
            if (done.GetString("fingerprint", "") !=
                net::FingerprintHex(job->serial_fp)) {
              ++local.mismatched;
            }
          } else if (status == "deadline_exceeded") {
            ++local.shed;
          } else {
            ++local.failed;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        run.per_tenant[t] = std::move(local);
      });
    }
    for (auto& thread : threads) thread.join();
    run.wall_ms = MsSince(start);
    size_t completed = 0;
    for (const TenantRun& t : run.per_tenant) completed += t.completed;
    run.jobs_per_sec = 1e3 * completed / run.wall_ms;
    server->Shutdown();
    scheduler->Drain();
    return run;
  };

  SocketRun solo = run_socket(/*include_capped=*/false);
  SocketRun full = run_socket(/*include_capped=*/true);

  TablePrinter net_table({"tenant", "class", "submitted", "done", "quota rej",
                          "shed", "mismatch", "p99 queue (ms)"});
  std::vector<double> class_queue[2];
  int mismatched_total = 0;
  for (size_t t = 0; t < tenants.size(); ++t) {
    const TenantRun& tenant_run = full.per_tenant[t];
    mismatched_total += tenant_run.mismatched;
    auto& pooled = class_queue[tenants[t].priority == 0 ? 0 : 1];
    pooled.insert(pooled.end(), tenant_run.queue_ms.begin(),
                  tenant_run.queue_ms.end());
    net_table.AddRow(
        {tenants[t].name, tenants[t].priority == 0 ? "gold" : "silver",
         std::to_string(tenant_run.submitted),
         std::to_string(tenant_run.completed),
         std::to_string(tenant_run.rejected_quota),
         std::to_string(tenant_run.shed), std::to_string(tenant_run.mismatched),
         FormatFixed(p99(tenant_run.queue_ms), 2)});
  }
  std::ostringstream net_rendered;
  net_table.Print(net_rendered);
  std::printf("%s", net_rendered.str().c_str());

  double ratio =
      inproc_jobs_per_sec > 0 ? full.jobs_per_sec / inproc_jobs_per_sec : 0;
  std::printf("socket: %.1f jobs/s over TCP vs %.1f in-process — %.0f%% "
              "(acceptance bound: >= 80%%)\n",
              full.jobs_per_sec, inproc_jobs_per_sec, 100.0 * ratio);
  std::printf("p99 queue-wait: gold %.2f ms, silver %.2f ms\n",
              p99(class_queue[0]), p99(class_queue[1]));

  // Compliant-tenant isolation: p99 with the capped tenant hammering the
  // pool vs. a solo run without it.
  std::vector<double> compliant_full;
  std::vector<double> compliant_solo;
  for (size_t t = 0; t < tenants.size(); ++t) {
    if (tenants[t].name == "capped") continue;
    compliant_full.insert(compliant_full.end(),
                          full.per_tenant[t].queue_ms.begin(),
                          full.per_tenant[t].queue_ms.end());
    compliant_solo.insert(compliant_solo.end(),
                          solo.per_tenant[t].queue_ms.begin(),
                          solo.per_tenant[t].queue_ms.end());
  }
  double solo_p99 = p99(compliant_solo);
  double full_p99 = p99(compliant_full);
  std::printf("compliant p99 queue-wait: %.2f ms with capped tenant vs "
              "%.2f ms solo (%.2fx, acceptance bound: <= 1.5x)\n",
              full_p99, solo_p99, solo_p99 > 0 ? full_p99 / solo_p99 : 0.0);
  std::printf("fingerprint mismatches vs serial reference: %d\n",
              mismatched_total);
  return 0;
}

}  // namespace
}  // namespace adgraph

int main(int argc, char** argv) { return adgraph::Main(argc, argv); }
