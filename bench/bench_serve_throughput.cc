// bench_serve_throughput — wall-clock jobs/sec of the src/serve/ scheduler
// as a function of worker-pool size, on a mixed BFS / TC / ESBV batch.
//
// The pool uses identical A100 slots so that per-job results are
// byte-identical across pool sizes (warp width changes FP reduction order
// between vendors); every outcome is fingerprint-checked against a serial
// run of the same registry handler on a fresh device.
//
// The simulator executes kernels on the host, so host CPU time — not the
// modeled GPU time — is what a wall-clock throughput bench measures.  To
// model a real serving host (which is mostly *waiting* on asynchronous
// devices), each worker keeps its device occupied for a wall-time floor per
// job (--floor-ms, default auto-calibrated from the serial run).  Those
// waits overlap across workers, so pool scaling shows up even on a
// single-core container.
//
// Usage: bench_serve_throughput [--scale=11] [--jobs=24] [--floor-ms=F]
//        [--workers=1,2,4]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/bfs.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "graph/generate.h"
#include "prof/report.h"
#include "serve/job.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "util/flags.h"
#include "util/table.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<serve::JobSpec> BuildBatch(
    const std::shared_ptr<const graph::CsrGraph>& g, int count) {
  std::vector<serve::JobSpec> jobs;
  jobs.reserve(count);
  for (int i = 0; i < count; ++i) {
    serve::JobSpec spec;
    spec.graph = g;
    spec.tag = "job" + std::to_string(i);
    switch (i % 3) {
      case 0: {
        core::BfsOptions o;
        o.source = static_cast<graph::vid_t>(
            (i * 97) % g->num_vertices());
        o.assume_symmetric = true;
        spec.params = o;
        break;
      }
      case 1: {
        core::TcOptions o;
        spec.params = o;
        break;
      }
      default: {
        core::EsbvOptions o;
        o.vertices = core::SelectPseudoCluster(
            g->num_vertices(), 0.3 + 0.05 * (i % 4),
            static_cast<uint64_t>(i));
        spec.params = o;
        break;
      }
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv).value();
  uint32_t scale = static_cast<uint32_t>(flags.GetInt("scale", 11));
  int job_count = static_cast<int>(flags.GetInt("jobs", 24));

  auto coo =
      graph::GenerateRmat({.scale = scale, .edge_factor = 8.0, .seed = 42})
          .value();
  graph::AttachRandomWeights(&coo, 0.0, 1.0, 7);
  graph::CsrBuildOptions build;
  build.remove_duplicates = true;
  build.remove_self_loops = true;
  build.make_undirected = true;
  auto g = std::make_shared<const graph::CsrGraph>(
      graph::CsrGraph::FromCoo(coo, build).value());
  std::printf("graph: R-MAT scale %u, %u vertices, %llu edges\n", scale,
              g->num_vertices(),
              static_cast<unsigned long long>(g->num_edges()));

  std::vector<serve::JobSpec> jobs = BuildBatch(g, job_count);

  // Serial reference: every job on one fresh A100, fingerprints recorded.
  std::vector<uint64_t> serial_fp(jobs.size());
  vgpu::Device serial_device(vgpu::A100Config());
  auto serial_start = Clock::now();
  for (size_t i = 0; i < jobs.size(); ++i) {
    const auto& handler = serve::GetHandler(jobs[i].algorithm());
    auto payload = handler.run(&serial_device, jobs[i], nullptr).value();
    serial_fp[i] = serve::FingerprintPayload(payload);
    serial_device.ResetCounters();
  }
  double serial_ms = MsSince(serial_start);
  double mean_job_ms = serial_ms / jobs.size();
  std::printf("serial reference: %d jobs in %.1f ms (%.2f ms/job)\n\n",
              job_count, serial_ms, mean_job_ms);

  // Each job occupies its device for at least ~4x the host simulation cost,
  // mimicking a host that spends most of each job waiting on the device.
  double floor_ms = flags.GetDouble("floor-ms", 0.0);
  if (floor_ms <= 0) floor_ms = std::max(4.0, 4.0 * mean_job_ms);
  std::printf("device occupancy floor: %.1f ms/job\n\n", floor_ms);

  std::vector<int> worker_counts;
  {
    std::istringstream list(flags.GetString("workers", "1,2,4"));
    std::string tok;
    while (std::getline(list, tok, ',')) worker_counts.push_back(std::stoi(tok));
  }

  TablePrinter table({"workers", "wall (ms)", "jobs/s", "speedup", "match"});
  double base_jobs_per_sec = 0;
  std::string last_snapshot;
  for (int workers : worker_counts) {
    serve::Scheduler::Options options;
    for (int w = 0; w < workers; ++w) {
      options.devices.push_back({.arch = &vgpu::A100Config(), .options = {}});
    }
    options.queue_capacity = jobs.size();
    options.device_occupancy_floor_ms = floor_ms;
    auto scheduler = serve::Scheduler::Create(std::move(options)).value();

    auto start = Clock::now();
    std::vector<std::future<serve::JobOutcome>> futures;
    futures.reserve(jobs.size());
    for (const auto& job : jobs) {
      futures.push_back(scheduler->Submit(job).value());
    }
    size_t matched = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::JobOutcome outcome = futures[i].get();
      if (outcome.status.ok() &&
          serve::FingerprintPayload(outcome.payload) == serial_fp[i]) {
        ++matched;
      }
    }
    double wall_ms = MsSince(start);
    double jobs_per_sec = 1e3 * jobs.size() / wall_ms;
    if (base_jobs_per_sec == 0) base_jobs_per_sec = jobs_per_sec;
    table.AddRow({std::to_string(workers), FormatFixed(wall_ms, 1),
                  FormatFixed(jobs_per_sec, 2),
                  FormatFixed(jobs_per_sec / base_jobs_per_sec, 2) + "x",
                  std::to_string(matched) + "/" +
                      std::to_string(futures.size())});
    scheduler->Drain();
    last_snapshot = prof::FormatServerStats(scheduler->Snapshot());
  }
  std::ostringstream rendered;
  table.Print(rendered);
  std::printf("%s\n%s", rendered.str().c_str(), last_snapshot.c_str());

  // --- graph residency cache: the repeated-graph serving workload --------
  //
  // Many queries over one resident graph is the serving-layer common case
  // (the reason DESIGN.md §2.6 exists).  Compare *modeled* device time —
  // kernel ms plus PCIe transfer ms — for the same single-worker batch with
  // the cache on and off; results must stay byte-identical.
  int cache_job_count = static_cast<int>(flags.GetInt("cache-jobs", 16));
  std::vector<serve::JobSpec> repeat_jobs;
  std::vector<uint64_t> repeat_fp;
  for (int i = 0; i < cache_job_count; ++i) {
    core::BfsOptions o;
    o.source = static_cast<graph::vid_t>((i * 131) % g->num_vertices());
    o.assume_symmetric = true;
    serve::JobSpec spec;
    spec.graph = g;
    spec.params = o;
    spec.tag = "repeat" + std::to_string(i);
    const auto& handler = serve::GetHandler(spec.algorithm());
    auto payload = handler.run(&serial_device, spec, nullptr).value();
    repeat_fp.push_back(serve::FingerprintPayload(payload));
    serial_device.ResetCounters();
    repeat_jobs.push_back(std::move(spec));
  }

  std::printf("\ngraph residency cache: %d BFS jobs over one graph, "
              "single worker (modeled device time)\n",
              cache_job_count);
  TablePrinter cache_table(
      {"cache", "modeled (ms)", "modeled jobs/s", "speedup", "hits", "match"});
  double off_jobs_per_sec = 0;
  for (bool enabled : {false, true}) {
    serve::Scheduler::Options options;
    options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
    options.queue_capacity = repeat_jobs.size();
    options.cache.enabled = enabled;
    auto scheduler = serve::Scheduler::Create(std::move(options)).value();
    std::vector<std::future<serve::JobOutcome>> futures;
    for (const auto& job : repeat_jobs) {
      futures.push_back(scheduler->Submit(job).value());
    }
    double modeled_total_ms = 0;
    size_t matched = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::JobOutcome outcome = futures[i].get();
      modeled_total_ms += outcome.modeled_ms + outcome.modeled_transfer_ms;
      if (outcome.status.ok() &&
          serve::FingerprintPayload(outcome.payload) == repeat_fp[i]) {
        ++matched;
      }
    }
    scheduler->Drain();
    auto stats = scheduler->Snapshot();
    double jobs_per_sec = 1e3 * repeat_jobs.size() / modeled_total_ms;
    if (!enabled) off_jobs_per_sec = jobs_per_sec;
    cache_table.AddRow(
        {enabled ? "on" : "off", FormatFixed(modeled_total_ms, 2),
         FormatFixed(jobs_per_sec, 1),
         FormatFixed(jobs_per_sec / off_jobs_per_sec, 2) + "x",
         std::to_string(stats.cache_hits) + "/" +
             std::to_string(stats.cache_hits + stats.cache_misses),
         std::to_string(matched) + "/" + std::to_string(futures.size())});
  }
  std::ostringstream cache_rendered;
  cache_table.Print(cache_rendered);
  std::printf("%s", cache_rendered.str().c_str());

  // --- metrics sampling overhead (DESIGN.md §2.9) -------------------------
  //
  // Same single-worker repeated-graph batch, metrics sampler off vs. on at
  // an aggressive 10 ms interval.  Registry updates are always on (relaxed
  // atomics); what this measures is the marginal cost of the background
  // sampler thread re-entering Snapshot() and scraping every series.  The
  // modeled jobs/s (simulated device time, which the sampler cannot touch)
  // must agree within noise; wall jobs/s shows the host-side cost.
  double metrics_interval_ms = flags.GetDouble("metrics-interval-ms", 10.0);
  std::printf("\nmetrics sampling overhead: %d BFS jobs, single worker, "
              "%.0f ms sample interval\n",
              cache_job_count, metrics_interval_ms);
  TablePrinter obs_table({"metrics", "wall (ms)", "modeled (ms)",
                          "modeled jobs/s", "samples", "match"});
  double modeled_off = 0;
  double modeled_on = 0;
  for (bool enabled : {false, true}) {
    serve::Scheduler::Options options;
    options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
    options.queue_capacity = repeat_jobs.size();
    options.metrics.enabled = enabled;
    options.metrics.interval_ms = metrics_interval_ms;
    options.metrics.quiet = true;
    auto scheduler = serve::Scheduler::Create(std::move(options)).value();
    auto start = Clock::now();
    std::vector<std::future<serve::JobOutcome>> futures;
    for (const auto& job : repeat_jobs) {
      futures.push_back(scheduler->Submit(job).value());
    }
    double modeled_total_ms = 0;
    size_t matched = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
      serve::JobOutcome outcome = futures[i].get();
      modeled_total_ms += outcome.modeled_ms + outcome.modeled_transfer_ms;
      if (outcome.status.ok() &&
          serve::FingerprintPayload(outcome.payload) == repeat_fp[i]) {
        ++matched;
      }
    }
    scheduler->Drain();
    double wall_ms = MsSince(start);
    size_t samples = scheduler->MetricsBatches().size();
    double jobs_per_sec = 1e3 * repeat_jobs.size() / modeled_total_ms;
    (enabled ? modeled_on : modeled_off) = jobs_per_sec;
    obs_table.AddRow({enabled ? "on" : "off", FormatFixed(wall_ms, 1),
                      FormatFixed(modeled_total_ms, 2),
                      FormatFixed(jobs_per_sec, 1), std::to_string(samples),
                      std::to_string(matched) + "/" +
                          std::to_string(futures.size())});
  }
  std::ostringstream obs_rendered;
  obs_table.Print(obs_rendered);
  double overhead_pct =
      modeled_off > 0 ? 100.0 * (modeled_off - modeled_on) / modeled_off : 0;
  std::printf("%smetrics overhead on modeled jobs/s: %.2f%% (acceptance "
              "bound: 5%%)\n",
              obs_rendered.str().c_str(), overhead_pct);
  return 0;
}

}  // namespace
}  // namespace adgraph

int main(int argc, char** argv) { return adgraph::Main(argc, argv); }
