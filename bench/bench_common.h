#ifndef ADGRAPH_BENCH_BENCH_COMMON_H_
#define ADGRAPH_BENCH_BENCH_COMMON_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/datasets.h"
#include "prof/metrics.h"
#include "util/flags.h"
#include "util/status.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::bench {

/// The three paper benchmark algorithms (Table 5 row groups).
enum class Algo { kBfs, kTc, kEsbv };

std::string AlgoName(Algo algo);              // "BFS" / "TC" / "ESBV"
std::string AlgoLongName(Algo algo);          // paper's long names

/// Command-line configuration shared by every paper-reproduction bench.
struct BenchConfig {
  /// Extra uniform shrink on top of each dataset's scale_divisor (quick
  /// runs: --extra-divisor=8).  Device RAM shrinks by the same factor.
  double extra_divisor = 1.0;
  /// Directory for result CSVs and the cross-binary cell cache.
  std::string out_dir = "bench_results";
  /// Restrict to a subset of datasets (--datasets=web-Google,twitter-mpi).
  std::vector<std::string> datasets;
  /// Drop the twitter-mpi row entirely (--skip-twitter) for quick runs.
  bool skip_twitter = false;

  static BenchConfig FromArgs(int argc, const char* const* argv);

  /// The Table 4 dataset list after filters.
  std::vector<graph::DatasetSpec> SelectedDatasets() const;
};

/// One Table 5 cell: one algorithm on one dataset on one GPU.
struct CellResult {
  bool oom = false;
  double time_ms = 0;
  double mteps = 0;        ///< proxy edge count / runtime (paper convention)
  bool sampled = false;    ///< TC twitter-mpi sampled-simulation flag
  /// Rate is undefined (zero-edge proxy or zero measured time — e.g. an
  /// empty BFS frontier); mteps is 0.0 and the table cell prints "skipped"
  /// instead of a fake 0.00 rate.
  bool skipped = false;
};

/// One profiling cell (Table 6 / Figures 7-8): fine-grained counts and
/// coarse metrics under the GPU's native tool view.
struct ProfileCell {
  double time_ms = 0;
  prof::FineGrainedCounts fine;
  prof::CoarseMetrics coarse;
};

/// All host-side preprocessed forms of one dataset (built once, reused by
/// every GPU; preprocessing is not part of the measured runtimes).
struct DatasetBundle {
  graph::DatasetSpec spec;
  graph::CsrGraph directed;   ///< deduplicated directed proxy
  graph::CsrGraph symmetric;  ///< BFS input (undirected interpretation)
  graph::CsrGraph oriented;   ///< TC input (degree-ordered DAG)
  graph::CsrGraph weighted;   ///< ESBV input (FP64 random weights)
  std::vector<graph::vid_t> esbv_vertices;  ///< pseudo-cluster (60%)
  graph::vid_t bfs_source = 0;              ///< max-degree vertex
};

/// \brief Runs Table 5 cells with a cross-binary disk cache, so the figure
/// benches (4/5/6) can reuse the sweep the Table 5 bench already ran —
/// exactly as the paper derives its figures from Table 5.
class CellRunner {
 public:
  explicit CellRunner(BenchConfig config);

  /// Computes (or loads from cache) one performance cell.
  Result<CellResult> Run(const vgpu::ArchConfig& gpu,
                         const graph::DatasetSpec& spec, Algo algo);

  /// Computes (or loads) one profiling cell; `gpu` must be A100 or Z100L
  /// (the paper profiles only those, §4.6).
  Result<ProfileCell> RunProfiled(const vgpu::ArchConfig& gpu,
                                  const graph::DatasetSpec& spec, Algo algo);

  const BenchConfig& config() const { return config_; }

 private:
  Result<const DatasetBundle*> Bundle(const graph::DatasetSpec& spec);
  std::unique_ptr<vgpu::Device> MakeDevice(const vgpu::ArchConfig& gpu,
                                           const graph::DatasetSpec& spec);
  Result<CellResult> Compute(vgpu::Device* device, const DatasetBundle& b,
                             Algo algo);

  void LoadCache();
  void SaveCache() const;
  static std::string CellKey(const std::string& gpu, const std::string& ds,
                             Algo algo, double extra);

  BenchConfig config_;
  std::map<std::string, DatasetBundle> bundles_;
  std::map<std::string, CellResult> cell_cache_;
  std::map<std::string, ProfileCell> profile_cache_;
  bool cache_dirty_ = false;
};

/// Per-dataset TC sampled-simulation factor (twitter-mpi's proxy has ~3
/// billion wedges; exact functional simulation is not affordable — see
/// EXPERIMENTS.md "Sampled simulation").
uint32_t TcSampleFor(const graph::DatasetSpec& spec);

/// Formats a CellResult for a Table 5-style cell ("OOM" or fixed-point).
std::string FormatTimeCell(const CellResult& cell);
std::string FormatMtepsCell(const CellResult& cell);

/// Ensures config.out_dir exists; best-effort.
void EnsureOutDir(const BenchConfig& config);

/// Shared driver of the Figure 4/5/6 speedup benches: per algorithm and
/// dataset, speedup = time(`baseline`) / time(`target`), i.e. how much
/// faster `target` is than `baseline` (the paper's "acceleration ratio").
/// Prints per-dataset series plus the per-algorithm averages the paper
/// quotes, and writes `<csv_name>.csv`.
int RunSpeedupFigure(int argc, const char* const* argv,
                     const vgpu::ArchConfig& target,
                     const vgpu::ArchConfig& baseline,
                     const std::string& title, const std::string& csv_name);

}  // namespace adgraph::bench

#endif  // ADGRAPH_BENCH_BENCH_COMMON_H_
