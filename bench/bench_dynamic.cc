// Dynamic-graph benchmark (DESIGN.md §2.12): what mutation support costs
// and what incremental recompute buys on the paper's dataset proxies.
//
// Three measurements:
//  1. Incremental vs full recompute — PageRank warm-started from the
//     previous ranks against a cold run, at small edge-delta fractions.
//     This is the acceptance gate: on deltas <= 1% of the edge set the
//     incremental path must beat the full recompute's modeled device time.
//  2. Update throughput interleaved with queries — host-side updates/s
//     through DeltaGraph::Apply while incremental PageRank queries run
//     between batches.
//  3. Staleness vs throughput — how update throughput grows (and result
//     freshness decays) as more update batches are admitted between
//     recomputes, the knob a serving deployment actually tunes.
//
// Usage:
//   bench_dynamic [--smoke] [--datasets=...] [--extra-divisor=F]
// --smoke restricts to one proxy at extra divisor 8 for CI; exit status 1
// when the incremental-beats-full gate fails (CI regression gate).

#include <chrono>
#include <cstdint>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/api.h"
#include "core/incremental.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/delta.h"
#include "util/flags.h"
#include "util/table.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::bench {
namespace {

/// Edge-delta fractions for the incremental-vs-full comparison; both are
/// within the 1% acceptance band (and under RunIncremental's default
/// full-recompute threshold).
constexpr double kDeltaFractions[] = {0.0025, 0.01};

core::PageRankOptions PrOptions() {
  core::PageRankOptions options;
  options.max_iterations = 100;
  options.tolerance = 1e-8;
  return options;
}

/// Applies `count` random inserts that actually change the edge set.
uint64_t InsertNovelEdges(graph::DeltaGraph* delta, uint64_t count,
                          uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<graph::vid_t> pick(
      0, delta->num_vertices() - 1);
  uint64_t applied = 0;
  while (applied < count) {
    if (delta->AddEdge(pick(rng), pick(rng)).value()) ++applied;
  }
  return applied;
}

/// A batch of random updates (insert-heavy, some deletes; duplicates and
/// misses included, as a real mutation stream would be).
std::vector<graph::EdgeUpdate> RandomBatch(graph::vid_t n, size_t size,
                                           std::mt19937_64* rng) {
  std::uniform_int_distribution<graph::vid_t> pick(0, n - 1);
  std::vector<graph::EdgeUpdate> batch;
  batch.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    batch.push_back({pick(*rng), pick(*rng), 1, (*rng)() % 10 < 8});
  }
  return batch;
}

double WallMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

int Main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::cerr << flags_result.status().ToString() << "\n";
    return 2;
  }
  const Flags& flags = *flags_result;
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  if (config.datasets.empty()) {
    config.datasets = smoke
                          ? std::vector<std::string>{"web-Google"}
                          : std::vector<std::string>{"web-Stanford",
                                                     "web-Google",
                                                     "cit-Patents"};
  }
  if (smoke && config.extra_divisor < 8) config.extra_divisor = 8;
  EnsureOutDir(config);

  const vgpu::ArchConfig& arch = vgpu::A100Config();
  const core::PageRankOptions pr = PrOptions();
  bool gate_failed = false;

  // --- 1. incremental vs full recompute ----------------------------------
  TablePrinter inc_table({"DataSet", "edges", "delta", "delta%", "full (ms)",
                          "incr (ms)", "speedup", "iters full/incr",
                          "verdict"});
  for (const auto& spec : config.SelectedDatasets()) {
    auto base = graph::Materialize(spec, config.extra_divisor);
    if (!base.ok()) {
      std::cerr << spec.name << ": " << base.status().ToString() << "\n";
      return 1;
    }
    if (base->num_edges() == 0) continue;

    for (double fraction : kDeltaFractions) {
      auto delta = graph::DeltaGraph::Create(*base).value();
      const uint64_t count =
          std::max<uint64_t>(1, static_cast<uint64_t>(
                                    fraction * double(base->num_edges())));
      vgpu::Device device(arch);
      auto snapshot0 = delta.Snapshot().value();
      auto previous =
          core::Run(&device, {core::Algo::kPageRank}, *snapshot0, pr)
              .value();
      const uint64_t previous_version = delta.version();
      InsertNovelEdges(&delta, count, 0xBE7C + count);

      core::IncrementalInfo info;
      auto inc = core::RunIncremental(&device, {core::Algo::kPageRank},
                                      delta, pr, previous, previous_version,
                                      {}, nullptr, &info);
      if (!inc.ok()) {
        std::cerr << spec.name << " incremental: "
                  << inc.status().ToString() << "\n";
        return 1;
      }
      auto full = core::Run(&device, {core::Algo::kPageRank},
                            *delta.Snapshot().value(), pr);
      if (!full.ok()) {
        std::cerr << spec.name << " full: " << full.status().ToString()
                  << "\n";
        return 1;
      }
      const double inc_ms = core::ResultTimeMs(*inc);
      const double full_ms = core::ResultTimeMs(*full);
      const double speedup = inc_ms > 0 ? full_ms / inc_ms : 0;
      const bool beat = info.incremental && inc_ms < full_ms;
      if (!beat) gate_failed = true;
      inc_table.AddRow(
          {spec.name, std::to_string(base->num_edges()),
           std::to_string(count), FormatFixed(fraction * 100, 2),
           FormatFixed(full_ms, 4), FormatFixed(inc_ms, 4),
           FormatFixed(speedup, 2) + "x",
           std::to_string(std::get<core::PageRankResult>(*full).iterations) +
               "/" +
               std::to_string(
                   std::get<core::PageRankResult>(*inc).iterations),
           beat ? "incremental wins"
                : (info.incremental ? "SLOWER" : info.fallback_reason)});
    }
  }
  std::cout << "=== Dynamic graphs: incremental vs full PageRank recompute ("
            << arch.name << ") ===\n";
  inc_table.Print(std::cout);
  auto status = inc_table.WriteCsv(config.out_dir + "/dynamic_incremental.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";

  // --- 2. update throughput interleaved with queries ----------------------
  // --- 3. staleness vs throughput curve -----------------------------------
  auto first = graph::FindDataset(config.datasets.front()).value();
  auto curve_base = graph::Materialize(first, config.extra_divisor).value();
  const size_t kBatch = 256;
  const int kCycles = smoke ? 4 : 8;

  TablePrinter curve({"refresh every", "updates/s (host)", "query (ms)",
                      "avg staleness", "cycle (ms)"});
  for (int refresh : {1, 2, 4, 8, 16}) {
    auto delta = graph::DeltaGraph::Create(curve_base).value();
    vgpu::Device device(arch);
    auto previous =
        core::Run(&device, {core::Algo::kPageRank},
                  *delta.Snapshot().value(), pr)
            .value();
    uint64_t previous_version = delta.version();
    std::mt19937_64 rng(0xD15EA5E);

    double apply_ms = 0;
    double query_ms = 0;
    uint64_t updates_applied = 0;
    uint64_t staleness_sum = 0;
    uint64_t queries = 0;
    for (int cycle = 0; cycle < kCycles; ++cycle) {
      for (int b = 0; b < refresh; ++b) {
        auto batch = RandomBatch(delta.num_vertices(), kBatch, &rng);
        auto start = std::chrono::steady_clock::now();
        auto applied = delta.Apply(batch);
        apply_ms += WallMs(start);
        if (!applied.ok()) {
          std::cerr << "apply: " << applied.status().ToString() << "\n";
          return 1;
        }
        updates_applied += *applied;
      }
      // Staleness at query time: how many applied mutations the previous
      // result has not seen.
      staleness_sum += delta.version() - previous_version;
      core::IncrementalInfo info;
      auto result = core::RunIncremental(&device, {core::Algo::kPageRank},
                                         delta, pr, previous,
                                         previous_version, {}, nullptr,
                                         &info);
      if (!result.ok()) {
        std::cerr << "query: " << result.status().ToString() << "\n";
        return 1;
      }
      query_ms += core::ResultTimeMs(*result);
      ++queries;
      previous = std::move(*result);
      previous_version = delta.version();
    }
    const double total_ms = apply_ms + query_ms;
    curve.AddRow(
        {std::to_string(refresh) + " batches",
         FormatFixed(updates_applied / (apply_ms / 1000.0), 0),
         FormatFixed(query_ms / double(queries), 4),
         FormatFixed(double(staleness_sum) / double(queries), 1),
         FormatFixed(total_ms / kCycles, 3)});
  }
  std::cout << "\n=== Dynamic graphs: staleness vs throughput ("
            << first.name << ", batch " << kBatch
            << ", incremental PageRank queries) ===\n";
  curve.Print(std::cout);
  status = curve.WriteCsv(config.out_dir + "/dynamic_staleness.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";

  if (gate_failed) {
    std::cerr << "FAIL: incremental PageRank did not beat full recompute on "
                 "a <=1% edge delta\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
