// Direction-optimizing frontier engine vs. the push-only baseline
// (DESIGN.md §2.11): BFS from the top-degree hub on Table 4 dataset
// proxies, once with the engine pinned to push-only and once with the
// density heuristic free to switch push/pull.  The claim under test is the
// tentpole acceptance of the engine refactor: on skewed (power-law) proxies
// the switch must win, and both runs must produce identical levels.
//
// Usage:
//   bench_frontier [--smoke] [--datasets=...] [--extra-divisor=F]
// --smoke restricts to three datasets at extra divisor 8 for CI.
//
// Exit status: 1 when any skewed proxy runs slower with the heuristic than
// push-only (or when levels mismatch) — CI runs this as a regression gate.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "engine/algorithms.h"
#include "engine/engine.h"
#include "graph/stats.h"
#include "util/flags.h"
#include "util/table.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::bench {
namespace {

/// Degree skew (max/mean) above which a proxy counts as power-law enough
/// that the direction switch is expected to pay off.  Matches the
/// "power-law character" bar the dataset tests hold the proxies to.
constexpr double kSkewBar = 8.0;

/// Minimum symmetric edge count for the speedup gate.  Below this the
/// whole traversal is a handful of kernel launches and fixed launch
/// overhead dominates either direction — a shrunk proxy that small can
/// still *run* (and must keep levels identical), it just is not evidence
/// about the direction heuristic either way.
constexpr uint64_t kMinGateEdges = 100000;

int Main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::cerr << flags_result.status().ToString() << "\n";
    return 2;
  }
  const Flags& flags = *flags_result;
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  if (smoke) {
    // A pull round only amortizes on proxies dense enough that a large
    // frontier's push would touch most edges anyway; the generic
    // divisor-8 smoke shrink pushes every graph below that regime.  Pin
    // three skewed proxies at divisor 2 instead (~1 s total).
    if (config.datasets.empty()) {
      config.datasets = {"web-Stanford", "soc-liveJournal1", "soc-sinaweibo"};
    }
    if (config.extra_divisor < 2) config.extra_divisor = 2;
  }
  EnsureOutDir(config);

  const vgpu::ArchConfig& arch = vgpu::A100Config();
  std::vector<graph::DatasetSpec> datasets = config.SelectedDatasets();

  TablePrinter table({"DataSet", "vertices", "edges", "skew", "push (ms)",
                      "auto (ms)", "speedup", "pull rounds", "flips",
                      "sp->dn", "levels"});
  bool gate_failed = false;

  for (const auto& spec : datasets) {
    auto directed = graph::Materialize(spec, config.extra_divisor);
    if (!directed.ok()) {
      std::cerr << spec.name << ": " << directed.status().ToString() << "\n";
      return 1;
    }
    graph::CsrBuildOptions sym_options;
    sym_options.make_undirected = true;
    sym_options.remove_duplicates = true;
    sym_options.remove_self_loops = true;
    auto symmetric = graph::CsrGraph::FromCoo(directed->ToCoo(), sym_options);
    if (!symmetric.ok()) {
      std::cerr << spec.name << ": " << symmetric.status().ToString() << "\n";
      return 1;
    }

    // An over-shrunk proxy (huge --extra-divisor) can dedup/self-loop away
    // every edge; a BFS "comparison" there is meaningless, so the row is
    // explicitly skipped rather than printing 0/0 speedups.
    if (symmetric->num_edges() == 0) {
      table.AddRow({spec.name, std::to_string(symmetric->num_vertices()), "0",
                    "-", "-", "-", "skipped", "-", "-", "-",
                    "skipped (zero-edge proxy)"});
      continue;
    }

    auto stats = graph::ComputeDegreeStats(*symmetric);
    graph::vid_t source = 0;
    for (graph::vid_t v = 0; v < symmetric->num_vertices(); ++v) {
      if (symmetric->degree(v) > symmetric->degree(source)) source = v;
    }

    core::BfsOptions options;
    options.source = source;
    options.assume_symmetric = true;

    vgpu::Device push_device(arch);
    engine::EngineReport push_report;
    auto push = engine::RunBfs(&push_device, *symmetric, options, nullptr,
                               {.direction = engine::DirectionPolicy::kPushOnly},
                               &push_report);
    if (!push.ok()) {
      std::cerr << spec.name << " push: " << push.status().ToString() << "\n";
      return 1;
    }

    vgpu::Device auto_device(arch);
    engine::EngineReport auto_report;
    auto opt = engine::RunBfs(&auto_device, *symmetric, options, nullptr,
                              {.direction = engine::DirectionPolicy::kAuto},
                              &auto_report);
    if (!opt.ok()) {
      std::cerr << spec.name << " auto: " << opt.status().ToString() << "\n";
      return 1;
    }

    const bool identical =
        push->levels.size() == opt->levels.size() &&
        std::memcmp(push->levels.data(), opt->levels.data(),
                    push->levels.size() * sizeof(uint32_t)) == 0;
    const double speedup = opt->time_ms > 0 ? push->time_ms / opt->time_ms : 0;
    const bool gated = stats.skew() >= kSkewBar &&
                       symmetric->num_edges() >= kMinGateEdges;
    if (!identical) gate_failed = true;
    if (gated && speedup <= 1.0) gate_failed = true;

    std::string verdict = identical ? "identical" : "MISMATCH";
    if (gated && speedup <= 1.0) verdict += " SLOWER";
    table.AddRow({spec.name, std::to_string(symmetric->num_vertices()),
                  std::to_string(symmetric->num_edges()),
                  FormatFixed(stats.skew(), 1), FormatFixed(push->time_ms, 4),
                  FormatFixed(opt->time_ms, 4),
                  FormatFixed(speedup, 2) + "x",
                  std::to_string(auto_report.direction.pull_rounds),
                  std::to_string(auto_report.direction.direction_flips),
                  std::to_string(auto_report.direction.sparse_to_dense),
                  verdict});
  }

  std::cout << "=== Frontier engine: direction-optimizing vs push-only BFS ("
            << arch.name << ", hub source) ===\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/frontier_direction.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  if (gate_failed) {
    std::cerr << "FAIL: direction-optimizing BFS did not beat push-only on a "
                 "skewed proxy (or levels diverged)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
