// Reproduces paper Figure 5: "Speed Up of adGRAPH on Z100L relative to
// nvGRAPH on A100", per algorithm and dataset (group 2).  Paper averages:
// BFS 1.76x, TC 1.01x, ESBV 0.68x.

#include "bench/bench_common.h"
#include "vgpu/arch.h"

int main(int argc, char** argv) {
  return adgraph::bench::RunSpeedupFigure(
      argc, argv, adgraph::vgpu::Z100LConfig(), adgraph::vgpu::A100Config(),
      "Figure 5: Speed Up of adGRAPH on Z100L relative to nvGRAPH on A100",
      "fig5_speedup_g2");
}
