// Reproduces paper Figure 4: "Speed Up of adGRAPH on Z100 relative to
// nvGRAPH on V100", per algorithm and dataset (group 1).  Paper averages:
// BFS 1.69x, TC 0.84x, ESBV 0.92x.

#include "bench/bench_common.h"
#include "vgpu/arch.h"

int main(int argc, char** argv) {
  return adgraph::bench::RunSpeedupFigure(
      argc, argv, adgraph::vgpu::Z100Config(), adgraph::vgpu::V100Config(),
      "Figure 4: Speed Up of adGRAPH on Z100 relative to nvGRAPH on V100",
      "fig4_speedup_g1");
}
