// Ablation bench for the paper's §5 hypotheses: starting from the Z100L
// configuration, flips ONE architectural parameter at a time and measures
// the runtime impact on BFS / TC / ESBV — isolating the mechanisms the
// paper can only infer from cross-vendor comparisons:
//
//   H1 warp width:      wavefront 64 -> warp 32
//   H2/H4 LDS path:     independent LDS -> unified with L1 (NVIDIA-style)
//   H3 paradigm:        SIMD -> SIMT (divergent-path stall overlap)
//   H5 RAM technology:  HBM2 1024 GB/s -> HBM2e 1935 GB/s (A100's)
//
// Each row reports speedup over the unmodified baseline (>1: the flip
// helps).  By construction the simulator changes nothing else.

#include <array>
#include <iostream>

#include "bench/bench_common.h"
#include "core/bfs.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "graph/generate.h"
#include "util/table.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::bench {
namespace {

struct Workloads {
  graph::CsrGraph symmetric;
  graph::CsrGraph oriented;
  graph::CsrGraph weighted;
  std::vector<graph::vid_t> cluster;
  graph::vid_t source = 0;
  double scale = 1;
};

Result<Workloads> BuildWorkloads(const BenchConfig& config) {
  ADGRAPH_ASSIGN_OR_RETURN(auto spec,
                           graph::FindDataset("soc-liveJournal1"));
  Workloads w;
  w.scale = spec.scale_divisor * config.extra_divisor;
  ADGRAPH_ASSIGN_OR_RETURN(auto directed,
                           graph::Materialize(spec, config.extra_divisor));
  graph::CsrBuildOptions sym;
  sym.make_undirected = true;
  sym.remove_duplicates = true;
  sym.remove_self_loops = true;
  ADGRAPH_ASSIGN_OR_RETURN(w.symmetric,
                           graph::CsrGraph::FromCoo(directed.ToCoo(), sym));
  for (graph::vid_t v = 0; v < w.symmetric.num_vertices(); ++v) {
    if (w.symmetric.degree(v) > w.symmetric.degree(w.source)) w.source = v;
  }
  ADGRAPH_ASSIGN_OR_RETURN(w.oriented, core::OrientByDegree(directed));
  auto coo = directed.ToCoo();
  graph::AttachRandomWeights(&coo, 0.0, 1.0, 7);
  ADGRAPH_ASSIGN_OR_RETURN(w.weighted, graph::CsrGraph::FromCoo(coo));
  w.cluster = core::SelectPseudoCluster(w.weighted.num_vertices(), 0.6, 42);
  return w;
}

Result<std::array<double, 3>> RunAll(const vgpu::ArchConfig& arch,
                                     const Workloads& w) {
  vgpu::Device::Options options;
  options.memory_scale = w.scale;
  vgpu::Device device(arch, options);
  std::array<double, 3> times{};

  core::BfsOptions bfs;
  bfs.source = w.source;
  bfs.assume_symmetric = true;
  ADGRAPH_ASSIGN_OR_RETURN(auto b, core::RunBfs(&device, w.symmetric, bfs));
  times[0] = b.time_ms;

  ADGRAPH_ASSIGN_OR_RETURN(auto dag,
                           core::DeviceCsr::Upload(&device, w.oriented));
  ADGRAPH_ASSIGN_OR_RETURN(auto t,
                           core::RunTriangleCountOnDevice(&device, dag, {}));
  times[1] = t.time_ms;

  core::EsbvOptions esbv;
  esbv.vertices = w.cluster;
  ADGRAPH_ASSIGN_OR_RETURN(
      auto e, core::ExtractSubgraphByVertex(&device, w.weighted, esbv));
  times[2] = e.time_ms;
  return times;
}

int Main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromArgs(argc, argv);
  EnsureOutDir(config);
  auto workloads = BuildWorkloads(config);
  if (!workloads.ok()) {
    std::cerr << workloads.status().ToString() << "\n";
    return 1;
  }

  struct Variant {
    std::string name;
    std::string hypothesis;
    vgpu::ArchConfig arch;
  };
  std::vector<Variant> variants;
  const vgpu::ArchConfig base = vgpu::Z100LConfig();
  {
    vgpu::ArchConfig a = base;
    a.warp_width = 32;
    variants.push_back({"wavefront 64 -> warp 32", "H1", a});
  }
  {
    vgpu::ArchConfig a = base;
    a.shared_path = vgpu::SharedMemPath::kUnifiedWithL1;
    a.smem_latency_cycles = vgpu::A100Config().smem_latency_cycles;
    variants.push_back({"independent LDS -> unified", "H2/H4", a});
  }
  {
    vgpu::ArchConfig a = base;
    a.paradigm = vgpu::Paradigm::kSimt;
    variants.push_back({"SIMD -> SIMT", "H3", a});
  }
  {
    vgpu::ArchConfig a = base;
    a.dram_bandwidth_gbps = vgpu::A100Config().dram_bandwidth_gbps;
    a.dram_latency_cycles = vgpu::A100Config().dram_latency_cycles;
    variants.push_back({"HBM2 -> HBM2e (A100 RAM)", "H5", a});
  }

  auto baseline = RunAll(base, *workloads);
  if (!baseline.ok()) {
    std::cerr << baseline.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table(
      {"Variant (vs Z100L)", "Hypothesis", "BFS", "TC", "ESBV"});
  table.AddRow({"baseline runtime (ms)", "-",
                FormatFixed((*baseline)[0], 3), FormatFixed((*baseline)[1], 3),
                FormatFixed((*baseline)[2], 3)});
  table.AddSeparator();
  for (const auto& variant : variants) {
    auto times = RunAll(variant.arch, *workloads);
    if (!times.ok()) {
      std::cerr << times.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> row{variant.name, variant.hypothesis};
    for (int i = 0; i < 3; ++i) {
      row.push_back(FormatFixed((*baseline)[i] / (*times)[i], 3) + "x");
    }
    table.AddRow(std::move(row));
  }

  std::cout << "=== Ablation: isolating the paper's Hypotheses 1-5 on "
               "soc-liveJournal1 ===\n"
            << "(speedup of the flipped configuration over stock Z100L; "
               ">1 = the flip helps that algorithm)\n";
  table.Print(std::cout);
  auto status = table.WriteCsv(config.out_dir + "/ablation_hypotheses.csv");
  if (!status.ok()) std::cerr << status.ToString() << "\n";
  return 0;
}

}  // namespace
}  // namespace adgraph::bench

int main(int argc, char** argv) { return adgraph::bench::Main(argc, argv); }
