#include <gtest/gtest.h>

#include <limits>

#include "vgpu/arch.h"
#include "vgpu/counters.h"
#include "vgpu/timing.h"

namespace adgraph::vgpu {
namespace {

KernelStats BaseStats() {
  KernelStats stats;
  stats.grid = 64;
  stats.block = 256;
  stats.counters.warps_launched = 64 * 8;
  stats.counters.blocks_launched = 64;
  return stats;
}

TEST(ArchConfigTest, PaperTable3Values) {
  EXPECT_EQ(A100Config().num_sms, 108u);
  EXPECT_EQ(V100Config().num_sms, 80u);
  EXPECT_EQ(Z100Config().num_sms, 64u);
  EXPECT_EQ(Z100LConfig().num_sms, 64u);
  EXPECT_EQ(A100Config().warp_width, 32u);
  EXPECT_EQ(Z100LConfig().warp_width, 64u);
  EXPECT_EQ(A100Config().dram_capacity_bytes, 80ull << 30);
  EXPECT_EQ(Z100Config().dram_capacity_bytes, 16ull << 30);
  EXPECT_EQ(A100Config().ram_type, "HBM2e");
  EXPECT_EQ(Z100LConfig().ram_type, "HBM2");
  EXPECT_DOUBLE_EQ(A100Config().dram_bandwidth_gbps, 1935);
  EXPECT_DOUBLE_EQ(Z100LConfig().dram_bandwidth_gbps, 1024);
  EXPECT_EQ(A100Config().paradigm, Paradigm::kSimt);
  EXPECT_EQ(Z100Config().paradigm, Paradigm::kSimd);
  EXPECT_EQ(A100Config().shared_path, SharedMemPath::kUnifiedWithL1);
  EXPECT_EQ(Z100Config().shared_path, SharedMemPath::kIndependentLds);
}

TEST(ArchConfigTest, PaperGpusOrderedAsTable3) {
  auto gpus = PaperGpus();
  ASSERT_EQ(gpus.size(), 4u);
  EXPECT_EQ(gpus[0]->name, "Z100");
  EXPECT_EQ(gpus[1]->name, "V100");
  EXPECT_EQ(gpus[2]->name, "Z100L");
  EXPECT_EQ(gpus[3]->name, "A100");
}

// Regression: a pathological custom arch (zero SMs, zero clock, zero or
// non-finite bandwidth) used to turn every cycle count into inf/NaN and
// poison the MTEPS tables downstream.  ValidateArchConfig rejects such
// configs wherever they enter the system (scheduler pool construction,
// partitioned-engine creation, CLI custom archs).
TEST(ArchConfigTest, ValidateRejectsPathologicalConfigs) {
  EXPECT_TRUE(ValidateArchConfig(A100Config()).ok());
  EXPECT_TRUE(ValidateArchConfig(V100Config()).ok());
  EXPECT_TRUE(ValidateArchConfig(Z100Config()).ok());
  EXPECT_TRUE(ValidateArchConfig(Z100LConfig()).ok());

  auto mutate = [](auto&& set) {
    ArchConfig config = A100Config();
    set(config);
    return ValidateArchConfig(config);
  };
  EXPECT_EQ(mutate([](ArchConfig& c) { c.num_sms = 0; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mutate([](ArchConfig& c) { c.clock_ghz = 0; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mutate([](ArchConfig& c) { c.clock_ghz = -1.2; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mutate([](ArchConfig& c) { c.dram_bandwidth_gbps = 0; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mutate([](ArchConfig& c) { c.l2_bandwidth_gbps = 0; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mutate([](ArchConfig& c) {
              c.dram_bandwidth_gbps = std::numeric_limits<double>::quiet_NaN();
            }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mutate([](ArchConfig& c) { c.schedulers_per_sm = 0; }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mutate([](ArchConfig& c) { c.lanes_per_sm = 0; }).code(),
            StatusCode::kInvalidArgument);
}

TEST(TimingTest, FixedOverheadFloorsTinyKernels) {
  KernelStats stats = BaseStats();
  stats.counters.warp_inst_issued = 10;
  ComputeKernelTiming(A100Config(), DefaultTimingParams(), &stats);
  double overhead_ms = A100Config().launch_overhead_us / 1000;
  EXPECT_GE(stats.time_ms, overhead_ms * 0.99);
  EXPECT_LT(stats.time_ms, overhead_ms * 1.5);
}

TEST(TimingTest, DramBytesBoundBandwidthKernels) {
  KernelStats stats = BaseStats();
  stats.counters.dram_read_bytes = 1ull << 30;  // 1 GiB
  ComputeKernelTiming(A100Config(), DefaultTimingParams(), &stats);
  // 1 GiB / 1935 GB/s ~ 0.55 ms, plus overhead.
  EXPECT_GT(stats.time_ms, 0.5);
  EXPECT_LT(stats.time_ms, 1.0);

  KernelStats slow = BaseStats();
  slow.counters.dram_read_bytes = 1ull << 30;
  ComputeKernelTiming(Z100Config(), DefaultTimingParams(), &slow);
  EXPECT_GT(slow.time_ms, stats.time_ms)
      << "800 GB/s HBM2 must be slower than 1935 GB/s HBM2e";
}

TEST(TimingTest, IssueBoundScalesWithSmCount) {
  KernelStats stats = BaseStats();
  stats.counters.warp_inst_issued = 100'000'000;
  ComputeKernelTiming(A100Config(), DefaultTimingParams(), &stats);
  KernelStats fewer = BaseStats();
  fewer.counters.warp_inst_issued = 100'000'000;
  ComputeKernelTiming(Z100Config(), DefaultTimingParams(), &fewer);
  // Same instruction count through fewer CUs and lower clock -> slower.
  EXPECT_GT(fewer.time_ms, stats.time_ms);
}

TEST(TimingTest, UnifiedPathChargesSmemContention) {
  auto run = [](const ArchConfig& arch) {
    KernelStats stats;
    stats.grid = 64;
    stats.block = 256;
    stats.counters.warps_launched = 512;
    stats.counters.smem_accesses = 10'000'000;
    stats.counters.smem_bytes = 10'000'000ull * 128;
    stats.counters.l1_misses = 80'000'000;  // refill traffic dominates
    ComputeKernelTiming(arch, DefaultTimingParams(), &stats);
    return stats.smem_cycles;
  };
  ArchConfig nvidia = A100Config();
  ArchConfig amd_like = A100Config();  // identical except the path flag
  amd_like.shared_path = SharedMemPath::kIndependentLds;
  EXPECT_GT(run(nvidia), 1.5 * run(amd_like))
      << "L1 contention must inflate unified-path shared cycles";
}

TEST(TimingTest, OccupancyDeratedByLoopImbalance) {
  KernelStats balanced = BaseStats();
  balanced.counters.loop_lane_iters_possible = 1000;
  balanced.counters.loop_lane_iters_useful = 1000;
  ComputeKernelTiming(A100Config(), DefaultTimingParams(), &balanced);
  KernelStats skewed = BaseStats();
  skewed.counters.loop_lane_iters_possible = 1000;
  skewed.counters.loop_lane_iters_useful = 100;
  ComputeKernelTiming(A100Config(), DefaultTimingParams(), &skewed);
  EXPECT_GT(balanced.achieved_occupancy, skewed.achieved_occupancy);
}

TEST(TimingTest, LatencyHiddenByResidentWarps) {
  KernelStats few = BaseStats();
  few.counters.warps_launched = 108;  // one warp per SM
  few.counters.memory_latency_cycles = 1e7;
  ComputeKernelTiming(A100Config(), DefaultTimingParams(), &few);
  KernelStats many = BaseStats();
  many.counters.warps_launched = 108 * 64;
  many.counters.memory_latency_cycles = 1e7;
  ComputeKernelTiming(A100Config(), DefaultTimingParams(), &many);
  EXPECT_GT(few.exposed_latency_cycles, many.exposed_latency_cycles);
}

TEST(CountersTest, MergeAccumulatesEverything) {
  KernelCounters a, b;
  a.warp_inst_issued = 10;
  a.lane_ops = 100;
  a.l1_hits = 5;
  a.barriers = 1;
  a.memory_latency_cycles = 2.5;
  b.warp_inst_issued = 7;
  b.lane_ops = 50;
  b.l1_misses = 3;
  b.memory_latency_cycles = 1.5;
  a.Merge(b);
  EXPECT_EQ(a.warp_inst_issued, 17u);
  EXPECT_EQ(a.lane_ops, 150u);
  EXPECT_EQ(a.l1_hits, 5u);
  EXPECT_EQ(a.l1_misses, 3u);
  EXPECT_EQ(a.barriers, 1u);
  EXPECT_DOUBLE_EQ(a.memory_latency_cycles, 4.0);
}

TEST(CountersTest, DerivedRatios) {
  KernelCounters c;
  EXPECT_DOUBLE_EQ(c.loop_balance(), 1.0);
  EXPECT_DOUBLE_EQ(c.gld_efficiency(), 1.0);
  c.l1_hits = 3;
  c.l1_misses = 1;
  EXPECT_DOUBLE_EQ(c.l1_hit_rate(), 0.75);
  c.l2_hits = 1;
  c.l2_misses = 3;
  EXPECT_DOUBLE_EQ(c.l2_hit_rate(), 0.25);
  c.global_ld_bytes_requested = 128;
  c.global_ld_bytes_transferred = 512;
  EXPECT_DOUBLE_EQ(c.gld_efficiency(), 0.25);
}

}  // namespace
}  // namespace adgraph::vgpu
