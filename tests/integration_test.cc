#include <gtest/gtest.h>

#include "core/bfs.h"
#include "core/host_ref.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "graph/datasets.h"
#include "prof/metrics.h"
#include "prof/session.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph {
namespace {

using core::BfsOptions;
using core::EsbvOptions;
using core::RunBfs;
using core::RunTriangleCount;
using graph::CsrGraph;
using vgpu::Device;

// Shared fixture: one small proxy dataset, reused across all cases.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto spec = graph::FindDataset("web-Google").value();
    auto g = graph::Materialize(spec, /*extra_divisor=*/8).value();
    graph_ = new CsrGraph(std::move(g));
    graph::CsrBuildOptions sym;
    sym.make_undirected = true;
    sym.remove_duplicates = true;
    sym.remove_self_loops = true;
    sym_graph_ =
        new CsrGraph(CsrGraph::FromCoo(graph_->ToCoo(), sym).value());
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete sym_graph_;
    graph_ = nullptr;
    sym_graph_ = nullptr;
  }

  static CsrGraph* graph_;
  static CsrGraph* sym_graph_;
};

CsrGraph* IntegrationTest::graph_ = nullptr;
CsrGraph* IntegrationTest::sym_graph_ = nullptr;

// The paper's core methodological claim: one code base, four GPUs, same
// answers — architecture changes performance, never results.
TEST_F(IntegrationTest, AllFourGpusAgreeOnBfs) {
  auto expected = core::host_ref::BfsLevels(*sym_graph_, 0);
  for (const auto* arch : vgpu::PaperGpus()) {
    Device dev(*arch);
    auto result = RunBfs(&dev, *sym_graph_, {.source = 0, .assume_symmetric = true});
    ASSERT_TRUE(result.ok()) << arch->name;
    EXPECT_EQ(result->levels, expected) << arch->name;
    EXPECT_GT(result->time_ms, 0.0) << arch->name;
  }
}

TEST_F(IntegrationTest, AllFourGpusAgreeOnTriangles) {
  uint64_t expected = core::host_ref::TriangleCount(*graph_);
  ASSERT_GT(expected, 0u);
  for (const auto* arch : vgpu::PaperGpus()) {
    Device dev(*arch);
    auto result = RunTriangleCount(&dev, *graph_, {});
    ASSERT_TRUE(result.ok()) << arch->name;
    EXPECT_EQ(result->triangles, expected) << arch->name;
  }
}

TEST_F(IntegrationTest, AllFourGpusAgreeOnEsbv) {
  auto weighted = graph_->WithUniformWeights(1.0);
  EsbvOptions options;
  options.vertices =
      core::SelectPseudoCluster(weighted.num_vertices(), 0.6, 77);
  auto expected = core::host_ref::ExtractSubgraph(weighted, options.vertices);
  for (const auto* arch : vgpu::PaperGpus()) {
    Device dev(*arch);
    auto result = core::ExtractSubgraphByVertex(&dev, weighted, options);
    ASSERT_TRUE(result.ok()) << arch->name;
    EXPECT_EQ(result->subgraph_vertices, expected.num_vertices());
    EXPECT_EQ(result->subgraph_edges, expected.num_edges());
  }
}

// Profiling sessions must produce the paper's metric surfaces on both
// platforms from one run.
TEST_F(IntegrationTest, ProfilingSessionsYieldBothMetricViews) {
  Device a100(vgpu::A100Config());
  Device z100l(vgpu::Z100LConfig());
  for (Device* dev : {&a100, &z100l}) {
    prof::Session session(dev);
    ASSERT_TRUE(RunBfs(dev, *sym_graph_, {.source = 0, .assume_symmetric = true}).ok());
    auto profile = session.Finish();
    EXPECT_GT(profile.num_kernels, 0u);
    EXPECT_GT(profile.total_ms, 0.0);
    auto platform = rt::PlatformOf(*dev);
    auto fine = prof::ComputeFineGrained(profile, platform);
    EXPECT_GT(fine.type1, 0u);
    EXPECT_GT(fine.type2, 0u) << "BFS stages frontiers in shared memory";
    EXPECT_GT(fine.type3, 0u);
    EXPECT_GT(fine.type4, 0u);
    auto coarse = prof::ComputeCoarse(profile, platform, dev->arch(),
                                      vgpu::DefaultTimingParams());
    EXPECT_GT(coarse.warp_utilization, 0.0);
    EXPECT_LE(coarse.warp_utilization, 1.0);
    EXPECT_GT(coarse.l2_hit, 0.0);
    EXPECT_LT(coarse.l2_hit, 1.0);
    EXPECT_GT(coarse.global_memory, 0.0);
    EXPECT_GT(coarse.shared_memory, 0.0);
    EXPECT_LE(coarse.shared_memory, 1.0);
  }
}

// Directional sanity of the architecture model at small scale: the
// LDS-independence mechanism must make shared-memory efficiency higher on
// the AMD-like GPU than the NVIDIA one for the same BFS (paper Fig 7 vs 8).
TEST_F(IntegrationTest, SharedMemoryMetricFavorsIndependentLds) {
  Device a100(vgpu::A100Config());
  Device z100l(vgpu::Z100LConfig());
  prof::Session sa(&a100);
  ASSERT_TRUE(RunBfs(&a100, *sym_graph_, {.source = 0, .assume_symmetric = true}).ok());
  auto pa = sa.Finish();
  prof::Session sz(&z100l);
  ASSERT_TRUE(RunBfs(&z100l, *sym_graph_, {.source = 0, .assume_symmetric = true}).ok());
  auto pz = sz.Finish();
  auto ca = prof::ComputeCoarse(pa, rt::Platform::kCuda, a100.arch(),
                                vgpu::DefaultTimingParams());
  auto cz = prof::ComputeCoarse(pz, rt::Platform::kRocmLike, z100l.arch(),
                                vgpu::DefaultTimingParams());
  EXPECT_GT(cz.shared_memory, ca.shared_memory);
}

// Generational scaling (paper Fig 6): Z100L must beat Z100 on every
// algorithm thanks to clock + bandwidth.
TEST_F(IntegrationTest, Z100LFasterThanZ100) {
  Device z100(vgpu::Z100Config());
  Device z100l(vgpu::Z100LConfig());
  auto t_old = RunBfs(&z100, *sym_graph_, {.source = 0, .assume_symmetric = true}).value().time_ms;
  auto t_new = RunBfs(&z100l, *sym_graph_, {.source = 0, .assume_symmetric = true}).value().time_ms;
  EXPECT_LT(t_new, t_old);
}

// Memory accounting ties the stack together: uploads + working buffers are
// freed when results go out of scope.
TEST_F(IntegrationTest, NoDeviceMemoryLeakAcrossRuns) {
  Device dev(vgpu::A100Config());
  uint64_t baseline = dev.memory_used_bytes();
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(RunBfs(&dev, *sym_graph_, {.source = 0, .assume_symmetric = true}).ok());
    ASSERT_TRUE(RunTriangleCount(&dev, *graph_, {}).ok());
    EXPECT_EQ(dev.memory_used_bytes(), baseline) << "round " << round;
  }
}

}  // namespace
}  // namespace adgraph
