#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "core/device_graph.h"
#include "engine/algorithms.h"
#include "engine/engine.h"
#include "engine/frontier.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generate.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::engine {
namespace {

using graph::CsrGraph;
using graph::vid_t;
using vgpu::A100Config;
using vgpu::Device;

CsrGraph SymmetricRmat(uint32_t scale, double edge_factor, uint64_t seed) {
  auto coo = graph::GenerateRmat({.scale = scale, .edge_factor = edge_factor,
                                  .seed = seed})
                 .value();
  graph::CsrBuildOptions options;
  options.make_undirected = true;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return CsrGraph::FromCoo(coo, options).value();
}

// ---------------------------------------------------------------- Frontier

TEST(FrontierTest, InitSourceIsSparseSingleton) {
  Device dev(A100Config());
  auto f = Frontier::Create(&dev, 100).value();
  ASSERT_TRUE(f.InitSource(7).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kSparse);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_FALSE(f.empty());
  EXPECT_DOUBLE_EQ(f.density(), 0.01);
  EXPECT_EQ(core::primitives::GetElement(&dev, f.queue(), 0).value(), 7u);
  // The flags mirror is kept in sync by InitSource.
  EXPECT_EQ(core::primitives::GetElement(&dev, f.flags(), 7).value(), 1u);
  EXPECT_EQ(core::primitives::GetElement(&dev, f.flags(), 6).value(), 0u);
}

TEST(FrontierTest, InitAllVerticesIsDenseFullSet) {
  Device dev(A100Config());
  auto f = Frontier::Create(&dev, 64).value();
  ASSERT_TRUE(f.InitAllVertices().ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kDense);
  EXPECT_EQ(f.size(), 64u);
  EXPECT_DOUBLE_EQ(f.density(), 1.0);
  for (vid_t v : {0u, 31u, 63u}) {
    EXPECT_EQ(core::primitives::GetElement(&dev, f.flags(), v).value(), 1u) << v;
  }
}

TEST(FrontierTest, SparseDenseRoundTripPreservesSet) {
  Device dev(A100Config());
  auto f = Frontier::Create(&dev, 257).value();
  ASSERT_TRUE(f.InitSource(200).ok());
  ASSERT_TRUE(f.EnsureDense().ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kDense);
  EXPECT_EQ(core::primitives::GetElement(&dev, f.flags(), 200).value(), 1u);
  // Back to sparse: the queue is rebuilt from the flags.
  ASSERT_TRUE(f.EnsureSparse().ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kSparse);
  ASSERT_TRUE(f.RefreshCount().ok());
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(core::primitives::GetElement(&dev, f.queue(), 0).value(), 200u);
}

TEST(FrontierTest, DenseToSparseMaterializesFullQueue) {
  Device dev(A100Config());
  auto f = Frontier::Create(&dev, 300).value();
  ASSERT_TRUE(f.InitAllVertices().ok());
  ASSERT_TRUE(f.EnsureSparse().ok());
  ASSERT_TRUE(f.RefreshCount().ok());
  EXPECT_EQ(f.size(), 300u);
  // The conversion uses atomic ticketing; on the deterministic simulator
  // the queue is a permutation of 0..n-1 — verify via a seen-set.
  std::vector<bool> seen(300, false);
  for (uint32_t i = 0; i < 300; ++i) {
    vid_t v = core::primitives::GetElement(&dev, f.queue(), i).value();
    ASSERT_LT(v, 300u);
    EXPECT_FALSE(seen[v]) << "duplicate " << v;
    seen[v] = true;
  }
}

TEST(FrontierTest, ClearEmptiesBothRepresentations) {
  Device dev(A100Config());
  auto f = Frontier::Create(&dev, 50).value();
  ASSERT_TRUE(f.InitAllVertices().ok());
  ASSERT_TRUE(f.Clear().ok());
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.rep(), Frontier::Rep::kSparse);
  EXPECT_DOUBLE_EQ(f.density(), 0.0);
  for (vid_t v = 0; v < 50; ++v) {
    ASSERT_EQ(core::primitives::GetElement(&dev, f.flags(), v).value(), 0u) << v;
  }
}

TEST(FrontierTest, SwapExchangesBuffersAndState) {
  Device dev(A100Config());
  auto a = Frontier::Create(&dev, 40).value();
  auto b = Frontier::Create(&dev, 40).value();
  ASSERT_TRUE(a.InitSource(5).ok());
  ASSERT_TRUE(b.InitAllVertices().ok());
  swap(a, b);
  EXPECT_EQ(a.size(), 40u);
  EXPECT_EQ(a.rep(), Frontier::Rep::kDense);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.rep(), Frontier::Rep::kSparse);
  EXPECT_EQ(core::primitives::GetElement(&dev, b.queue(), 0).value(), 5u);
}

// -------------------------------------------------------- DirectionEngine

TEST(DirectionEngineTest, PullOnlyWithoutPullFormulationFails) {
  Device dev(A100Config());
  DirectionEngine director(&dev, DirectionPolicy::kPullOnly, {},
                           /*can_pull=*/false);
  auto d = director.Choose(10, 1000, 0);
  ASSERT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsFailedPrecondition());
}

TEST(DirectionEngineTest, AutoMatchesSeedHeuristicThresholds) {
  Device dev(A100Config());
  DirectionEngine director(&dev, DirectionPolicy::kAuto, {},
                           /*can_pull=*/true);
  // Seed BFS condition: frontier > 64 AND frontier > n / alpha (alpha=16).
  // n=1000 => n/alpha = 62.5.
  EXPECT_EQ(director.Choose(64, 1000, 0).value(), Direction::kPush)
      << "64 is not > min_pull_frontier";
  EXPECT_EQ(director.Choose(65, 1000, 1).value(), Direction::kPull);
  // n=2000 => n/alpha = 125: 65 clears the floor but not the density bar.
  EXPECT_EQ(director.Choose(65, 2000, 2).value(), Direction::kPush);
  EXPECT_EQ(director.Choose(126, 2000, 3).value(), Direction::kPull);
}

TEST(DirectionEngineTest, PushOnlyNeverPulls) {
  Device dev(A100Config());
  DirectionEngine director(&dev, DirectionPolicy::kPushOnly, {},
                           /*can_pull=*/true);
  EXPECT_EQ(director.Choose(900, 1000, 0).value(), Direction::kPush);
  EXPECT_EQ(director.Choose(1000, 1000, 1).value(), Direction::kPush);
  EXPECT_EQ(director.stats().push_rounds, 2u);
  EXPECT_EQ(director.stats().pull_rounds, 0u);
}

TEST(DirectionEngineTest, AutoWithoutPullFallsBackToPush) {
  Device dev(A100Config());
  DirectionEngine director(&dev, DirectionPolicy::kAuto, {},
                           /*can_pull=*/false);
  EXPECT_EQ(director.Choose(999, 1000, 0).value(), Direction::kPush);
}

TEST(DirectionEngineTest, StatsCountRoundsFlipsAndConversions) {
  Device dev(A100Config());
  DirectionEngine director(&dev, DirectionPolicy::kAuto, {},
                           /*can_pull=*/true);
  // push, pull, pull, push: two flips.
  ASSERT_EQ(director.Choose(10, 1000, 0).value(), Direction::kPush);
  ASSERT_EQ(director.Choose(500, 1000, 1).value(), Direction::kPull);
  ASSERT_EQ(director.Choose(400, 1000, 2).value(), Direction::kPull);
  ASSERT_EQ(director.Choose(10, 1000, 3).value(), Direction::kPush);
  const DirectionStats& s = director.stats();
  EXPECT_EQ(s.push_rounds, 2u);
  EXPECT_EQ(s.pull_rounds, 2u);
  EXPECT_EQ(s.direction_flips, 2u);
  director.RecordConversion(Frontier::Rep::kSparse, Frontier::Rep::kDense);
  director.RecordConversion(Frontier::Rep::kDense, Frontier::Rep::kSparse);
  director.RecordConversion(Frontier::Rep::kSparse, Frontier::Rep::kDense);
  EXPECT_EQ(director.stats().sparse_to_dense, 2u);
  EXPECT_EQ(director.stats().dense_to_sparse, 1u);
}

TEST(DirectionEngineTest, CustomHeuristicShiftsTheSwitchPoint) {
  Device dev(A100Config());
  DirectionHeuristic h;
  h.alpha = 2.0;  // pull only above n/2
  h.min_pull_frontier = 0;
  DirectionEngine director(&dev, DirectionPolicy::kAuto, h, /*can_pull=*/true);
  EXPECT_EQ(director.Choose(400, 1000, 0).value(), Direction::kPush);
  EXPECT_EQ(director.Choose(501, 1000, 1).value(), Direction::kPull);
}

// ------------------------------------------------- Advance on tiny graphs

TEST(EngineAdvanceTest, BfsOnPathGraph) {
  // 0 - 1 - 2 - 3 - 4 (undirected path).
  graph::GraphBuilder b(5);
  for (vid_t v = 0; v + 1 < 5; ++v) b.AddEdge(v, v + 1);
  graph::CsrBuildOptions options;
  options.make_undirected = true;
  auto g = b.Build(options).value();
  Device dev(A100Config());
  auto r =
      RunBfs(&dev, g, {.source = 0, .assume_symmetric = true}).value();
  EXPECT_EQ(r.levels, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.depth, 4u);
  EXPECT_EQ(r.vertices_visited, 5u);
}

TEST(EngineAdvanceTest, SsspRelaxesAcrossRounds) {
  // 0->1 (w=5), 0->2 (w=1), 2->1 (w=1): the two-hop path wins.
  graph::GraphBuilder b(3);
  b.AddEdge(0, 1, 5.0);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(2, 1, 1.0);
  auto g = b.Build().value();
  Device dev(A100Config());
  auto r = RunSssp(&dev, g, {.source = 0}).value();
  EXPECT_DOUBLE_EQ(r.distances[0], 0.0);
  EXPECT_DOUBLE_EQ(r.distances[1], 2.0);
  EXPECT_DOUBLE_EQ(r.distances[2], 1.0);
}

TEST(EngineAdvanceTest, WidestPathPicksBottleneckMax) {
  // 0->1 cap 3, 0->2 cap 10, 2->1 cap 4: widest path to 1 is min(10,4)=4.
  graph::GraphBuilder b(3);
  b.AddEdge(0, 1, 3.0);
  b.AddEdge(0, 2, 10.0);
  b.AddEdge(2, 1, 4.0);
  auto g = b.Build().value();
  Device dev(A100Config());
  auto r = RunWidestPath(&dev, g, {.source = 0}).value();
  EXPECT_DOUBLE_EQ(r.widths[1], 4.0);
  EXPECT_DOUBLE_EQ(r.widths[2], 10.0);
  EXPECT_TRUE(std::isinf(r.widths[0]));
}

TEST(EngineAdvanceTest, CcLabelsTwoComponents) {
  // {0,1,2} a triangle, {3,4} an edge.
  graph::GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(3, 4);
  auto g = b.Build().value();
  Device dev(A100Config());
  auto r = RunConnectedComponents(&dev, g, {}).value();
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_EQ(r.labels, (std::vector<vid_t>{0, 0, 0, 3, 3}));
}

// --------------------------------------------- Direction-optimizing runs

TEST(EngineDirectionTest, AutoBfsPullsOnSkewedSymmetricGraph) {
  // A bundled paper proxy (not a bare RMAT draw): its hub structure makes
  // the frontier blow past n/alpha within a couple of rounds.
  auto spec = graph::FindDataset("web-Google").value();
  auto directed = graph::Materialize(spec, /*extra_divisor=*/8).value();
  graph::CsrBuildOptions sym;
  sym.make_undirected = true;
  sym.remove_duplicates = true;
  sym.remove_self_loops = true;
  auto g = CsrGraph::FromCoo(directed.ToCoo(), sym).value();
  Device dev(A100Config());
  EngineReport report;
  auto r = RunBfs(&dev, g, {.source = 0, .assume_symmetric = true}, nullptr,
                  {.direction = DirectionPolicy::kAuto}, &report)
               .value();
  EXPECT_GT(report.direction.pull_rounds, 0u)
      << "a dense RMAT frontier must trip the pull switch";
  EXPECT_GT(report.direction.push_rounds, 0u)
      << "round 1 (singleton frontier) must stay push";
  EXPECT_GT(report.direction.direction_flips, 0u);
}

TEST(EngineDirectionTest, PushOnlyAndAutoAgreeOnLevels) {
  auto g = SymmetricRmat(10, 10, 92);
  Device dev(A100Config());
  EngineReport push_report, auto_report;
  auto push = RunBfs(&dev, g, {.source = 0, .assume_symmetric = true},
                     nullptr, {.direction = DirectionPolicy::kPushOnly},
                     &push_report)
                  .value();
  auto opt = RunBfs(&dev, g, {.source = 0, .assume_symmetric = true},
                    nullptr, {.direction = DirectionPolicy::kAuto},
                    &auto_report)
                 .value();
  EXPECT_EQ(push_report.direction.pull_rounds, 0u);
  EXPECT_EQ(push.levels, opt.levels);
  EXPECT_EQ(push.depth, opt.depth);
  EXPECT_EQ(push.vertices_visited, opt.vertices_visited);
}

TEST(EngineDirectionTest, PageRankRejectsPushOnlyPolicy) {
  auto g = SymmetricRmat(8, 8, 93);
  Device dev(A100Config());
  auto r = RunPageRank(&dev, g, {}, nullptr,
                       {.direction = DirectionPolicy::kPushOnly});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(EngineDirectionTest, SsspRejectsPullOnlyPolicy) {
  auto g = SymmetricRmat(8, 8, 94);
  Device dev(A100Config());
  auto r = RunSssp(&dev, g, {.source = 0}, nullptr,
                   {.direction = DirectionPolicy::kPullOnly});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(EngineDirectionTest, BfsPullOnlyWithoutSymmetryFails) {
  auto coo = graph::GenerateRmat({.scale = 8, .edge_factor = 8, .seed = 95})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  Device dev(A100Config());
  auto r = RunBfs(&dev, g, {.source = 0, .assume_symmetric = false}, nullptr,
                  {.direction = DirectionPolicy::kPullOnly});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

// --------------------------------------------------- Betweenness (Brandes)

/// Host single-source Brandes reference: forward BFS with path counting,
/// then the backward dependency accumulation.
struct HostBrandes {
  std::vector<double> sigma;
  std::vector<double> delta;
  uint32_t depth = 0;
};

HostBrandes BrandesReference(const CsrGraph& g, vid_t source) {
  const vid_t n = g.num_vertices();
  HostBrandes out;
  out.sigma.assign(n, 0.0);
  out.delta.assign(n, 0.0);
  std::vector<int64_t> dist(n, -1);
  std::vector<std::vector<vid_t>> order;  // vertices by level
  dist[source] = 0;
  out.sigma[source] = 1.0;
  order.push_back({source});
  std::queue<vid_t> q;
  q.push(source);
  while (!q.empty()) {
    vid_t u = q.front();
    q.pop();
    for (auto e = g.row_offsets()[u]; e < g.row_offsets()[u + 1]; ++e) {
      vid_t v = g.col_indices()[e];
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        if (order.size() <= static_cast<size_t>(dist[v])) order.push_back({});
        order[dist[v]].push_back(v);
        q.push(v);
      }
      if (dist[v] == dist[u] + 1) out.sigma[v] += out.sigma[u];
    }
  }
  out.depth = static_cast<uint32_t>(order.size() - 1);
  for (size_t lvl = order.size(); lvl-- > 0;) {
    for (vid_t u : order[lvl]) {
      for (auto e = g.row_offsets()[u]; e < g.row_offsets()[u + 1]; ++e) {
        vid_t v = g.col_indices()[e];
        if (dist[v] == dist[u] + 1) {
          out.delta[u] += out.sigma[u] / out.sigma[v] * (1.0 + out.delta[v]);
        }
      }
    }
  }
  return out;
}

TEST(BetweennessTest, DiamondGraphCountsBothShortestPaths) {
  // 0-1, 0-2, 1-3, 2-3 (undirected diamond): sigma[3] = 2, and both 1 and
  // 2 carry dependency 0.5 from 3.
  graph::GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  graph::CsrBuildOptions options;
  options.make_undirected = true;
  auto g = b.Build(options).value();
  Device dev(A100Config());
  auto r = RunBetweenness(&dev, g, {.source = 0}).value();
  EXPECT_EQ(r.depth, 2u);
  EXPECT_DOUBLE_EQ(r.sigma[0], 1.0);
  EXPECT_DOUBLE_EQ(r.sigma[1], 1.0);
  EXPECT_DOUBLE_EQ(r.sigma[2], 1.0);
  EXPECT_DOUBLE_EQ(r.sigma[3], 2.0);
  EXPECT_DOUBLE_EQ(r.centrality[1], 0.5);
  EXPECT_DOUBLE_EQ(r.centrality[2], 0.5);
  EXPECT_DOUBLE_EQ(r.centrality[3], 0.0);
}

TEST(BetweennessTest, MatchesHostBrandesOnRmat) {
  auto g = SymmetricRmat(10, 8, 96);
  Device dev(A100Config());
  auto r = RunBetweenness(&dev, g, {.source = 1}).value();
  // The engine stages kSymSimple, which symmetrizes + dedups; our input is
  // already symmetric simple, so the reference sees the same adjacency.
  auto ref = BrandesReference(g, 1);
  EXPECT_EQ(r.depth, ref.depth);
  ASSERT_EQ(r.sigma.size(), ref.sigma.size());
  for (size_t v = 0; v < ref.sigma.size(); ++v) {
    // Path counts are integer-valued (exact in doubles below 2^53).
    ASSERT_EQ(r.sigma[v], ref.sigma[v]) << "sigma of " << v;
  }
  for (size_t v = 0; v < ref.delta.size(); ++v) {
    // Brandes excludes the source from its own centrality sum; the engine
    // leaves centrality[source] at 0.
    if (v == 1) continue;
    ASSERT_NEAR(r.centrality[v], ref.delta[v],
                1e-9 * std::max(1.0, std::fabs(ref.delta[v])))
        << "delta of " << v;
  }
  EXPECT_DOUBLE_EQ(r.centrality[1], 0.0);
}

TEST(BetweennessTest, SourceOutOfRangeFails) {
  auto g = SymmetricRmat(6, 4, 97);
  Device dev(A100Config());
  auto r = RunBetweenness(&dev, g, {.source = g.num_vertices()});
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace adgraph::engine
