#include <gtest/gtest.h>

#include "core/host_ref.h"
#include "core/triangle_count.h"
#include "graph/builder.h"
#include "graph/generate.h"
#include "graph/stats.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::core {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using vgpu::A100Config;
using vgpu::Device;
using vgpu::Z100LConfig;

CsrGraph Triangle() {
  GraphBuilder b;
  b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 0);
  return b.Build().value();
}

TEST(OrientTest, ProducesDagWithHalfTheEdges) {
  auto coo = graph::GenerateRmat({.scale = 9, .edge_factor = 8, .seed = 31})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  auto dag = OrientByDegree(g).value();
  // Every undirected edge appears exactly once.
  graph::CsrBuildOptions sym;
  sym.make_undirected = true;
  sym.remove_duplicates = true;
  sym.remove_self_loops = true;
  auto und = CsrGraph::FromCoo(g.ToCoo(), sym).value();
  EXPECT_EQ(dag.num_edges() * 2, und.num_edges());
  // Orientation bounds out-degree: no vertex keeps more than its
  // undirected degree, and hubs shed most edges.
  auto dag_stats = graph::ComputeDegreeStats(dag);
  auto und_stats = graph::ComputeDegreeStats(und);
  EXPECT_LT(dag_stats.max_degree, und_stats.max_degree);
}

TEST(TcTest, SingleTriangle) {
  Device dev(A100Config());
  auto result = RunTriangleCount(&dev, Triangle(), {}).value();
  EXPECT_EQ(result.triangles, 1u);
}

TEST(TcTest, TriangleFreeGraphCountsZero) {
  GraphBuilder b;
  // Bipartite: no triangles.
  for (graph::vid_t u = 0; u < 8; ++u) {
    for (graph::vid_t v = 8; v < 16; ++v) b.AddEdge(u, v);
  }
  Device dev(A100Config());
  auto result = RunTriangleCount(&dev, b.Build().value(), {}).value();
  EXPECT_EQ(result.triangles, 0u);
}

TEST(TcTest, CompleteGraphBinomial) {
  GraphBuilder b;
  const graph::vid_t n = 12;
  for (graph::vid_t u = 0; u < n; ++u) {
    for (graph::vid_t v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  Device dev(A100Config());
  auto result = RunTriangleCount(&dev, b.Build().value(), {}).value();
  EXPECT_EQ(result.triangles, 220u);  // C(12,3)
}

TEST(TcTest, DuplicateAndReverseEdgesDoNotInflate) {
  GraphBuilder b;
  b.AddEdge(0, 1).AddEdge(1, 0).AddEdge(1, 2).AddEdge(2, 1)
      .AddEdge(2, 0).AddEdge(0, 2).AddEdge(0, 1);
  Device dev(A100Config());
  auto result = RunTriangleCount(&dev, b.Build().value(), {}).value();
  EXPECT_EQ(result.triangles, 1u);
}

TEST(TcTest, MatchesReferenceOnRmat) {
  Device dev(A100Config());
  auto coo = graph::GenerateRmat({.scale = 9, .edge_factor = 10, .seed = 33})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  uint64_t expected = host_ref::TriangleCount(g);
  ASSERT_GT(expected, 0u);
  auto result = RunTriangleCount(&dev, g, {}).value();
  EXPECT_EQ(result.triangles, expected);
}

TEST(TcTest, MatchesReferenceOnAmdLikeDevice) {
  Device dev(Z100LConfig());
  auto coo = graph::GenerateRmat({.scale = 9, .edge_factor = 10, .seed = 33})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  auto result = RunTriangleCount(&dev, g, {}).value();
  EXPECT_EQ(result.triangles, host_ref::TriangleCount(g));
}

TEST(TcTest, BinarySearchPathAgreesWithHashPath) {
  Device dev(A100Config());
  auto coo = graph::GenerateRmat({.scale = 9, .edge_factor = 12, .seed = 34})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  TcOptions hash_options;
  auto hash_result = RunTriangleCount(&dev, g, hash_options).value();
  TcOptions bin_options;
  bin_options.force_binary_search = true;
  auto bin_result = RunTriangleCount(&dev, g, bin_options).value();
  EXPECT_EQ(hash_result.triangles, bin_result.triangles);
}

TEST(TcTest, TinyHashCapacityForcesFallbackButStaysCorrect) {
  Device dev(A100Config());
  auto coo = graph::GenerateRmat({.scale = 8, .edge_factor = 10, .seed = 35})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  TcOptions options;
  options.hash_capacity = 16;  // nearly everything exceeds cap/2
  auto result = RunTriangleCount(&dev, g, options).value();
  EXPECT_EQ(result.triangles, host_ref::TriangleCount(g));
}

TEST(TcTest, WattsStrogatzLatticeTriangles) {
  // Unrewired ring lattice with k=4: each vertex closes exactly 2
  // triangles with its neighbors; total = n * k/2 * (k/2 - 1) ... use the
  // host reference as oracle instead of the closed form.
  auto coo = graph::GenerateWattsStrogatz(200, 6, 0.0, 36).value();
  auto g = CsrGraph::FromCoo(coo).value();
  Device dev(A100Config());
  auto result = RunTriangleCount(&dev, g, {}).value();
  EXPECT_EQ(result.triangles, host_ref::TriangleCount(g));
  EXPECT_GT(result.triangles, 0u);
}

TEST(TcTest, UsesSharedMemoryOnHashPath) {
  Device dev(A100Config());
  auto coo = graph::GenerateRmat({.scale = 9, .edge_factor = 10, .seed = 37})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  size_t log_before = dev.kernel_log().size();
  ASSERT_TRUE(RunTriangleCount(&dev, g, {}).ok());
  vgpu::KernelCounters merged;
  for (size_t i = log_before; i < dev.kernel_log().size(); ++i) {
    merged.Merge(dev.kernel_log()[i].counters);
  }
  EXPECT_GT(merged.shared_store_inst, 0u);
  EXPECT_GT(merged.shared_load_inst, 0u);
  EXPECT_GT(merged.divergent_branches, 0u) << "TC must branch more than BFS";
}

}  // namespace
}  // namespace adgraph::core
