#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "prof/metrics.h"
#include "prof/report.h"
#include "prof/session.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::prof {
namespace {

using vgpu::A100Config;
using vgpu::Ctx;
using vgpu::Device;
using vgpu::KernelStats;
using vgpu::KernelTask;
using vgpu::Z100LConfig;

KernelStats MakeStats(double ms, double cycles) {
  KernelStats stats;
  stats.time_ms = ms;
  stats.cycles = cycles;
  stats.counters.warp_inst_issued = 100;
  stats.counters.valu_warp_inst = 60;
  stats.counters.shared_load_inst = 5;
  stats.counters.shared_store_inst = 10;
  stats.counters.global_load_inst = 20;
  stats.counters.global_store_inst = 7;
  stats.counters.atomic_inst = 3;
  return stats;
}

TEST(AlgoProfileTest, AddAccumulates) {
  AlgoProfile p;
  p.Add(MakeStats(1.0, 1000));
  p.Add(MakeStats(2.0, 3000));
  EXPECT_EQ(p.num_kernels, 2u);
  EXPECT_DOUBLE_EQ(p.total_ms, 3.0);
  EXPECT_DOUBLE_EQ(p.total_cycles, 4000.0);
  EXPECT_EQ(p.counters.warp_inst_issued, 200u);
}

TEST(FineGrainedTest, CudaViewSelectsNcuCounters) {
  AlgoProfile p;
  p.Add(MakeStats(1.0, 1000));
  auto fine = ComputeFineGrained(p, rt::Platform::kCuda);
  EXPECT_EQ(fine.type1, 100u);  // inst_issued: all classes
  EXPECT_EQ(fine.type2, 10u);   // shared stores only
  EXPECT_EQ(fine.type3, 20u);
  EXPECT_EQ(fine.type4, 7u);    // stores only, atomics separate
}

TEST(FineGrainedTest, RocmViewSelectsHiprofCounters) {
  AlgoProfile p;
  p.Add(MakeStats(1.0, 1000));
  auto fine = ComputeFineGrained(p, rt::Platform::kRocmLike);
  EXPECT_EQ(fine.type1, 240u);  // SQ_INSTS_VALU: 4 SIMD16 passes per op
  EXPECT_EQ(fine.type2, 15u);   // SQ_INSTS_LDS: loads + stores
  EXPECT_EQ(fine.type3, 20u);
  EXPECT_EQ(fine.type4, 10u);   // VMEM_WR includes atomics
}

TEST(MetricNamesTest, MatchPaperTables1And2) {
  auto cuda_fine = FineGrainedMetricNames(rt::Platform::kCuda);
  ASSERT_EQ(cuda_fine.size(), 4u);
  EXPECT_EQ(cuda_fine[0], "inst_issued");
  EXPECT_EQ(cuda_fine[1], "inst_executed_shared_stores");
  auto rocm_fine = FineGrainedMetricNames(rt::Platform::kRocmLike);
  EXPECT_EQ(rocm_fine[0], "SQ_INSTS_VALU");
  EXPECT_EQ(rocm_fine[3], "SQ_INSTS_VMEM_WR");
  auto cuda_coarse = CoarseMetricNames(rt::Platform::kCuda);
  EXPECT_EQ(cuda_coarse[0], "achieved_occupancy");
  EXPECT_EQ(cuda_coarse[3], "gld_efficiency");
  auto rocm_coarse = CoarseMetricNames(rt::Platform::kRocmLike);
  EXPECT_EQ(rocm_coarse[0], "VALUBusy");
  EXPECT_EQ(rocm_coarse[1], "1-ALUStalledByLDS");
}

TEST(CoarseTest, BankConflictsLowerCudaSharedEfficiency) {
  AlgoProfile clean;
  clean.total_cycles = 1000;
  clean.counters.smem_accesses = 100;
  clean.counters.smem_bank_conflict_extra = 0;
  AlgoProfile conflicted = clean;
  conflicted.counters.smem_bank_conflict_extra = 300;
  auto arch = A100Config();
  const auto& params = vgpu::DefaultTimingParams();
  auto a = ComputeCoarse(clean, rt::Platform::kCuda, arch, params);
  auto b = ComputeCoarse(conflicted, rt::Platform::kCuda, arch, params);
  EXPECT_DOUBLE_EQ(a.shared_memory, 1.0);
  EXPECT_DOUBLE_EQ(b.shared_memory, 0.25);
}

TEST(CoarseTest, L1TrafficLowersUnifiedSharedEfficiencyOnly) {
  AlgoProfile p;
  p.total_cycles = 1000;
  p.counters.smem_accesses = 100;
  p.counters.smem_bytes = 1000;
  p.counters.l1_misses = 10000;  // miss_bytes >> smem_bytes
  const auto& params = vgpu::DefaultTimingParams();
  auto cuda = ComputeCoarse(p, rt::Platform::kCuda, A100Config(), params);
  EXPECT_LT(cuda.shared_memory, 0.5)
      << "contention must depress shared_efficiency on the unified path";
  auto rocm =
      ComputeCoarse(p, rt::Platform::kRocmLike, Z100LConfig(), params);
  EXPECT_GT(rocm.shared_memory, 0.9)
      << "independent LDS is immune to L1 traffic";
}

TEST(CoarseTest, RocmUtilizationRatiosFromCycleShares) {
  AlgoProfile p;
  p.total_cycles = 1000;
  p.valu_cycles = 250;
  p.smem_cycles = 100;
  p.dram_cycles = 400;
  p.counters.l2_hits = 3;
  p.counters.l2_misses = 1;
  const auto& params = vgpu::DefaultTimingParams();
  auto m = ComputeCoarse(p, rt::Platform::kRocmLike, Z100LConfig(), params);
  EXPECT_DOUBLE_EQ(m.warp_utilization, 0.25);   // VALUBusy
  EXPECT_DOUBLE_EQ(m.shared_memory, 0.9);       // 1 - ALUStalledByLDS
  EXPECT_DOUBLE_EQ(m.l2_hit, 0.75);
  EXPECT_DOUBLE_EQ(m.global_memory, 0.4);       // MemUnitBusy
}


TEST(ReportTest, FormatKernelLogFoldsByName) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  ASSERT_TRUE(dev.Launch("alpha", {1, 32}, noop).ok());
  ASSERT_TRUE(dev.Launch("alpha", {1, 32}, noop).ok());
  ASSERT_TRUE(dev.Launch("beta", {2, 64}, noop).ok());
  std::string report = FormatKernelLog(dev);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("| 2 "), std::string::npos) << "alpha folded to 2";
  EXPECT_NE(report.find("100%"), std::string::npos);
}

TEST(ReportTest, CsvHasOneRowPerLaunch) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dev.Launch("k", {1, 32}, noop).ok());
  }
  std::string path = testing::TempDir() + "/adgraph_report_test.csv";
  ASSERT_TRUE(WriteKernelLogCsv(dev, path).ok());
  std::ifstream in(path);
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);  // header + 3 launches
  std::remove(path.c_str());
}

TEST(ReportTest, StartIndexWindowsTheLog) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  ASSERT_TRUE(dev.Launch("early", {1, 32}, noop).ok());
  size_t mark = dev.kernel_log().size();
  ASSERT_TRUE(dev.Launch("late", {1, 32}, noop).ok());
  std::string report = FormatKernelLog(dev, mark);
  EXPECT_EQ(report.find("early"), std::string::npos);
  EXPECT_NE(report.find("late"), std::string::npos);
}

TEST(SessionTest, WindowsTheKernelLog) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  ASSERT_TRUE(dev.Launch("before", {1, 32}, noop).ok());
  Session session(&dev);
  ASSERT_TRUE(dev.Launch("inside1", {1, 32}, noop).ok());
  ASSERT_TRUE(dev.Launch("inside2", {2, 64}, noop).ok());
  AlgoProfile p = session.Finish();
  EXPECT_EQ(p.num_kernels, 2u);
  // The pre-session kernel is excluded.
  EXPECT_EQ(dev.kernel_log().size(), 3u);
}

// ------------------------------------------------- JobProfile (§2.14)

TEST(JobProfileTest, BuildFoldsAndRanksTheWindow) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  // One pre-window launch that must not leak into the job's attribution.
  ASSERT_TRUE(dev.Launch("outside", {1, 32}, noop).ok());
  const size_t start = dev.kernel_log().size();
  ASSERT_TRUE(dev.Launch("hot", {8, 256}, noop).ok());
  ASSERT_TRUE(dev.Launch("hot", {8, 256}, noop).ok());
  ASSERT_TRUE(dev.Launch("cold", {1, 32}, noop).ok());
  AlgoProfile merged;
  for (size_t i = start; i < dev.kernel_log().size(); ++i) {
    merged.Add(dev.kernel_log()[i]);
  }

  JobProfile job = BuildJobProfile(merged, dev.kernel_log(), start);
  EXPECT_EQ(job.num_kernels, 3u);
  EXPECT_GT(job.total_cycles, 0.0);
  ASSERT_EQ(job.top_kernels.size(), 2u) << "launches fold by kernel name";
  EXPECT_EQ(job.top_kernels[0].kernel_name, "hot");
  EXPECT_EQ(job.top_kernels[0].launches, 2u);
  EXPECT_EQ(job.top_kernels[1].kernel_name, "cold");
  EXPECT_GE(job.top_kernels[0].cycles, job.top_kernels[1].cycles);
  for (const JobKernelEntry& entry : job.top_kernels) {
    EXPECT_NE(entry.kernel_name, "outside");
  }
  // Ratios stay ratios.
  EXPECT_GE(job.divergent_branch_ratio, 0.0);
  EXPECT_LE(job.divergent_branch_ratio, 1.0);
  EXPECT_GE(job.l2_hit_rate, 0.0);
  EXPECT_LE(job.l2_hit_rate, 1.0);
  EXPECT_GT(job.achieved_occupancy, 0.0);
  EXPECT_LE(job.achieved_occupancy, 1.0);

  // Top-N truncation: ask for one row, get the heaviest.
  JobProfile top1 = BuildJobProfile(merged, dev.kernel_log(), start, 1);
  ASSERT_EQ(top1.top_kernels.size(), 1u);
  EXPECT_EQ(top1.top_kernels[0].kernel_name, "hot");
}

TEST(JobProfileTest, EmptyWindowIsNeutral) {
  JobProfile job = BuildJobProfile(AlgoProfile{}, {}, 0);
  EXPECT_EQ(job.num_kernels, 0u);
  EXPECT_TRUE(job.top_kernels.empty());
  // The efficiency ratios default to 1 (nothing transferred is nothing
  // wasted) so downstream histograms are not polluted with zeros.
  EXPECT_DOUBLE_EQ(job.gld_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(job.gst_efficiency, 1.0);
}

TEST(ReportTest, FormatJobProfileRendersTable6Metrics) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  ASSERT_TRUE(dev.Launch("alpha", {2, 64}, noop).ok());
  AlgoProfile merged;
  for (const KernelStats& stats : dev.kernel_log()) merged.Add(stats);
  std::string report =
      FormatJobProfile(BuildJobProfile(merged, dev.kernel_log(), 0));
  EXPECT_NE(report.find("Job profile: 1 kernels"), std::string::npos)
      << report;
  for (const char* metric :
       {"divergent_branch_ratio", "gld_efficiency", "gst_efficiency",
        "l1_hit_rate", "l2_hit_rate", "achieved_occupancy",
        "exposed_latency_cycles"}) {
    EXPECT_NE(report.find(metric), std::string::npos) << metric;
  }
  EXPECT_NE(report.find("alpha"), std::string::npos) << report;
}

TEST(ReportTest, TraceSummaryWarnsOnDroppedSpans) {
  std::vector<trace::TraceEvent> events;
  trace::TraceEvent event;
  event.name = "algo:bfs";
  event.category = "engine";
  event.phase = 'X';
  event.dur_us = 10;
  events.push_back(event);
  std::string clean = FormatTraceSummary(events, 0);
  EXPECT_EQ(clean.find("WARNING"), std::string::npos) << clean;
  std::string lossy = FormatTraceSummary(events, 7);
  EXPECT_NE(lossy.find("WARNING: 7"), std::string::npos) << lossy;
  EXPECT_NE(lossy.find("adgraph_trace_dropped_spans_total"),
            std::string::npos)
      << "the warning must name the counter to alert on";
}

// ---------------------------------------------------------- Percentile
//
// Pins the nearest-rank definition: the value at 1-based sorted rank
// ceil(p*n), clamped to [1, n].  The previous scheduler-local
// implementation rounded p*(n-1), which e.g. returned the *minimum* of a
// two-sample distribution for p95.

TEST(PercentileTest, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.95), 0.0);
}

TEST(PercentileTest, SingleSampleReturnsItForAnyP) {
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 0.0), 3.25);
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 0.5), 3.25);
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 0.95), 3.25);
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 1.0), 3.25);
}

TEST(PercentileTest, TwoSamples) {
  // ceil(0.5 * 2) = 1 -> the smaller; ceil(0.95 * 2) = 2 -> the larger.
  EXPECT_DOUBLE_EQ(Percentile({10.0, 20.0}, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(Percentile({20.0, 10.0}, 0.95), 20.0);
  EXPECT_DOUBLE_EQ(Percentile({20.0, 10.0}, 1.0), 20.0);
}

TEST(PercentileTest, P95OfTwentyIsNineteenthValue) {
  // ceil(0.95 * 20) = 19: exactly 95% of the sample is <= the result.
  std::vector<double> values;
  for (int i = 20; i >= 1; --i) values.push_back(i);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(Percentile(values, 0.95), 19.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.50), 10.0);
}

TEST(PercentileTest, OutOfRangePClamped) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(values, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.5), 3.0);
}

}  // namespace
}  // namespace adgraph::prof
