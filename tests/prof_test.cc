#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "prof/metrics.h"
#include "prof/report.h"
#include "prof/session.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::prof {
namespace {

using vgpu::A100Config;
using vgpu::Ctx;
using vgpu::Device;
using vgpu::KernelStats;
using vgpu::KernelTask;
using vgpu::Z100LConfig;

KernelStats MakeStats(double ms, double cycles) {
  KernelStats stats;
  stats.time_ms = ms;
  stats.cycles = cycles;
  stats.counters.warp_inst_issued = 100;
  stats.counters.valu_warp_inst = 60;
  stats.counters.shared_load_inst = 5;
  stats.counters.shared_store_inst = 10;
  stats.counters.global_load_inst = 20;
  stats.counters.global_store_inst = 7;
  stats.counters.atomic_inst = 3;
  return stats;
}

TEST(AlgoProfileTest, AddAccumulates) {
  AlgoProfile p;
  p.Add(MakeStats(1.0, 1000));
  p.Add(MakeStats(2.0, 3000));
  EXPECT_EQ(p.num_kernels, 2u);
  EXPECT_DOUBLE_EQ(p.total_ms, 3.0);
  EXPECT_DOUBLE_EQ(p.total_cycles, 4000.0);
  EXPECT_EQ(p.counters.warp_inst_issued, 200u);
}

TEST(FineGrainedTest, CudaViewSelectsNcuCounters) {
  AlgoProfile p;
  p.Add(MakeStats(1.0, 1000));
  auto fine = ComputeFineGrained(p, rt::Platform::kCuda);
  EXPECT_EQ(fine.type1, 100u);  // inst_issued: all classes
  EXPECT_EQ(fine.type2, 10u);   // shared stores only
  EXPECT_EQ(fine.type3, 20u);
  EXPECT_EQ(fine.type4, 7u);    // stores only, atomics separate
}

TEST(FineGrainedTest, RocmViewSelectsHiprofCounters) {
  AlgoProfile p;
  p.Add(MakeStats(1.0, 1000));
  auto fine = ComputeFineGrained(p, rt::Platform::kRocmLike);
  EXPECT_EQ(fine.type1, 240u);  // SQ_INSTS_VALU: 4 SIMD16 passes per op
  EXPECT_EQ(fine.type2, 15u);   // SQ_INSTS_LDS: loads + stores
  EXPECT_EQ(fine.type3, 20u);
  EXPECT_EQ(fine.type4, 10u);   // VMEM_WR includes atomics
}

TEST(MetricNamesTest, MatchPaperTables1And2) {
  auto cuda_fine = FineGrainedMetricNames(rt::Platform::kCuda);
  ASSERT_EQ(cuda_fine.size(), 4u);
  EXPECT_EQ(cuda_fine[0], "inst_issued");
  EXPECT_EQ(cuda_fine[1], "inst_executed_shared_stores");
  auto rocm_fine = FineGrainedMetricNames(rt::Platform::kRocmLike);
  EXPECT_EQ(rocm_fine[0], "SQ_INSTS_VALU");
  EXPECT_EQ(rocm_fine[3], "SQ_INSTS_VMEM_WR");
  auto cuda_coarse = CoarseMetricNames(rt::Platform::kCuda);
  EXPECT_EQ(cuda_coarse[0], "achieved_occupancy");
  EXPECT_EQ(cuda_coarse[3], "gld_efficiency");
  auto rocm_coarse = CoarseMetricNames(rt::Platform::kRocmLike);
  EXPECT_EQ(rocm_coarse[0], "VALUBusy");
  EXPECT_EQ(rocm_coarse[1], "1-ALUStalledByLDS");
}

TEST(CoarseTest, BankConflictsLowerCudaSharedEfficiency) {
  AlgoProfile clean;
  clean.total_cycles = 1000;
  clean.counters.smem_accesses = 100;
  clean.counters.smem_bank_conflict_extra = 0;
  AlgoProfile conflicted = clean;
  conflicted.counters.smem_bank_conflict_extra = 300;
  auto arch = A100Config();
  const auto& params = vgpu::DefaultTimingParams();
  auto a = ComputeCoarse(clean, rt::Platform::kCuda, arch, params);
  auto b = ComputeCoarse(conflicted, rt::Platform::kCuda, arch, params);
  EXPECT_DOUBLE_EQ(a.shared_memory, 1.0);
  EXPECT_DOUBLE_EQ(b.shared_memory, 0.25);
}

TEST(CoarseTest, L1TrafficLowersUnifiedSharedEfficiencyOnly) {
  AlgoProfile p;
  p.total_cycles = 1000;
  p.counters.smem_accesses = 100;
  p.counters.smem_bytes = 1000;
  p.counters.l1_misses = 10000;  // miss_bytes >> smem_bytes
  const auto& params = vgpu::DefaultTimingParams();
  auto cuda = ComputeCoarse(p, rt::Platform::kCuda, A100Config(), params);
  EXPECT_LT(cuda.shared_memory, 0.5)
      << "contention must depress shared_efficiency on the unified path";
  auto rocm =
      ComputeCoarse(p, rt::Platform::kRocmLike, Z100LConfig(), params);
  EXPECT_GT(rocm.shared_memory, 0.9)
      << "independent LDS is immune to L1 traffic";
}

TEST(CoarseTest, RocmUtilizationRatiosFromCycleShares) {
  AlgoProfile p;
  p.total_cycles = 1000;
  p.valu_cycles = 250;
  p.smem_cycles = 100;
  p.dram_cycles = 400;
  p.counters.l2_hits = 3;
  p.counters.l2_misses = 1;
  const auto& params = vgpu::DefaultTimingParams();
  auto m = ComputeCoarse(p, rt::Platform::kRocmLike, Z100LConfig(), params);
  EXPECT_DOUBLE_EQ(m.warp_utilization, 0.25);   // VALUBusy
  EXPECT_DOUBLE_EQ(m.shared_memory, 0.9);       // 1 - ALUStalledByLDS
  EXPECT_DOUBLE_EQ(m.l2_hit, 0.75);
  EXPECT_DOUBLE_EQ(m.global_memory, 0.4);       // MemUnitBusy
}


TEST(ReportTest, FormatKernelLogFoldsByName) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  ASSERT_TRUE(dev.Launch("alpha", {1, 32}, noop).ok());
  ASSERT_TRUE(dev.Launch("alpha", {1, 32}, noop).ok());
  ASSERT_TRUE(dev.Launch("beta", {2, 64}, noop).ok());
  std::string report = FormatKernelLog(dev);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("| 2 "), std::string::npos) << "alpha folded to 2";
  EXPECT_NE(report.find("100%"), std::string::npos);
}

TEST(ReportTest, CsvHasOneRowPerLaunch) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dev.Launch("k", {1, 32}, noop).ok());
  }
  std::string path = testing::TempDir() + "/adgraph_report_test.csv";
  ASSERT_TRUE(WriteKernelLogCsv(dev, path).ok());
  std::ifstream in(path);
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);  // header + 3 launches
  std::remove(path.c_str());
}

TEST(ReportTest, StartIndexWindowsTheLog) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  ASSERT_TRUE(dev.Launch("early", {1, 32}, noop).ok());
  size_t mark = dev.kernel_log().size();
  ASSERT_TRUE(dev.Launch("late", {1, 32}, noop).ok());
  std::string report = FormatKernelLog(dev, mark);
  EXPECT_EQ(report.find("early"), std::string::npos);
  EXPECT_NE(report.find("late"), std::string::npos);
}

TEST(SessionTest, WindowsTheKernelLog) {
  Device dev(A100Config());
  auto noop = [](Ctx& c) -> KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  ASSERT_TRUE(dev.Launch("before", {1, 32}, noop).ok());
  Session session(&dev);
  ASSERT_TRUE(dev.Launch("inside1", {1, 32}, noop).ok());
  ASSERT_TRUE(dev.Launch("inside2", {2, 64}, noop).ok());
  AlgoProfile p = session.Finish();
  EXPECT_EQ(p.num_kernels, 2u);
  // The pre-session kernel is excluded.
  EXPECT_EQ(dev.kernel_log().size(), 3u);
}

// ---------------------------------------------------------- Percentile
//
// Pins the nearest-rank definition: the value at 1-based sorted rank
// ceil(p*n), clamped to [1, n].  The previous scheduler-local
// implementation rounded p*(n-1), which e.g. returned the *minimum* of a
// two-sample distribution for p95.

TEST(PercentileTest, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.95), 0.0);
}

TEST(PercentileTest, SingleSampleReturnsItForAnyP) {
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 0.0), 3.25);
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 0.5), 3.25);
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 0.95), 3.25);
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 1.0), 3.25);
}

TEST(PercentileTest, TwoSamples) {
  // ceil(0.5 * 2) = 1 -> the smaller; ceil(0.95 * 2) = 2 -> the larger.
  EXPECT_DOUBLE_EQ(Percentile({10.0, 20.0}, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(Percentile({20.0, 10.0}, 0.95), 20.0);
  EXPECT_DOUBLE_EQ(Percentile({20.0, 10.0}, 1.0), 20.0);
}

TEST(PercentileTest, P95OfTwentyIsNineteenthValue) {
  // ceil(0.95 * 20) = 19: exactly 95% of the sample is <= the result.
  std::vector<double> values;
  for (int i = 20; i >= 1; --i) values.push_back(i);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(Percentile(values, 0.95), 19.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.50), 10.0);
}

TEST(PercentileTest, OutOfRangePClamped) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(values, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.5), 3.0);
}

}  // namespace
}  // namespace adgraph::prof
