#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/api.h"
#include "core/bfs.h"
#include "core/conn_components.h"
#include "core/pagerank.h"
#include "core/sssp.h"
#include "core/widest_path.h"
#include "engine/algorithms.h"
#include "graph/datasets.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph {
namespace {

using graph::CsrGraph;
using vgpu::A100Config;
using vgpu::Device;

/// Shrink factor for the bundled paper proxies: keeps the full 7-dataset
/// sweep (ISSUE: "engine output must be byte-identical to the seed on all
/// bundled datasets") inside unit-test time.
constexpr double kGoldenDivisor = 32.0;

struct GoldenGraphs {
  std::string name;
  CsrGraph directed;  ///< the proxy as materialized (unweighted, directed)
  CsrGraph sym;       ///< undirected simple version (direction-optimizing BFS)
  CsrGraph weighted;  ///< directed with deterministic random weights
};

/// One materialization of all seven bundled datasets, shared by every
/// golden case in this binary.
class GoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graphs_ = new std::vector<GoldenGraphs>();
    uint64_t weight_seed = 1000;
    for (const auto& spec : graph::PaperDatasets()) {
      GoldenGraphs g;
      g.name = spec.name;
      g.directed = graph::Materialize(spec, kGoldenDivisor).value();
      graph::CsrBuildOptions sym;
      sym.make_undirected = true;
      sym.remove_duplicates = true;
      sym.remove_self_loops = true;
      g.sym = CsrGraph::FromCoo(g.directed.ToCoo(), sym).value();
      auto coo = g.directed.ToCoo();
      graph::AttachRandomWeights(&coo, 0.1, 1.0, ++weight_seed);
      g.weighted = CsrGraph::FromCoo(coo).value();
      graphs_->push_back(std::move(g));
    }
  }
  static void TearDownTestSuite() {
    delete graphs_;
    graphs_ = nullptr;
  }

  static std::vector<GoldenGraphs>* graphs_;
};

std::vector<GoldenGraphs>* GoldenTest::graphs_ = nullptr;

// Byte-identity golden cases: the engine port vs. the seed implementation
// on every bundled dataset.  vector operator== on the result arrays is a
// bitwise comparison (doubles compare by value; all values here are either
// exact semiring fixpoints or replayed FP sequences).

TEST_F(GoldenTest, BfsDirectedWithParentsMatchesSeedExactly) {
  for (const auto& gg : *graphs_) {
    Device dev(A100Config());
    core::BfsOptions options;
    options.source = 0;
    options.compute_parents = true;
    auto seed = core::RunBfs(&dev, gg.directed, options).value();
    auto eng = engine::RunBfs(&dev, gg.directed, options).value();
    EXPECT_EQ(eng.levels, seed.levels) << gg.name;
    EXPECT_EQ(eng.parents, seed.parents) << gg.name;
    EXPECT_EQ(eng.depth, seed.depth) << gg.name;
    EXPECT_EQ(eng.vertices_visited, seed.vertices_visited) << gg.name;
    EXPECT_EQ(eng.top_down_iterations, seed.top_down_iterations) << gg.name;
    EXPECT_EQ(eng.bottom_up_iterations, seed.bottom_up_iterations) << gg.name;
  }
}

TEST_F(GoldenTest, DirectionOptimizingBfsMatchesSeedRoundForRound) {
  // The engine replays the seed's density heuristic, so on symmetric inputs
  // both implementations must flip push/pull on the same rounds — iteration
  // counters are part of the golden contract, not just the levels.
  for (const auto& gg : *graphs_) {
    Device dev(A100Config());
    core::BfsOptions options;
    options.source = 0;
    options.assume_symmetric = true;
    auto seed = core::RunBfs(&dev, gg.sym, options).value();
    auto eng = engine::RunBfs(&dev, gg.sym, options).value();
    EXPECT_EQ(eng.levels, seed.levels) << gg.name;
    EXPECT_EQ(eng.depth, seed.depth) << gg.name;
    EXPECT_EQ(eng.vertices_visited, seed.vertices_visited) << gg.name;
    EXPECT_EQ(eng.top_down_iterations, seed.top_down_iterations) << gg.name;
    EXPECT_EQ(eng.bottom_up_iterations, seed.bottom_up_iterations) << gg.name;
    EXPECT_GT(seed.bottom_up_iterations, 0u)
        << gg.name << ": proxy too sparse to exercise the pull switch";
  }
}

TEST_F(GoldenTest, SsspDistancesMatchSeedBitwise) {
  // Min-plus fixpoint is unique, so the engine's frontier-driven schedule
  // lands on the seed's exact distance array (round counts may differ).
  for (const auto& gg : *graphs_) {
    Device dev(A100Config());
    core::SsspOptions options;
    options.source = 0;
    auto seed = core::RunSssp(&dev, gg.weighted, options).value();
    auto eng = engine::RunSssp(&dev, gg.weighted, options).value();
    EXPECT_EQ(eng.distances, seed.distances) << gg.name;
  }
}

TEST_F(GoldenTest, PageRankRanksMatchSeedBitwise) {
  // PageRank is FP-order sensitive; the engine replays the seed's kernel
  // sequence, so ranks, iteration count, and the final residual are all
  // bitwise equal.
  for (const auto& gg : *graphs_) {
    Device dev(A100Config());
    core::PageRankOptions options;
    options.max_iterations = 5;
    auto seed = core::RunPageRank(&dev, gg.directed, options).value();
    auto eng = engine::RunPageRank(&dev, gg.directed, options).value();
    EXPECT_EQ(eng.ranks, seed.ranks) << gg.name;
    EXPECT_EQ(eng.iterations, seed.iterations) << gg.name;
    EXPECT_EQ(eng.l1_delta, seed.l1_delta) << gg.name;
  }
}

TEST_F(GoldenTest, ConnectedComponentsLabelsMatchSeedExactly) {
  for (const auto& gg : *graphs_) {
    Device dev(A100Config());
    auto seed = core::RunConnectedComponents(&dev, gg.directed, {}).value();
    auto eng = engine::RunConnectedComponents(&dev, gg.directed, {}).value();
    EXPECT_EQ(eng.labels, seed.labels) << gg.name;
    EXPECT_EQ(eng.num_components, seed.num_components) << gg.name;
  }
}

TEST_F(GoldenTest, WidestPathWidthsMatchSeedBitwise) {
  // Max-min fixpoint: every width is some edge weight (or 0 / +inf), so
  // exact equality is the right comparison.
  for (const auto& gg : *graphs_) {
    Device dev(A100Config());
    core::WidestPathOptions options;
    options.source = 0;
    auto seed = core::RunWidestPath(&dev, gg.weighted, options).value();
    auto eng = engine::RunWidestPath(&dev, gg.weighted, options).value();
    EXPECT_EQ(eng.widths, seed.widths) << gg.name;
  }
}

TEST_F(GoldenTest, CoreRunDispatchesThroughTheEngine) {
  // The uniform entry point (what serve/capi/CLI call) must agree with the
  // seed too — this is the path the whole stack now rides.
  const auto& gg = (*graphs_)[0];  // web-Stanford
  Device dev(A100Config());
  core::BfsOptions options;
  options.source = 0;
  options.compute_parents = true;
  auto seed = core::RunBfs(&dev, gg.directed, options).value();
  auto run = core::Run(&dev, {core::Algo::kBfs}, gg.directed,
                       core::Params(options))
                 .value();
  const auto& eng = std::get<core::BfsResult>(run);
  EXPECT_EQ(eng.levels, seed.levels);
  EXPECT_EQ(eng.parents, seed.parents);
  EXPECT_EQ(eng.depth, seed.depth);
}

}  // namespace
}  // namespace adgraph
