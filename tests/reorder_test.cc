#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/host_ref.h"
#include "graph/builder.h"
#include "graph/generate.h"
#include "graph/reorder.h"
#include "graph/stats.h"

namespace adgraph::graph {
namespace {

CsrGraph TestGraph(uint64_t seed) {
  auto coo = GenerateRmat({.scale = 9, .edge_factor = 6, .seed = seed}).value();
  CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return CsrGraph::FromCoo(coo, options).value();
}

bool IsBijection(const Permutation& perm) {
  std::vector<uint8_t> seen(perm.size(), 0);
  for (vid_t p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = 1;
  }
  return true;
}

TEST(ReorderTest, DegreeOrderIsBijectionAndSorted) {
  auto g = TestGraph(81);
  auto perm = DegreeOrder(g);
  ASSERT_TRUE(IsBijection(perm));
  // New id 0 belongs to a max-degree vertex; ranks descend by degree.
  auto inverse = InvertPermutation(perm);
  for (vid_t rank = 1; rank < g.num_vertices(); ++rank) {
    EXPECT_GE(g.degree(inverse[rank - 1]), g.degree(inverse[rank]));
  }
}

TEST(ReorderTest, BfsOrderStartsAtSourceAndIsBijection) {
  auto g = TestGraph(82);
  auto perm = BfsOrder(g, 5);
  ASSERT_TRUE(IsBijection(perm));
  EXPECT_EQ(perm[5], 0u);
}

TEST(ReorderTest, BfsOrderRespectsLevels) {
  // Chain: BFS order from 0 must be the identity.
  GraphBuilder b;
  for (vid_t v = 0; v + 1 < 20; ++v) b.AddEdge(v, v + 1);
  auto g = b.Build().value();
  auto perm = BfsOrder(g, 0);
  for (vid_t v = 0; v < 20; ++v) EXPECT_EQ(perm[v], v);
}

TEST(ReorderTest, ApplyPermutationPreservesStructure) {
  auto coo = GenerateRmat({.scale = 8, .edge_factor = 5, .seed = 83}).value();
  AttachRandomWeights(&coo, 0.0, 1.0, 84);
  CsrBuildOptions options;
  options.remove_duplicates = true;
  auto g = CsrGraph::FromCoo(coo, options).value();
  auto perm = DegreeOrder(g);
  auto relabeled = ApplyPermutation(g, perm).value();
  EXPECT_EQ(relabeled.num_vertices(), g.num_vertices());
  EXPECT_EQ(relabeled.num_edges(), g.num_edges());
  // Degree multiset preserved.
  std::vector<vid_t> d1, d2;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    d1.push_back(g.degree(v));
    d2.push_back(relabeled.degree(v));
  }
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
  // Every edge maps: (u,v,w) in g iff (perm[u],perm[v],w) in relabeled.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto adj = g.neighbors(u);
    for (size_t i = 0; i < adj.size(); ++i) {
      auto new_adj = relabeled.neighbors(perm[u]);
      auto it = std::lower_bound(new_adj.begin(), new_adj.end(),
                                 perm[adj[i]]);
      ASSERT_TRUE(it != new_adj.end() && *it == perm[adj[i]]);
      size_t pos = static_cast<size_t>(it - new_adj.begin());
      EXPECT_EQ(relabeled.edge_weights(perm[u])[pos],
                g.edge_weights(u)[i]);
    }
  }
}

TEST(ReorderTest, RelabelingIsAlgorithmInvariant) {
  // Triangle count is label-independent: a permuted graph has the same
  // count (the data-layout study's correctness premise).
  auto g = TestGraph(85);
  uint64_t base = core::host_ref::TriangleCount(g);
  for (const auto& perm : {DegreeOrder(g), BfsOrder(g, 3)}) {
    auto relabeled = ApplyPermutation(g, perm).value();
    EXPECT_EQ(core::host_ref::TriangleCount(relabeled), base);
  }
}

TEST(ReorderTest, ApplyPermutationValidates) {
  auto g = TestGraph(86);
  Permutation short_perm(g.num_vertices() - 1);
  EXPECT_FALSE(ApplyPermutation(g, short_perm).ok());
  Permutation dup(g.num_vertices(), 0);  // all zeros: not a bijection
  EXPECT_FALSE(ApplyPermutation(g, dup).ok());
}

TEST(ReorderTest, InvertPermutationRoundTrips) {
  auto g = TestGraph(87);
  auto perm = DegreeOrder(g);
  auto inverse = InvertPermutation(perm);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(inverse[perm[v]], v);
  }
}

TEST(ReorderTest, DegreeOrderImprovesLocalityProxy) {
  // Sanity for the extension bench: after degree ordering, the hubs (most
  // referenced vertices) occupy the smallest ids, so the average
  // referenced id drops.
  auto g = TestGraph(88);
  auto relabeled = ApplyPermutation(g, DegreeOrder(g)).value();
  auto mean_ref = [](const CsrGraph& graph) {
    double sum = 0;
    for (vid_t v : graph.col_indices()) sum += v;
    return sum / static_cast<double>(graph.num_edges());
  };
  EXPECT_LT(mean_ref(relabeled), mean_ref(g));
}

}  // namespace
}  // namespace adgraph::graph
