// Tests of the src/serve/ job scheduler: registry dispatch, concurrent
// submission correctness (identical results to serial execution),
// backpressure, memory-aware admission control, and stats reporting.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include <cmath>
#include <limits>
#include <mutex>

#include "core/api.h"
#include "core/host_ref.h"
#include "core/residency.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "graph/generate.h"
#include "obs/registry.h"
#include "ooc/ooc_csr.h"
#include "prof/report.h"
#include "serve/admission.h"
#include "serve/graph_cache.h"
#include "serve/job.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::serve {
namespace {

using graph::CsrGraph;

/// Shared small test graph: symmetric, weighted R-MAT.
std::shared_ptr<const CsrGraph> TestGraph(uint32_t scale = 8,
                                          uint64_t seed = 42) {
  auto coo = graph::GenerateRmat({.scale = scale, .edge_factor = 8.0,
                                  .seed = seed}).value();
  graph::AttachRandomWeights(&coo, 0.1, 1.0, 7);
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  options.make_undirected = true;
  return std::make_shared<const CsrGraph>(
      CsrGraph::FromCoo(coo, options).value());
}

JobSpec BfsJob(std::shared_ptr<const CsrGraph> g, graph::vid_t source,
               std::string arch = "") {
  core::BfsOptions options;
  options.source = source;
  options.assume_symmetric = true;
  return {.graph = std::move(g), .params = options,
          .arch_preference = std::move(arch), .tag = "bfs"};
}

TEST(JobTest, AlgorithmNamesRoundTrip) {
  for (size_t i = 0; i < std::variant_size_v<JobParams>; ++i) {
    auto algo = static_cast<Algorithm>(i);
    auto parsed = ParseAlgorithm(AlgorithmName(algo));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, algo);
  }
  EXPECT_TRUE(ParseAlgorithm("quantum-pagerank").status().IsNotFound());
}

TEST(JobTest, SpecAlgorithmFollowsParamsAlternative) {
  auto g = TestGraph();
  EXPECT_EQ(BfsJob(g, 0).algorithm(), Algorithm::kBfs);
  JobSpec tc{.graph = g, .params = core::TcOptions{}};
  EXPECT_EQ(tc.algorithm(), Algorithm::kTriangleCount);
}

TEST(RegistryTest, EstimatesCoverTheGraphUpload) {
  auto g = TestGraph();
  for (const AlgorithmHandler& handler : AlgorithmRegistry()) {
    JobSpec spec{.graph = g, .params = {}};
    // Give every handler its own params alternative.
    switch (handler.algo) {
      case Algorithm::kBfs: spec.params = core::BfsOptions{}; break;
      case Algorithm::kSssp: spec.params = core::SsspOptions{}; break;
      case Algorithm::kPageRank: spec.params = core::PageRankOptions{}; break;
      case Algorithm::kTriangleCount: spec.params = core::TcOptions{}; break;
      case Algorithm::kConnectedComponents:
        spec.params = core::CcOptions{}; break;
      case Algorithm::kKCore: spec.params = core::KCoreOptions{}; break;
      case Algorithm::kJaccard: spec.params = core::JaccardOptions{}; break;
      case Algorithm::kWidestPath:
        spec.params = core::WidestPathOptions{}; break;
      case Algorithm::kColoring: spec.params = core::ColoringOptions{}; break;
      case Algorithm::kEsbv: spec.params = core::EsbvOptions{}; break;
      case Algorithm::kBetweenness: spec.params = core::BcOptions{}; break;
    }
    EXPECT_GE(EstimateJobDeviceBytes(spec), g->DeviceFootprintBytes() / 2)
        << handler.name;
  }
}

TEST(RegistryTest, EsbvRequiresWeights) {
  auto coo = graph::GenerateRmat({.scale = 6, .edge_factor = 4.0, .seed = 1})
                 .value();
  auto unweighted = std::make_shared<const CsrGraph>(
      CsrGraph::FromCoo(coo, {}).value());
  JobSpec spec{.graph = unweighted, .params = core::EsbvOptions{}};
  EXPECT_TRUE(ValidateJobSpec(spec).IsInvalidArgument());
}

TEST(SchedulerTest, SubmitValidation) {
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();
  EXPECT_TRUE(scheduler
                  ->Submit({.graph = nullptr, .params = core::BfsOptions{}})
                  .status()
                  .IsInvalidArgument());
  auto g = TestGraph();
  EXPECT_TRUE(scheduler->Submit(BfsJob(g, 0, "H100")).status().IsNotFound());
}

TEST(SchedulerTest, SingleJobMatchesDirectExecution) {
  auto g = TestGraph();
  auto scheduler = Scheduler::Create({}).value();  // default 4-GPU pool
  auto future = scheduler->Submit(BfsJob(g, 0, "A100")).value();
  JobOutcome outcome = future.get();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.device_name, "A100");
  EXPECT_GT(outcome.modeled_ms, 0);
  EXPECT_GT(outcome.profile.num_kernels, 0u);

  const auto& result = std::get<core::BfsResult>(outcome.payload);
  auto expected = core::host_ref::BfsLevels(*g, 0);
  EXPECT_EQ(result.levels, expected);

  vgpu::Device direct(vgpu::A100Config());
  core::BfsOptions bfs_options;
  bfs_options.source = 0;
  bfs_options.assume_symmetric = true;
  auto direct_result = core::RunBfs(&direct, *g, bfs_options).value();
  EXPECT_EQ(FingerprintPayload(outcome.payload),
            FingerprintPayload(JobPayload(std::move(direct_result))));
}

// The headline concurrency test: N submitter threads race mixed algorithm
// jobs into a multi-worker pool; every outcome must be byte-identical to a
// serial run of the same job on the same architecture.
TEST(SchedulerTest, BetweennessJobRunsThroughTheEngine) {
  auto g = TestGraph(7);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();
  JobSpec spec{.graph = g, .params = core::BcOptions{.source = 0}};
  ASSERT_EQ(spec.algorithm(), Algorithm::kBetweenness);
  auto submitted = scheduler->Submit(std::move(spec));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  JobOutcome outcome = submitted->get();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  const auto& bc = std::get<core::BcResult>(outcome.payload);
  EXPECT_EQ(bc.centrality.size(), g->num_vertices());
  EXPECT_EQ(bc.sigma.size(), g->num_vertices());
  EXPECT_GT(bc.depth, 0u);
  // Fingerprinting must understand the new payload alternative.
  EXPECT_NE(FingerprintPayload(outcome.payload), 0u);
  scheduler->Shutdown();
}

TEST(SchedulerTest, ConcurrentSubmissionMatchesSerial) {
  auto g = TestGraph(8);
  // Two identical A100s: any worker that picks a job produces the same
  // bits, so assignment nondeterminism cannot leak into results.
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}},
                     {.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 8;  // small: exercises blocking backpressure too
  auto scheduler = Scheduler::Create(std::move(options)).value();

  auto make_job = [&g](int i) -> JobSpec {
    switch (i % 4) {
      case 0: return BfsJob(g, static_cast<graph::vid_t>(i) %
                                   g->num_vertices());
      case 1: {
        core::TcOptions tc;
        return {.graph = g, .params = tc};
      }
      case 2: {
        core::PageRankOptions pr;
        pr.max_iterations = 10;
        return {.graph = g, .params = pr};
      }
      default: {
        core::EsbvOptions esbv;
        esbv.vertices = core::SelectPseudoCluster(g->num_vertices(), 0.4, 3);
        return {.graph = g, .params = esbv};
      }
    }
  };

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 6;
  std::vector<std::future<JobOutcome>> futures(kThreads * kJobsPerThread);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        int i = t * kJobsPerThread + j;
        auto submitted = scheduler->Submit(make_job(i));
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        futures[static_cast<size_t>(i)] = std::move(submitted).value();
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  // Serial reference on a single fresh A100.
  vgpu::Device serial_device(vgpu::A100Config());
  for (int i = 0; i < kThreads * kJobsPerThread; ++i) {
    JobOutcome outcome = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(outcome.status.ok())
        << "job " << i << ": " << outcome.status.ToString();
    JobSpec spec = make_job(i);
    auto serial =
        GetHandler(spec.algorithm()).run(&serial_device, spec, nullptr);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(FingerprintPayload(outcome.payload),
              FingerprintPayload(*serial))
        << "job " << i << " (" << AlgorithmName(spec.algorithm()) << ")";
    serial_device.ResetCounters();
  }

  scheduler->Drain();
  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_submitted,
            static_cast<uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(stats.jobs_completed,
            static_cast<uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(stats.jobs_queued, 0u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  uint64_t per_device = 0;
  for (const auto& d : stats.devices) per_device += d.jobs_completed;
  EXPECT_EQ(per_device, stats.jobs_completed);
}

TEST(SchedulerTest, RejectPolicyRefusesWhenQueueFull) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 1;
  options.overflow = Scheduler::OverflowPolicy::kReject;
  // Slow the worker down so the queue actually fills.
  options.device_occupancy_floor_ms = 30;
  auto scheduler = Scheduler::Create(std::move(options)).value();

  int accepted = 0;
  int rejected = 0;
  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 12; ++i) {
    auto submitted = scheduler->Submit(BfsJob(g, 0));
    if (submitted.ok()) {
      futures.push_back(std::move(submitted).value());
      ++accepted;
    } else {
      EXPECT_TRUE(submitted.status().IsResourceExhausted());
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "queue of 1 should have overflowed";
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_rejected_backpressure,
            static_cast<uint64_t>(rejected));
  EXPECT_EQ(stats.jobs_completed, static_cast<uint64_t>(accepted));
}

TEST(SchedulerTest, BlockPolicyEventuallyAcceptsEverything) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 1;
  options.overflow = Scheduler::OverflowPolicy::kBlock;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(scheduler->Submit(BfsJob(g, 0)).value());
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  EXPECT_EQ(scheduler->Snapshot().jobs_rejected_backpressure, 0u);
}

// The paper's twitter-mpi ESBV OOM, served politely: the job is *admitted*
// into the queue, then rejected by admission control on the device with
// kResourceExhausted — and the pool keeps serving afterwards.
TEST(SchedulerTest, OversizedEsbvRejectedGracefully) {
  auto g = TestGraph(10);
  uint64_t upload = g->DeviceFootprintBytes();
  JobSpec esbv_spec{.graph = g, .params = core::EsbvOptions{}};
  std::get<core::EsbvOptions>(esbv_spec.params).vertices =
      core::SelectPseudoCluster(g->num_vertices(), 0.6, 7);
  uint64_t esbv_estimate = EstimateJobDeviceBytes(esbv_spec);
  ASSERT_GT(esbv_estimate, upload);

  // Scale the device so the graph (and BFS) fit but ESBV's extraction
  // working set does not: capacity halfway between.
  uint64_t target_capacity = upload + (esbv_estimate - upload) / 2;
  Scheduler::Options options;
  Scheduler::DeviceSlot slot;
  slot.arch = &vgpu::A100Config();
  slot.options.memory_scale =
      static_cast<double>(vgpu::A100Config().dram_capacity_bytes) /
      static_cast<double>(target_capacity);
  options.devices = {slot};
  auto scheduler = Scheduler::Create(std::move(options)).value();

  // Admitted (Submit succeeds)...
  auto esbv_future = scheduler->Submit(std::move(esbv_spec)).value();
  JobOutcome esbv_outcome = esbv_future.get();
  // ...then rejected with kResourceExhausted, not a crash and not plain OOM.
  EXPECT_TRUE(esbv_outcome.status.IsResourceExhausted())
      << esbv_outcome.status.ToString();
  EXPECT_GT(esbv_outcome.estimated_bytes, target_capacity);

  // The pool keeps serving: a BFS on the same graph still completes.
  JobOutcome bfs_outcome = scheduler->Submit(BfsJob(g, 0)).value().get();
  ASSERT_TRUE(bfs_outcome.status.ok()) << bfs_outcome.status.ToString();
  EXPECT_EQ(std::get<core::BfsResult>(bfs_outcome.payload).levels,
            core::host_ref::BfsLevels(*g, 0));

  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_rejected_admission, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.devices.size(), 1u);
  EXPECT_EQ(stats.devices[0].jobs_rejected, 1u);
}

TEST(AdmissionTest, DecisionFieldsAreCoherent) {
  auto g = TestGraph(8);
  vgpu::Device device(vgpu::A100Config());
  JobSpec spec = BfsJob(g, 0);
  AdmissionDecision decision = CheckAdmission(device, spec);
  EXPECT_TRUE(decision.admit);
  EXPECT_EQ(decision.capacity_bytes, device.memory_capacity_bytes());
  EXPECT_GT(decision.estimated_bytes, 0u);

  vgpu::Device::Options tiny;
  tiny.memory_scale = 1e7;  // ~8 KB device
  vgpu::Device small(vgpu::A100Config(), tiny);
  AdmissionDecision refusal = CheckAdmission(small, spec);
  EXPECT_FALSE(refusal.admit);
  EXPECT_TRUE(AdmissionError(refusal).IsResourceExhausted());
  EXPECT_FALSE(refusal.reason.empty());
}

TEST(SchedulerTest, ShutdownFailsQueuedJobsButFinishesRunning) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 16;
  options.device_occupancy_floor_ms = 20;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(scheduler->Submit(BfsJob(g, 0)).value());
  }
  scheduler->Shutdown();
  int ok = 0;
  int failed = 0;
  for (auto& f : futures) {
    JobOutcome outcome = f.get();  // every future resolves
    outcome.status.ok() ? ++ok : ++failed;
  }
  EXPECT_EQ(ok + failed, 6);
  // Submitting after shutdown fails cleanly.
  EXPECT_FALSE(scheduler->Submit(BfsJob(g, 0)).ok());
}

TEST(SchedulerTest, DeadlineShedsQueuedJobBeforeExecution) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 16;
  options.device_occupancy_floor_ms = 50;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  // The blocker occupies the only worker for >= 50 ms; by the time the
  // doomed job is dequeued its queue wait has blown its 1 ms budget.
  auto blocker = scheduler->Submit(BfsJob(g, 0)).value();
  JobSpec doomed = BfsJob(g, 1);
  doomed.deadline_ms = 1.0;
  doomed.tenant = "latency-sensitive";
  auto shed = scheduler->Submit(doomed).value();
  JobOutcome outcome = shed.get();
  EXPECT_TRUE(outcome.status.IsDeadlineExceeded()) << outcome.status.ToString();
  EXPECT_TRUE(blocker.get().status.ok());
  scheduler->Drain();
  auto stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_shed_deadline, 1u);
  ASSERT_EQ(stats.tenants.size(), 2u);  // "" (anonymous) + latency-sensitive
  bool found = false;
  for (const auto& tenant : stats.tenants) {
    if (tenant.name == "latency-sensitive") {
      EXPECT_EQ(tenant.jobs_shed_deadline, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SchedulerTest, StrictPriorityClassesDequeueLowClassFirst) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 16;
  options.device_occupancy_floor_ms = 30;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  auto blocker = scheduler->Submit(BfsJob(g, 0)).value();
  // Submitted in *reverse* priority order while the worker is busy: the
  // class-0 job must still run before the class-1 job.
  JobSpec low = BfsJob(g, 1);
  low.priority = 1;
  low.tenant = "batch";
  auto low_future = scheduler->Submit(low).value();
  JobSpec high = BfsJob(g, 2);
  high.priority = 0;
  high.tenant = "interactive";
  auto high_future = scheduler->Submit(high).value();
  JobOutcome high_outcome = high_future.get();
  JobOutcome low_outcome = low_future.get();
  ASSERT_TRUE(high_outcome.status.ok());
  ASSERT_TRUE(low_outcome.status.ok());
  EXPECT_LT(high_outcome.queue_wall_ms, low_outcome.queue_wall_ms);
  (void)blocker.get();
}

TEST(SchedulerTest, WeightedFairShareFavorsHeavierTenant) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 32;
  options.device_occupancy_floor_ms = 10;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  auto blocker = scheduler->Submit(BfsJob(g, 0)).value();
  // Equal backlogs; "heavy" holds 3x the fair-share weight, so its jobs
  // should dequeue earlier on average (start-time fair queuing).
  std::vector<std::future<JobOutcome>> heavy;
  std::vector<std::future<JobOutcome>> light;
  for (int i = 0; i < 4; ++i) {
    JobSpec h = BfsJob(g, 1 + i);
    h.tenant = "heavy";
    h.fair_weight = 3.0;
    heavy.push_back(scheduler->Submit(h).value());
    JobSpec l = BfsJob(g, 10 + i);
    l.tenant = "light";
    l.fair_weight = 1.0;
    light.push_back(scheduler->Submit(l).value());
  }
  double heavy_wait = 0;
  double light_wait = 0;
  for (auto& f : heavy) heavy_wait += f.get().queue_wall_ms;
  for (auto& f : light) light_wait += f.get().queue_wall_ms;
  (void)blocker.get();
  EXPECT_LT(heavy_wait, light_wait);
}

// Regression: a Snapshot() taken immediately after Create() used to divide
// by a near-zero uptime, producing absurd jobs_per_sec / utilization values.
TEST(ServerStatsTest, SnapshotImmediatelyAfterCreateHasSaneRates) {
  auto scheduler = Scheduler::Create({}).value();
  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_TRUE(std::isfinite(stats.jobs_per_sec));
  EXPECT_DOUBLE_EQ(stats.jobs_per_sec, 0.0) << "no jobs have completed";
  for (const auto& d : stats.devices) {
    EXPECT_TRUE(std::isfinite(d.utilization)) << d.name;
    EXPECT_GE(d.utilization, 0.0) << d.name;
    EXPECT_LE(d.utilization, 1.0) << d.name;
  }
}

// ---------------------------------------------------------- graph cache

TEST(GraphCacheTest, RepeatAcquireHitsAndSkipsTransfer) {
  vgpu::Device device(vgpu::A100Config());
  GraphCache cache(&device, {});
  auto g = TestGraph(7);

  auto first = cache.Acquire(&device, *g, core::GraphVariant::kAsIs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->from_cache());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().resident_bytes, 0u);
  const double transfer_after_miss = device.transfer_ms();
  EXPECT_GT(transfer_after_miss, 0) << "the miss models a PCIe upload";

  auto second = cache.Acquire(&device, *g, core::GraphVariant::kAsIs);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(device.transfer_ms(), transfer_after_miss)
      << "a hit must not re-upload";
  EXPECT_EQ(&**first, &**second) << "both handles pin the same DeviceCsr";

  // A different *variant* of the same graph is a distinct entry.
  auto sym = cache.Acquire(&device, *g, core::GraphVariant::kSymSimple);
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.num_entries(), 2u);
}

TEST(GraphCacheTest, ContentKeyedAcrossGraphObjects) {
  vgpu::Device device(vgpu::A100Config());
  GraphCache cache(&device, {});
  auto a = TestGraph(7);
  auto b = TestGraph(7);  // distinct object, identical content
  ASSERT_NE(a.get(), b.get());
  { auto h = cache.Acquire(&device, *a, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  auto h = cache.Acquire(&device, *b, core::GraphVariant::kAsIs);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(cache.stats().hits, 1u) << "residency is content-addressed";
}

TEST(GraphCacheTest, EvictsLeastRecentlyUsedUnderBytePressure) {
  vgpu::Device device(vgpu::A100Config());
  auto a = TestGraph(7, 1);
  auto b = TestGraph(7, 2);
  auto c = TestGraph(7, 3);

  // Measure one upload, then budget the cache for two entries at most.
  uint64_t one_entry;
  {
    GraphCache probe(&device, {});
    auto h = probe.Acquire(&device, *a, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok());
    one_entry = probe.stats().resident_bytes;
  }
  GraphCache::Options options;
  options.capacity_bytes = one_entry * 2 + one_entry / 2;
  GraphCache cache(&device, options);

  { auto h = cache.Acquire(&device, *a, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  { auto h = cache.Acquire(&device, *b, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  // Touch `a` so `b` becomes the LRU victim.
  { auto h = cache.Acquire(&device, *a, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(cache.num_entries(), 2u);

  { auto h = cache.Acquire(&device, *c, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(cache.num_entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_GT(cache.stats().bytes_evicted, 0u);
  EXPECT_GT(cache.ResidentBytesFor(*a, core::GraphVariant::kAsIs), 0u)
      << "recently used entry survives";
  EXPECT_EQ(cache.ResidentBytesFor(*b, core::GraphVariant::kAsIs), 0u)
      << "LRU entry was evicted";
}

TEST(GraphCacheTest, PinnedEntriesAreNeverEvicted) {
  vgpu::Device device(vgpu::A100Config());
  GraphCache cache(&device, {});
  auto g = TestGraph(7);
  auto pin = cache.Acquire(&device, *g, core::GraphVariant::kAsIs);
  ASSERT_TRUE(pin.ok());

  const uint64_t used_while_pinned = device.memory_used_bytes();
  EXPECT_EQ(cache.EvictForSpace(std::numeric_limits<uint64_t>::max()), 0u)
      << "a pinned entry must survive even an evict-everything request";
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_EQ(device.memory_used_bytes(), used_while_pinned);

  pin = core::ResidentCsr();  // drop the handle: unpin
  EXPECT_GT(cache.EvictForSpace(std::numeric_limits<uint64_t>::max()), 0u);
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_LT(device.memory_used_bytes(), used_while_pinned)
      << "eviction frees the device buffers";
}

TEST(GraphCacheTest, AdmissionChargesOnlyNonResidentBytes) {
  vgpu::Device device(vgpu::A100Config());
  GraphCache cache(&device, {});
  auto g = TestGraph(8);
  JobSpec spec = BfsJob(g, 0);

  AdmissionDecision cold = CheckAdmission(device, spec, 1.0, &cache);
  EXPECT_TRUE(cold.admit);
  EXPECT_EQ(cold.resident_bytes, 0u);
  EXPECT_EQ(cold.charged_bytes, cold.estimated_bytes);

  { auto h = cache.Acquire(&device, *g, GraphVariantFor(spec));
    ASSERT_TRUE(h.ok()); }
  AdmissionDecision warm = CheckAdmission(device, spec, 1.0, &cache);
  EXPECT_TRUE(warm.admit);
  EXPECT_GT(warm.resident_bytes, 0u);
  EXPECT_EQ(warm.charged_bytes, warm.estimated_bytes - warm.resident_bytes);
}

TEST(GraphCacheTest, AdmissionEvictsUnpinnedEntriesToAdmit) {
  auto a = TestGraph(8, 5);
  auto b = TestGraph(8, 6);
  JobSpec spec_b = BfsJob(b, 0);
  const uint64_t estimate = EstimateJobDeviceBytes(spec_b);

  // Device with room for ~1.8 jobs: once `a` is cached, `b` only fits if
  // admission control reclaims the cached copy.
  vgpu::Device::Options dopt;
  dopt.memory_scale =
      static_cast<double>(vgpu::A100Config().dram_capacity_bytes) /
      (1.8 * static_cast<double>(estimate));
  vgpu::Device device(vgpu::A100Config(), dopt);
  GraphCache::Options copt;
  copt.capacity_fraction = 1.0;
  GraphCache cache(&device, copt);

  { auto h = cache.Acquire(&device, *a, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()) << h.status().ToString(); }
  ASSERT_LT(device.memory_free_bytes(), estimate)
      << "precondition: b does not fit beside the cached a";

  AdmissionDecision decision = CheckAdmission(device, spec_b, 1.0, &cache);
  EXPECT_TRUE(decision.admit) << decision.reason;
  EXPECT_GT(decision.evicted_bytes, 0u);
  EXPECT_EQ(cache.ResidentBytesFor(*a, core::GraphVariant::kAsIs), 0u);
  EXPECT_GE(device.memory_free_bytes(), estimate);
}

TEST(SchedulerTest, RepeatedGraphServedFromCache) {
  auto g = TestGraph(8);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();

  std::vector<JobOutcome> outcomes;
  for (int i = 0; i < 4; ++i) {
    outcomes.push_back(scheduler->Submit(BfsJob(g, i)).value().get());
  }
  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.status.ok()) << o.status.ToString();
  }
  EXPECT_FALSE(outcomes[0].cache_hit);
  EXPECT_GT(outcomes[0].modeled_transfer_ms, 0);
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(outcomes[i].cache_hit) << "job " << i;
    // Hits still download their result (D2H), but skip the graph upload.
    EXPECT_LT(outcomes[i].modeled_transfer_ms,
              outcomes[0].modeled_transfer_ms / 2)
        << "job " << i;
  }

  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_GT(stats.cache_resident_bytes, 0u);
  ASSERT_EQ(stats.devices.size(), 1u);
  EXPECT_EQ(stats.devices[0].cache_hits, 3u);

  std::string report = prof::FormatServerStats(stats);
  EXPECT_NE(report.find("graph cache"), std::string::npos);
}

TEST(SchedulerTest, CacheOnAndOffProduceIdenticalResults) {
  auto g = TestGraph(8);
  auto jobs = [&]() -> std::vector<JobSpec> {
    core::PageRankOptions pr;
    pr.max_iterations = 10;
    core::TcOptions tc;
    std::vector<JobSpec> specs;
    for (int repeat = 0; repeat < 2; ++repeat) {  // repeats exercise hits
      specs.push_back(BfsJob(g, 3));
      specs.push_back({.graph = g, .params = pr});
      specs.push_back({.graph = g, .params = tc});
      specs.push_back({.graph = g, .params = core::CcOptions{}});
    }
    return specs;
  }();

  auto run_all = [&](bool enabled) {
    Scheduler::Options options;
    options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
    options.cache.enabled = enabled;
    auto scheduler = Scheduler::Create(std::move(options)).value();
    std::vector<uint64_t> fingerprints;
    for (const JobSpec& spec : jobs) {
      JobOutcome outcome = scheduler->Submit(spec).value().get();
      EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
      fingerprints.push_back(FingerprintPayload(outcome.payload));
    }
    prof::ServerStats stats = scheduler->Snapshot();
    return std::make_pair(std::move(fingerprints), stats);
  };

  auto [on_fp, on_stats] = run_all(true);
  auto [off_fp, off_stats] = run_all(false);
  EXPECT_EQ(on_fp, off_fp) << "results must be byte-identical cache on/off";
  EXPECT_GT(on_stats.cache_hits, 0u);
  EXPECT_EQ(off_stats.cache_hits, 0u);
  EXPECT_EQ(off_stats.cache_misses, 0u);
  EXPECT_EQ(off_stats.cache_resident_bytes, 0u);
}

// Memory pressure end to end: a device sized for ~1.8 working sets serving
// two alternating graphs must keep answering correctly, evicting between
// jobs instead of dying of OOM or rejecting everything.
TEST(SchedulerTest, CacheEvictionUnderMemoryPressureStaysCorrect) {
  auto a = TestGraph(8, 11);
  auto b = TestGraph(8, 12);
  const uint64_t estimate = EstimateJobDeviceBytes(BfsJob(a, 0));

  Scheduler::Options options;
  Scheduler::DeviceSlot slot;
  slot.arch = &vgpu::A100Config();
  slot.options.memory_scale =
      static_cast<double>(vgpu::A100Config().dram_capacity_bytes) /
      (1.8 * static_cast<double>(estimate));
  options.devices = {slot};
  options.cache.capacity_fraction = 1.0;
  auto scheduler = Scheduler::Create(std::move(options)).value();

  for (int i = 0; i < 6; ++i) {
    const auto& g = (i % 2 == 0) ? a : b;
    JobOutcome outcome = scheduler->Submit(BfsJob(g, 0)).value().get();
    ASSERT_TRUE(outcome.status.ok()) << "job " << i << ": "
                                     << outcome.status.ToString();
    EXPECT_EQ(std::get<core::BfsResult>(outcome.payload).levels,
              core::host_ref::BfsLevels(*g, 0))
        << "job " << i;
  }

  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_completed, 6u);
  EXPECT_GT(stats.cache_evictions, 0u)
      << "both graphs cannot stay resident on this device";
  EXPECT_GT(stats.cache_bytes_evicted, 0u);
}

TEST(SchedulerTest, CacheSpansAppearOnDeviceTrack) {
  auto g = TestGraph(7);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.trace.enabled = true;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  scheduler->Submit(BfsJob(g, 0)).value().get();
  scheduler->Submit(BfsJob(g, 1)).value().get();
  scheduler->Drain();
  bool saw_miss = false;
  bool saw_hit = false;
  for (const auto& event : scheduler->TraceEvents()) {
    if (event.name == "cache.miss") saw_miss = true;
    if (event.name == "cache.hit") saw_hit = true;
  }
  EXPECT_TRUE(saw_miss);
  EXPECT_TRUE(saw_hit);
}

// Regression: Submit racing Shutdown used to touch freed queue state; now
// every loser of the race gets a deterministic kUnavailable (from Submit
// itself or as the queued job's outcome) and nothing crashes.  Run under
// TSan in CI.
TEST(SchedulerTest, SubmitRacingShutdownGetsUnavailable) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}},
                     {.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 4;
  options.overflow =
      Scheduler::OverflowPolicy::kReject;  // submitters must not block
  auto scheduler = Scheduler::Create(std::move(options)).value();

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 8;
  std::vector<std::thread> submitters;
  std::mutex mu;
  std::vector<Result<std::future<JobOutcome>>> submitted;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        auto result = scheduler->Submit(
            BfsJob(g, static_cast<graph::vid_t>((t * kJobsPerThread + i) %
                                                g->num_vertices())));
        std::lock_guard<std::mutex> lock(mu);
        submitted.push_back(std::move(result));
      }
    });
  }
  scheduler->Shutdown();  // races the submitters by design
  for (auto& thread : submitters) thread.join();

  ASSERT_EQ(submitted.size(),
            static_cast<size_t>(kThreads * kJobsPerThread));
  for (auto& result : submitted) {
    if (!result.ok()) {
      // Lost the race before enqueueing (or bounced off the full queue).
      EXPECT_TRUE(result.status().code() == StatusCode::kUnavailable ||
                  result.status().code() == StatusCode::kResourceExhausted)
          << result.status().ToString();
      continue;
    }
    JobOutcome outcome = result->get();  // accepted futures all resolve
    if (!outcome.status.ok()) {
      EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable)
          << outcome.status.ToString();
    }
  }
}

TEST(SchedulerTest, CreateRejectsPathologicalArch) {
  static vgpu::ArchConfig broken = vgpu::A100Config();
  broken.num_sms = 0;
  Scheduler::Options options;
  options.devices = {{.arch = &broken, .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options));
  ASSERT_FALSE(scheduler.ok());
  EXPECT_EQ(scheduler.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchedulerTest, GangJobMatchesSingleDeviceAndReportsExchange) {
  auto g = TestGraph(8);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}},
                     {.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();

  // Gangs only support top-down traversal, so the single-device baseline
  // must run top-down too for the payloads to be byte-identical.  Start at
  // the biggest hub so the traversal actually crosses the shard boundary
  // (an unlucky low-degree source could be isolated).
  graph::vid_t source = 0;
  for (graph::vid_t v = 0; v < g->num_vertices(); ++v) {
    if (g->degree(v) > g->degree(source)) source = v;
  }
  core::BfsOptions bfs;
  bfs.source = source;
  bfs.direction_optimizing = false;
  JobSpec single{.graph = g, .params = bfs, .tag = "bfs-single"};
  JobOutcome single_outcome = scheduler->Submit(single).value().get();
  ASSERT_TRUE(single_outcome.status.ok())
      << single_outcome.status.ToString();

  JobSpec gang{.graph = g, .params = bfs, .tag = "bfs-gang"};
  gang.gang_devices = 2;
  JobOutcome gang_outcome = scheduler->Submit(gang).value().get();
  ASSERT_TRUE(gang_outcome.status.ok()) << gang_outcome.status.ToString();
  scheduler->Drain();

  EXPECT_EQ(gang_outcome.gang_devices, 2u);
  EXPECT_GT(gang_outcome.exchange_bytes, 0u);
  EXPECT_GT(gang_outcome.exchange_rounds, 0u);
  EXPECT_EQ(FingerprintPayload(gang_outcome.payload),
            FingerprintPayload(single_outcome.payload))
      << "partitioned gang BFS must match the single-device payload";

  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.gang_jobs_completed, 1u);
  EXPECT_EQ(stats.exchange_bytes_total, gang_outcome.exchange_bytes);
  EXPECT_EQ(stats.exchange_rounds_total, gang_outcome.exchange_rounds);
}

TEST(SchedulerTest, GangLargerThanPoolRejected) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();
  core::BfsOptions bfs;
  bfs.direction_optimizing = false;
  JobSpec gang{.graph = g, .params = bfs};
  gang.gang_devices = 4;
  auto result = scheduler->Submit(gang);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------- out-of-core streamed serving

/// Sum of every series of one counter family in `registry`.
double CounterTotal(const obs::Registry& registry, const std::string& name) {
  double total = 0;
  for (const auto& family : registry.Scrape()) {
    if (family.name != name) continue;
    for (const auto& series : family.series) total += series.value;
  }
  return total;
}

/// A device slot whose capacity is exactly `budget` bytes
/// (Device::Options::memory_scale *divides* the arch capacity).
Scheduler::DeviceSlot BudgetedSlot(uint64_t budget) {
  Scheduler::DeviceSlot slot;
  slot.arch = &vgpu::A100Config();
  slot.options.memory_scale =
      static_cast<double>(vgpu::A100Config().dram_capacity_bytes) /
      static_cast<double>(budget);
  return slot;
}

/// A PageRank spec opted into the out-of-core tier, plus the device budget
/// that makes the whole-graph working set a hard reject while the streamed
/// working set still fits.
struct StreamedFixture {
  JobSpec spec;
  uint64_t full_bytes = 0;
  uint64_t budget = 0;
};

StreamedFixture OverBudgetPageRank(std::shared_ptr<const CsrGraph> g) {
  StreamedFixture f;
  core::PageRankOptions pr;
  pr.max_iterations = 12;
  f.spec = {.graph = std::move(g), .params = pr, .tag = "pr-ooc"};
  f.spec.allow_streamed = true;
  f.spec.ooc_shard_bytes = 4 << 10;
  f.full_bytes = EstimateJobDeviceBytes(f.spec);
  const uint64_t streamed =
      ooc::EstimateStreamedBytes(Algorithm::kPageRank,
                                 f.spec.graph->num_vertices(),
                                 f.spec.graph->has_weights(),
                                 f.spec.ooc_shard_bytes)
          .value();
  f.budget = std::max<uint64_t>(f.full_bytes * 3 / 5,
                                streamed + streamed / 4);
  return f;
}

// Satellite regression: with every resident entry pinned by an in-flight
// job, the evict-to-admit loop used to retry the upload forever (evict
// frees 0 bytes -> OOM -> evict -> ...).  It must now give up after one
// bounded pass with a deterministic kResourceExhausted.
TEST(GraphCacheTest, AllPinnedCacheFailsAcquireDeterministically) {
  auto a = TestGraph(8, 21);
  auto b = TestGraph(8, 22);
  // Room for ~1.3 uploads: `a` fits, `b` only fits if `a` is evicted.
  vgpu::Device::Options dopt;
  dopt.memory_scale =
      static_cast<double>(vgpu::A100Config().dram_capacity_bytes) /
      (1.3 * static_cast<double>(a->DeviceFootprintBytes()));
  vgpu::Device device(vgpu::A100Config(), dopt);
  GraphCache::Options copt;
  copt.capacity_fraction = 1.0;
  GraphCache cache(&device, copt);

  auto pin = cache.Acquire(&device, *a, core::GraphVariant::kAsIs);
  ASSERT_TRUE(pin.ok()) << pin.status().ToString();

  auto blocked = cache.Acquire(&device, *b, core::GraphVariant::kAsIs);
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsResourceExhausted())
      << blocked.status().ToString();
  EXPECT_NE(blocked.status().message().find("pinned"), std::string::npos)
      << blocked.status().ToString();

  // Dropping the pin turns the same acquire into a successful evict-to-fit.
  pin = core::ResidentCsr();
  auto retry = cache.Acquire(&device, *b, core::GraphVariant::kAsIs);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(GraphCacheTest, EmptyCacheOnTinyDeviceFailsAcquireDeterministically) {
  auto g = TestGraph(8, 23);
  vgpu::Device::Options dopt;
  dopt.memory_scale =
      static_cast<double>(vgpu::A100Config().dram_capacity_bytes) /
      (0.5 * static_cast<double>(g->DeviceFootprintBytes()));
  vgpu::Device device(vgpu::A100Config(), dopt);
  GraphCache cache(&device, {});
  auto blocked = cache.Acquire(&device, *g, core::GraphVariant::kAsIs);
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsResourceExhausted())
      << blocked.status().ToString();
  EXPECT_NE(blocked.status().message().find("no cached entries"),
            std::string::npos)
      << blocked.status().ToString();
}

TEST(AdmissionTest, StreamedTierAdmitsOverBudgetJob) {
  StreamedFixture f = OverBudgetPageRank(TestGraph(8, 24));
  vgpu::Device device(*BudgetedSlot(f.budget).arch,
                      BudgetedSlot(f.budget).options);

  JobSpec whole = f.spec;
  whole.allow_streamed = false;
  AdmissionDecision rejected = CheckAdmission(device, whole, 1.0, nullptr);
  ASSERT_FALSE(rejected.admit) << "budget must be below the whole-graph set";
  EXPECT_FALSE(rejected.reason.empty());

  AdmissionDecision admitted = CheckAdmission(device, f.spec, 1.0, nullptr);
  EXPECT_TRUE(admitted.admit) << admitted.reason;
  EXPECT_TRUE(admitted.streamed);
  EXPECT_GT(admitted.streamed_bytes, 0u);
  EXPECT_EQ(admitted.charged_bytes, admitted.streamed_bytes);
  EXPECT_LT(admitted.charged_bytes, admitted.estimated_bytes)
      << "the streamed tier must be charged less than the whole graph";
}

TEST(SchedulerTest, OverBudgetJobStreamsWhenAllowedAndMatchesInMemory) {
  auto g = TestGraph(8, 25);
  StreamedFixture f = OverBudgetPageRank(g);
  Scheduler::Options options;
  options.devices = {BudgetedSlot(f.budget)};
  auto scheduler = Scheduler::Create(std::move(options)).value();

  // Without the opt-in the whole-graph working set is a hard reject.
  JobSpec whole = f.spec;
  whole.allow_streamed = false;
  JobOutcome rejected = scheduler->Submit(whole).value().get();
  ASSERT_TRUE(rejected.status.IsResourceExhausted())
      << rejected.status.ToString();
  EXPECT_FALSE(rejected.streamed);

  // With it, the same job lands in the streamed tier...
  JobOutcome outcome = scheduler->Submit(f.spec).value().get();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_TRUE(outcome.streamed);
  EXPECT_GT(outcome.ooc_shards, 1u);
  EXPECT_GT(outcome.ooc_staged_bytes, 0u);
  EXPECT_GT(outcome.ooc_overlap_speedup, 1.0);

  // ...and its payload is byte-identical to an in-memory run.
  vgpu::Device roomy(vgpu::A100Config());
  auto direct =
      core::Run(&roomy, {core::Algo::kPageRank}, *g,
                std::get<core::PageRankOptions>(f.spec.params))
          .value();
  EXPECT_EQ(FingerprintPayload(outcome.payload), FingerprintPayload(direct));

  EXPECT_GE(CounterTotal(scheduler->metrics_registry(),
                         "adgraph_streamed_jobs_total"),
            1.0);
}

// Satellite 4 on the serve path: streamed jobs whose shard staging must
// carve device memory race cached whole-graph jobs whose entries are being
// evicted and re-uploaded.  Everything must complete with correct payloads
// regardless of arrival order.
TEST(SchedulerTest, StreamedJobsRaceCachedJobsUnderMemoryPressure) {
  auto big = TestGraph(8, 31);
  auto small = TestGraph(6, 32);
  StreamedFixture f = OverBudgetPageRank(big);
  JobSpec cached = BfsJob(small, 0);
  ASSERT_LE(EstimateJobDeviceBytes(cached), f.budget)
      << "the cached job must fit the budgeted device";

  Scheduler::Options options;
  options.devices = {BudgetedSlot(f.budget)};
  options.cache.capacity_fraction = 1.0;
  auto scheduler = Scheduler::Create(std::move(options)).value();

  constexpr int kThreads = 2;
  constexpr int kJobsPerThread = 8;
  std::mutex mu;
  std::vector<std::pair<bool, std::future<JobOutcome>>> submitted;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        const bool streamed = (t + i) % 2 == 0;
        auto result = scheduler->Submit(streamed ? f.spec : cached);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        submitted.emplace_back(streamed, std::move(*result));
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  vgpu::Device roomy(vgpu::A100Config());
  const uint64_t pr_fingerprint = FingerprintPayload(
      core::Run(&roomy, {core::Algo::kPageRank}, *big,
                std::get<core::PageRankOptions>(f.spec.params))
          .value());
  const auto bfs_levels = core::host_ref::BfsLevels(*small, 0);

  int streamed_jobs = 0;
  for (auto& [streamed, future] : submitted) {
    JobOutcome outcome = future.get();
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    if (streamed) {
      EXPECT_TRUE(outcome.streamed);
      EXPECT_EQ(FingerprintPayload(outcome.payload), pr_fingerprint);
      ++streamed_jobs;
    } else {
      EXPECT_FALSE(outcome.streamed);
      EXPECT_EQ(std::get<core::BfsResult>(outcome.payload).levels,
                bfs_levels);
    }
  }
  EXPECT_EQ(streamed_jobs, kThreads * kJobsPerThread / 2);
  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_completed,
            static_cast<uint64_t>(kThreads * kJobsPerThread));
}

// ------------------------------------------- incremental serving (§2.12)

TEST(SchedulerTest, WarmStartRunsIncrementallyAndFallbackIsObservable) {
  auto g = TestGraph(8, 41);
  auto delta = graph::DeltaGraph::Create(*g).value();
  std::mutex delta_mutex;
  core::BfsOptions bfs;
  bfs.source = 0;

  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();

  // Full run on the v0 snapshot seeds the warm-start payload.
  auto snap0 = std::make_shared<const CsrGraph>(delta.Materialize().value());
  JobOutcome base =
      scheduler->Submit({.graph = snap0, .params = bfs}).value().get();
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  EXPECT_FALSE(base.incremental_requested);
  auto previous = std::make_shared<const JobPayload>(base.payload);
  const uint64_t v0 = delta.version();

  // One inserted edge: well under the full-recompute threshold, and BFS
  // re-expansion handles inserts, so the delta path must actually run.
  graph::vid_t u = 0;
  graph::vid_t v = 1;
  bool inserted = false;
  for (; u < g->num_vertices() && !inserted; ++u) {
    for (v = 0; v < g->num_vertices(); ++v) {
      if (u == v) continue;
      auto n = g->neighbors(u);
      if (std::find(n.begin(), n.end(), v) != n.end()) continue;
      inserted = delta.AddEdge(u, v).value();
      break;
    }
  }
  ASSERT_TRUE(inserted);

  auto snap1 = std::make_shared<const CsrGraph>(delta.Materialize().value());
  JobSpec warm{.graph = snap1, .params = bfs};
  warm.warm_start = previous;
  warm.previous_version = v0;
  warm.delta = &delta;
  warm.delta_mutex = &delta_mutex;
  JobOutcome incremental = scheduler->Submit(warm).value().get();
  ASSERT_TRUE(incremental.status.ok()) << incremental.status.ToString();
  EXPECT_TRUE(incremental.incremental_requested);
  EXPECT_TRUE(incremental.incremental) << incremental.fallback_reason;
  EXPECT_TRUE(incremental.fallback_reason.empty())
      << incremental.fallback_reason;
  EXPECT_EQ(incremental.result_version, delta.version());

  // The incremental fixpoint agrees with a cold full recompute.
  vgpu::Device direct(vgpu::A100Config());
  auto full = core::RunBfs(&direct, *snap1, bfs).value();
  EXPECT_EQ(std::get<core::BfsResult>(incremental.payload).levels,
            full.levels);
  EXPECT_EQ(CounterTotal(scheduler->metrics_registry(),
                         "adgraph_incremental_fallbacks_total"),
            0.0);

  // A deletion forces the fall back to full recompute — and unlike the old
  // silent path, the outcome says so and the counter moves.
  auto live = snap1->neighbors(0);
  ASSERT_FALSE(live.empty());
  ASSERT_TRUE(delta.RemoveEdge(0, live[0]).value());
  auto previous2 = std::make_shared<const JobPayload>(incremental.payload);
  const uint64_t v1 = incremental.result_version;
  auto snap2 = std::make_shared<const CsrGraph>(delta.Materialize().value());
  JobSpec fell{.graph = snap2, .params = bfs};
  fell.warm_start = previous2;
  fell.previous_version = v1;
  fell.delta = &delta;
  fell.delta_mutex = &delta_mutex;
  JobOutcome fallback = scheduler->Submit(fell).value().get();
  ASSERT_TRUE(fallback.status.ok()) << fallback.status.ToString();
  EXPECT_TRUE(fallback.incremental_requested);
  EXPECT_FALSE(fallback.incremental);
  EXPECT_NE(fallback.fallback_reason.find("deletion"), std::string::npos)
      << fallback.fallback_reason;
  EXPECT_EQ(fallback.result_version, delta.version());
  auto full2 = core::RunBfs(&direct, *snap2, bfs).value();
  EXPECT_EQ(std::get<core::BfsResult>(fallback.payload).levels,
            full2.levels);
  EXPECT_EQ(CounterTotal(scheduler->metrics_registry(),
                         "adgraph_incremental_fallbacks_total"),
            1.0);
}

TEST(SchedulerTest, WarmStartValidationRejectsIllFormedSpecs) {
  auto g = TestGraph(7, 42);
  auto delta = graph::DeltaGraph::Create(*g).value();
  std::mutex delta_mutex;
  auto previous = std::make_shared<const JobPayload>(core::BfsResult{});

  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();

  // warm_start without a delta has nothing to recompute against.
  JobSpec no_delta = BfsJob(g, 0);
  no_delta.warm_start = previous;
  EXPECT_TRUE(
      scheduler->Submit(no_delta).status().IsInvalidArgument());

  // The payload must come from the same algorithm as the job.
  JobSpec wrong_algo{.graph = g, .params = core::PageRankOptions{}};
  wrong_algo.warm_start = previous;
  wrong_algo.delta = &delta;
  wrong_algo.delta_mutex = &delta_mutex;
  EXPECT_TRUE(
      scheduler->Submit(wrong_algo).status().IsInvalidArgument());

  // Warm starts do not compose with gang execution.
  core::BfsOptions bfs;
  bfs.direction_optimizing = false;
  JobSpec gang{.graph = g, .params = bfs};
  gang.warm_start = previous;
  gang.delta = &delta;
  gang.delta_mutex = &delta_mutex;
  gang.gang_devices = 2;
  EXPECT_TRUE(scheduler->Submit(gang).status().IsInvalidArgument());
}

// --- per-job observability (§2.14) -----------------------------------------

TEST(JobProfileTest, OutcomeCarriesKernelAttribution) {
  auto g = TestGraph();
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();
  JobOutcome outcome = scheduler->Submit(BfsJob(g, 0)).value().get();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();

  EXPECT_NE(outcome.trace_id, 0u) << "scheduler mints ids for in-process "
                                     "submits";
  const prof::JobProfile& p = outcome.job_profile;
  ASSERT_GT(p.num_kernels, 0u);
  EXPECT_GT(p.total_cycles, 0.0);
  EXPECT_GT(p.total_ms, 0.0);
  EXPECT_GT(p.warp_inst_issued, 0u);
  // Ratios are ratios.
  EXPECT_GE(p.divergent_branch_ratio, 0.0);
  EXPECT_LE(p.divergent_branch_ratio, 1.0);
  EXPECT_GE(p.l2_hit_rate, 0.0);
  EXPECT_LE(p.l2_hit_rate, 1.0);
  EXPECT_GT(p.achieved_occupancy, 0.0);
  EXPECT_LE(p.achieved_occupancy, 1.0);
  // The top-N table is by cycles, descending, and never exceeds the
  // kernel-name population.
  ASSERT_FALSE(p.top_kernels.empty());
  EXPECT_LE(p.top_kernels.size(), 5u);
  uint64_t launches = 0;
  for (size_t i = 0; i < p.top_kernels.size(); ++i) {
    launches += p.top_kernels[i].launches;
    if (i > 0) {
      EXPECT_LE(p.top_kernels[i].cycles, p.top_kernels[i - 1].cycles);
    }
  }
  EXPECT_LE(launches, p.num_kernels);
}

TEST(JobProfileTest, DisabledOptionYieldsEmptyProfile) {
  auto g = TestGraph();
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.job_profiles = false;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  JobOutcome outcome = scheduler->Submit(BfsJob(g, 0)).value().get();
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.job_profile.num_kernels, 0u);
}

namespace {
FlightRecorder::JobRecord MakeRecord(uint64_t id, double exec_ms,
                                     Status status = Status::OK()) {
  FlightRecorder::JobRecord record;
  record.trace_id = id;
  record.sched_job_id = id;
  record.wire_job_id = id + 1000;
  record.algorithm = "bfs";
  record.device = "A100";
  record.status = std::move(status);
  record.exec_wall_ms = exec_ms;
  return record;
}
}  // namespace

TEST(FlightRecorderTest, KeepsKWorstPerClassAfterOverflow) {
  FlightRecorder::Options options;
  options.per_class_capacity = 2;
  FlightRecorder recorder(options);
  // Five jobs, walls 10..50: only the two slowest survive the latency ring.
  for (uint64_t i = 1; i <= 5; ++i) {
    recorder.Record(MakeRecord(i, 10.0 * i));
  }
  auto records = recorder.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0]->trace_id, 5u) << "worst first";
  EXPECT_EQ(records[1]->trace_id, 4u);
  EXPECT_EQ(records[0]->triggers, std::vector<std::string>{"latency"});

  // A failed fast job still lands via the status class...
  recorder.Record(MakeRecord(6, 0.001, Status::DeadlineExceeded("shed")));
  EXPECT_NE(recorder.FindByTraceId(6), nullptr);
  // ...and one retained record is findable by every id it carries.
  EXPECT_NE(recorder.FindBySchedId(5), nullptr);
  EXPECT_NE(recorder.FindByWireId(1005), nullptr);
  EXPECT_EQ(recorder.FindByTraceId(3), nullptr) << "evicted";
  EXPECT_EQ(recorder.FindByTraceId(0), nullptr) << "0 never matches";
}

TEST(FlightRecorderTest, AlertClassFollowsFiringRules) {
  FlightRecorder::Options options;
  options.per_class_capacity = 4;
  // A huge latency threshold: nothing qualifies by latency alone.
  options.latency_threshold_ms = 1e9;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(1, 5.0));
  EXPECT_TRUE(recorder.Records().empty()) << "no trigger, no retention";

  recorder.NoteAlert(true);
  recorder.Record(MakeRecord(2, 5.0));
  recorder.NoteAlert(false);
  recorder.Record(MakeRecord(3, 5.0));
  auto records = recorder.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0]->trace_id, 2u);
  EXPECT_EQ(records[0]->triggers, std::vector<std::string>{"alert"});
  EXPECT_EQ(recorder.alerts_active(), 0u);
}

TEST(FlightRecorderTest, DisabledRecorderRetainsNothing) {
  FlightRecorder::Options options;
  options.enabled = false;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(1, 100.0));
  EXPECT_FALSE(recorder.enabled());
  EXPECT_TRUE(recorder.Records().empty());
}

// The TSan target: 8 writer threads race Record/NoteAlert against readers
// walking Records()/FindBy* — the INSPECT handler's exact access pattern.
TEST(FlightRecorderTest, ConcurrentRecordAndInspectHammer) {
  FlightRecorder::Options options;
  options.per_class_capacity = 4;
  FlightRecorder recorder(options);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        if (i % 7 == 0) recorder.NoteAlert(true);
        recorder.Record(MakeRecord(id, static_cast<double>(id % 97)));
        if (i % 7 == 0) recorder.NoteAlert(false);
        if (i % 3 == 0) {
          for (const auto& r : recorder.Records()) {
            ASSERT_NE(r, nullptr);
            ASSERT_NE(r->trace_id, 0u);
          }
          (void)recorder.FindByTraceId(id);
          (void)recorder.FindBySchedId(id / 2);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto records = recorder.Records();
  EXPECT_FALSE(records.empty());
  EXPECT_LE(records.size(), 12u) << "at most 3 classes x capacity 4";
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i]->wall_ms(), records[i - 1]->wall_ms());
  }
}

TEST(FlightRecorderTest, SchedulerRetainsSpanTreeAfterGlobalRingWrap) {
  auto g = TestGraph();
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.trace.enabled = true;
  // A session ring far too small for even one job's kernel spans: the
  // collector overwrites, the per-job captures must not.
  options.trace.ring_capacity = 4;
  options.flight_recorder.per_class_capacity = 3;
  auto scheduler = Scheduler::Create(std::move(options)).value();

  std::vector<JobOutcome> outcomes;
  for (int i = 0; i < 5; ++i) {
    outcomes.push_back(scheduler->Submit(BfsJob(g, 0)).value().get());
    ASSERT_TRUE(outcomes.back().status.ok());
  }
  scheduler->Drain();
  EXPECT_LE(scheduler->TraceEvents().size(), 4u) << "session ring wrapped";

  auto records = scheduler->flight_recorder()->Records();
  ASSERT_EQ(records.size(), 3u) << "K worst retained";
  for (const auto& record : records) {
    EXPECT_NE(record->trace_id, 0u);
    ASSERT_FALSE(record->spans.empty())
        << "full span tree survives the ring wrap";
    bool saw_algo = false, saw_kernel = false;
    for (const auto& span : record->spans) {
      saw_algo |= span.name.rfind("algo:", 0) == 0;
      saw_kernel |= span.category == "kernel";
      // Every captured span is stamped with the owning job's identity.
      bool stamped = false;
      for (const auto& arg : span.args) {
        stamped |= arg.key == "trace_id" &&
                   arg.value == trace::TraceIdHex(record->trace_id);
      }
      EXPECT_TRUE(stamped) << span.name;
    }
    EXPECT_TRUE(saw_algo);
    EXPECT_TRUE(saw_kernel);
    EXPECT_GT(record->profile.num_kernels, 0u);
  }
  // The retained record is the one the outcome's ids point at.
  auto found =
      scheduler->flight_recorder()->FindByTraceId(records[0]->trace_id);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->sched_job_id, records[0]->sched_job_id);
}

TEST(ServerStatsTest, FormatMentionsDevicesAndLatency) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::Z100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();
  scheduler->Submit(BfsJob(g, 0)).value().get();
  scheduler->Drain();
  std::string report = prof::FormatServerStats(scheduler->Snapshot());
  EXPECT_NE(report.find("Z100"), std::string::npos);
  EXPECT_NE(report.find("jobs/s"), std::string::npos);
  EXPECT_NE(report.find("p95"), std::string::npos);
}

}  // namespace
}  // namespace adgraph::serve
