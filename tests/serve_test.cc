// Tests of the src/serve/ job scheduler: registry dispatch, concurrent
// submission correctness (identical results to serial execution),
// backpressure, memory-aware admission control, and stats reporting.

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "core/host_ref.h"
#include "graph/csr.h"
#include "graph/generate.h"
#include "prof/report.h"
#include "serve/admission.h"
#include "serve/job.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::serve {
namespace {

using graph::CsrGraph;

/// Shared small test graph: symmetric, weighted R-MAT.
std::shared_ptr<const CsrGraph> TestGraph(uint32_t scale = 8) {
  auto coo = graph::GenerateRmat({.scale = scale, .edge_factor = 8.0,
                                  .seed = 42}).value();
  graph::AttachRandomWeights(&coo, 0.1, 1.0, 7);
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  options.make_undirected = true;
  return std::make_shared<const CsrGraph>(
      CsrGraph::FromCoo(coo, options).value());
}

JobSpec BfsJob(std::shared_ptr<const CsrGraph> g, graph::vid_t source,
               std::string arch = "") {
  core::BfsOptions options;
  options.source = source;
  options.assume_symmetric = true;
  return {.graph = std::move(g), .params = options,
          .arch_preference = std::move(arch), .tag = "bfs"};
}

TEST(JobTest, AlgorithmNamesRoundTrip) {
  for (size_t i = 0; i < std::variant_size_v<JobParams>; ++i) {
    auto algo = static_cast<Algorithm>(i);
    auto parsed = ParseAlgorithm(AlgorithmName(algo));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, algo);
  }
  EXPECT_TRUE(ParseAlgorithm("quantum-pagerank").status().IsNotFound());
}

TEST(JobTest, SpecAlgorithmFollowsParamsAlternative) {
  auto g = TestGraph();
  EXPECT_EQ(BfsJob(g, 0).algorithm(), Algorithm::kBfs);
  JobSpec tc{.graph = g, .params = core::TcOptions{}};
  EXPECT_EQ(tc.algorithm(), Algorithm::kTriangleCount);
}

TEST(RegistryTest, EstimatesCoverTheGraphUpload) {
  auto g = TestGraph();
  for (const AlgorithmHandler& handler : AlgorithmRegistry()) {
    JobSpec spec{.graph = g, .params = {}};
    // Give every handler its own params alternative.
    switch (handler.algo) {
      case Algorithm::kBfs: spec.params = core::BfsOptions{}; break;
      case Algorithm::kSssp: spec.params = core::SsspOptions{}; break;
      case Algorithm::kPageRank: spec.params = core::PageRankOptions{}; break;
      case Algorithm::kTriangleCount: spec.params = core::TcOptions{}; break;
      case Algorithm::kConnectedComponents:
        spec.params = core::CcOptions{}; break;
      case Algorithm::kKCore: spec.params = core::KCoreOptions{}; break;
      case Algorithm::kJaccard: spec.params = core::JaccardOptions{}; break;
      case Algorithm::kWidestPath:
        spec.params = core::WidestPathOptions{}; break;
      case Algorithm::kColoring: spec.params = core::ColoringOptions{}; break;
      case Algorithm::kEsbv: spec.params = core::EsbvOptions{}; break;
    }
    EXPECT_GE(EstimateJobDeviceBytes(spec), g->DeviceFootprintBytes() / 2)
        << handler.name;
  }
}

TEST(RegistryTest, EsbvRequiresWeights) {
  auto coo = graph::GenerateRmat({.scale = 6, .edge_factor = 4.0, .seed = 1})
                 .value();
  auto unweighted = std::make_shared<const CsrGraph>(
      CsrGraph::FromCoo(coo, {}).value());
  JobSpec spec{.graph = unweighted, .params = core::EsbvOptions{}};
  EXPECT_TRUE(ValidateJobSpec(spec).IsInvalidArgument());
}

TEST(SchedulerTest, SubmitValidation) {
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();
  EXPECT_TRUE(scheduler
                  ->Submit({.graph = nullptr, .params = core::BfsOptions{}})
                  .status()
                  .IsInvalidArgument());
  auto g = TestGraph();
  EXPECT_TRUE(scheduler->Submit(BfsJob(g, 0, "H100")).status().IsNotFound());
}

TEST(SchedulerTest, SingleJobMatchesDirectExecution) {
  auto g = TestGraph();
  auto scheduler = Scheduler::Create({}).value();  // default 4-GPU pool
  auto future = scheduler->Submit(BfsJob(g, 0, "A100")).value();
  JobOutcome outcome = future.get();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.device_name, "A100");
  EXPECT_GT(outcome.modeled_ms, 0);
  EXPECT_GT(outcome.profile.num_kernels, 0u);

  const auto& result = std::get<core::BfsResult>(outcome.payload);
  auto expected = core::host_ref::BfsLevels(*g, 0);
  EXPECT_EQ(result.levels, expected);

  vgpu::Device direct(vgpu::A100Config());
  core::BfsOptions bfs_options;
  bfs_options.source = 0;
  bfs_options.assume_symmetric = true;
  auto direct_result = core::RunBfs(&direct, *g, bfs_options).value();
  EXPECT_EQ(FingerprintPayload(outcome.payload),
            FingerprintPayload(JobPayload(std::move(direct_result))));
}

// The headline concurrency test: N submitter threads race mixed algorithm
// jobs into a multi-worker pool; every outcome must be byte-identical to a
// serial run of the same job on the same architecture.
TEST(SchedulerTest, ConcurrentSubmissionMatchesSerial) {
  auto g = TestGraph(8);
  // Two identical A100s: any worker that picks a job produces the same
  // bits, so assignment nondeterminism cannot leak into results.
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}},
                     {.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 8;  // small: exercises blocking backpressure too
  auto scheduler = Scheduler::Create(std::move(options)).value();

  auto make_job = [&g](int i) -> JobSpec {
    switch (i % 4) {
      case 0: return BfsJob(g, static_cast<graph::vid_t>(i) %
                                   g->num_vertices());
      case 1: {
        core::TcOptions tc;
        return {.graph = g, .params = tc};
      }
      case 2: {
        core::PageRankOptions pr;
        pr.max_iterations = 10;
        return {.graph = g, .params = pr};
      }
      default: {
        core::EsbvOptions esbv;
        esbv.vertices = core::SelectPseudoCluster(g->num_vertices(), 0.4, 3);
        return {.graph = g, .params = esbv};
      }
    }
  };

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 6;
  std::vector<std::future<JobOutcome>> futures(kThreads * kJobsPerThread);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        int i = t * kJobsPerThread + j;
        auto submitted = scheduler->Submit(make_job(i));
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        futures[static_cast<size_t>(i)] = std::move(submitted).value();
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  // Serial reference on a single fresh A100.
  vgpu::Device serial_device(vgpu::A100Config());
  for (int i = 0; i < kThreads * kJobsPerThread; ++i) {
    JobOutcome outcome = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(outcome.status.ok())
        << "job " << i << ": " << outcome.status.ToString();
    JobSpec spec = make_job(i);
    auto serial =
        GetHandler(spec.algorithm()).run(&serial_device, spec);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(FingerprintPayload(outcome.payload),
              FingerprintPayload(*serial))
        << "job " << i << " (" << AlgorithmName(spec.algorithm()) << ")";
    serial_device.ResetCounters();
  }

  scheduler->Drain();
  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_submitted,
            static_cast<uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(stats.jobs_completed,
            static_cast<uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(stats.jobs_queued, 0u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  uint64_t per_device = 0;
  for (const auto& d : stats.devices) per_device += d.jobs_completed;
  EXPECT_EQ(per_device, stats.jobs_completed);
}

TEST(SchedulerTest, RejectPolicyRefusesWhenQueueFull) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 1;
  options.overflow = Scheduler::OverflowPolicy::kReject;
  // Slow the worker down so the queue actually fills.
  options.device_occupancy_floor_ms = 30;
  auto scheduler = Scheduler::Create(std::move(options)).value();

  int accepted = 0;
  int rejected = 0;
  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 12; ++i) {
    auto submitted = scheduler->Submit(BfsJob(g, 0));
    if (submitted.ok()) {
      futures.push_back(std::move(submitted).value());
      ++accepted;
    } else {
      EXPECT_TRUE(submitted.status().IsResourceExhausted());
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "queue of 1 should have overflowed";
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_rejected_backpressure,
            static_cast<uint64_t>(rejected));
  EXPECT_EQ(stats.jobs_completed, static_cast<uint64_t>(accepted));
}

TEST(SchedulerTest, BlockPolicyEventuallyAcceptsEverything) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 1;
  options.overflow = Scheduler::OverflowPolicy::kBlock;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(scheduler->Submit(BfsJob(g, 0)).value());
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  EXPECT_EQ(scheduler->Snapshot().jobs_rejected_backpressure, 0u);
}

// The paper's twitter-mpi ESBV OOM, served politely: the job is *admitted*
// into the queue, then rejected by admission control on the device with
// kResourceExhausted — and the pool keeps serving afterwards.
TEST(SchedulerTest, OversizedEsbvRejectedGracefully) {
  auto g = TestGraph(10);
  uint64_t upload = g->DeviceFootprintBytes();
  JobSpec esbv_spec{.graph = g, .params = core::EsbvOptions{}};
  std::get<core::EsbvOptions>(esbv_spec.params).vertices =
      core::SelectPseudoCluster(g->num_vertices(), 0.6, 7);
  uint64_t esbv_estimate = EstimateJobDeviceBytes(esbv_spec);
  ASSERT_GT(esbv_estimate, upload);

  // Scale the device so the graph (and BFS) fit but ESBV's extraction
  // working set does not: capacity halfway between.
  uint64_t target_capacity = upload + (esbv_estimate - upload) / 2;
  Scheduler::Options options;
  Scheduler::DeviceSlot slot;
  slot.arch = &vgpu::A100Config();
  slot.options.memory_scale =
      static_cast<double>(vgpu::A100Config().dram_capacity_bytes) /
      static_cast<double>(target_capacity);
  options.devices = {slot};
  auto scheduler = Scheduler::Create(std::move(options)).value();

  // Admitted (Submit succeeds)...
  auto esbv_future = scheduler->Submit(std::move(esbv_spec)).value();
  JobOutcome esbv_outcome = esbv_future.get();
  // ...then rejected with kResourceExhausted, not a crash and not plain OOM.
  EXPECT_TRUE(esbv_outcome.status.IsResourceExhausted())
      << esbv_outcome.status.ToString();
  EXPECT_GT(esbv_outcome.estimated_bytes, target_capacity);

  // The pool keeps serving: a BFS on the same graph still completes.
  JobOutcome bfs_outcome = scheduler->Submit(BfsJob(g, 0)).value().get();
  ASSERT_TRUE(bfs_outcome.status.ok()) << bfs_outcome.status.ToString();
  EXPECT_EQ(std::get<core::BfsResult>(bfs_outcome.payload).levels,
            core::host_ref::BfsLevels(*g, 0));

  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_EQ(stats.jobs_rejected_admission, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.devices.size(), 1u);
  EXPECT_EQ(stats.devices[0].jobs_rejected, 1u);
}

TEST(AdmissionTest, DecisionFieldsAreCoherent) {
  auto g = TestGraph(8);
  vgpu::Device device(vgpu::A100Config());
  JobSpec spec = BfsJob(g, 0);
  AdmissionDecision decision = CheckAdmission(device, spec);
  EXPECT_TRUE(decision.admit);
  EXPECT_EQ(decision.capacity_bytes, device.memory_capacity_bytes());
  EXPECT_GT(decision.estimated_bytes, 0u);

  vgpu::Device::Options tiny;
  tiny.memory_scale = 1e7;  // ~8 KB device
  vgpu::Device small(vgpu::A100Config(), tiny);
  AdmissionDecision refusal = CheckAdmission(small, spec);
  EXPECT_FALSE(refusal.admit);
  EXPECT_TRUE(AdmissionError(refusal).IsResourceExhausted());
  EXPECT_FALSE(refusal.reason.empty());
}

TEST(SchedulerTest, ShutdownFailsQueuedJobsButFinishesRunning) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 16;
  options.device_occupancy_floor_ms = 20;
  auto scheduler = Scheduler::Create(std::move(options)).value();
  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(scheduler->Submit(BfsJob(g, 0)).value());
  }
  scheduler->Shutdown();
  int ok = 0;
  int failed = 0;
  for (auto& f : futures) {
    JobOutcome outcome = f.get();  // every future resolves
    outcome.status.ok() ? ++ok : ++failed;
  }
  EXPECT_EQ(ok + failed, 6);
  // Submitting after shutdown fails cleanly.
  EXPECT_FALSE(scheduler->Submit(BfsJob(g, 0)).ok());
}

TEST(ServerStatsTest, FormatMentionsDevicesAndLatency) {
  auto g = TestGraph(6);
  Scheduler::Options options;
  options.devices = {{.arch = &vgpu::Z100Config(), .options = {}}};
  auto scheduler = Scheduler::Create(std::move(options)).value();
  scheduler->Submit(BfsJob(g, 0)).value().get();
  scheduler->Drain();
  std::string report = prof::FormatServerStats(scheduler->Snapshot());
  EXPECT_NE(report.find("Z100"), std::string::npos);
  EXPECT_NE(report.find("jobs/s"), std::string::npos);
  EXPECT_NE(report.find("p95"), std::string::npos);
}

}  // namespace
}  // namespace adgraph::serve
