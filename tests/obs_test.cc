// Tests for src/obs/ (DESIGN.md §2.9): the labeled metric registry, the
// Prometheus/JSONL exposition formats (golden files), the bounded sample
// ring, the alert-rule engine's fire/resolve hysteresis, a multi-threaded
// registry hammer with concurrent scrapes (the TSan target), and the serve
// scheduler's end-to-end metrics integration.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bfs.h"
#include "graph/generate.h"
#include "obs/alerts.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "prof/report.h"
#include "serve/job.h"
#include "serve/scheduler.h"

namespace adgraph::obs {
namespace {

// --- registry ---------------------------------------------------------------

TEST(Registry, CounterAccumulatesAcrossIncrements) {
  Registry registry;
  Counter* c = registry.GetCounter("jobs_total", "help");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry registry;
  Gauge* g = registry.GetGauge("depth", "help");
  ASSERT_NE(g, nullptr);
  g->Set(3.5);
  g->Add(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 5.0);
  g->Set(-2);
  EXPECT_DOUBLE_EQ(g->Value(), -2.0);
}

TEST(Registry, SameNameAndLabelsReturnsSameHandle) {
  Registry registry;
  Counter* a = registry.GetCounter("hits", "h", {{"worker", "0"}});
  // Label order must not matter: the key is canonicalized (sorted).
  Counter* b = registry.GetCounter(
      "hits", "ignored later", {{"worker", "0"}});
  Counter* c2 = registry.GetCounter("hits", "h", {{"worker", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c2);
  EXPECT_EQ(registry.num_families(), 1u);
}

TEST(Registry, LabelOrderCanonicalized) {
  Registry registry;
  Counter* a = registry.GetCounter("x", "h", {{"b", "2"}, {"a", "1"}});
  Counter* b = registry.GetCounter("x", "h", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
}

TEST(Registry, KindMismatchReturnsNull) {
  Registry registry;
  ASSERT_NE(registry.GetCounter("thing", "h"), nullptr);
  EXPECT_EQ(registry.GetGauge("thing", "h"), nullptr);
  EXPECT_EQ(registry.GetHistogram("thing", "h"), nullptr);
}

TEST(Registry, ScrapePreservesRegistrationOrder) {
  Registry registry;
  registry.GetGauge("build_info", "h", {{"version", "1"}})->Set(1);
  registry.GetCounter("later", "h");
  registry.GetGauge("build_info", "h", {{"version", "2"}})->Set(1);
  auto families = registry.Scrape();
  ASSERT_EQ(families.size(), 2u);
  EXPECT_EQ(families[0].name, "build_info");
  ASSERT_EQ(families[0].series.size(), 2u);
  EXPECT_EQ(families[1].name, "later");
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;  // bounds 1, 2, 4, 8, then +Inf
  Histogram h(options);
  // 100 observations spread evenly in (2,4]: p50 should land mid-bucket.
  for (int i = 0; i < 100; ++i) h.Observe(3.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 300.0);
  double p50 = snap.Quantile(0.5);
  EXPECT_GT(p50, 2.0);
  EXPECT_LE(p50, 4.0);
  // Everything in one bucket: p99 sits in the same bucket.
  EXPECT_LE(snap.Quantile(0.99), 4.0);
}

TEST(Histogram, MergeAddsIdenticalLayouts) {
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;
  Histogram a(options);
  Histogram b(options);
  a.Observe(0.5);
  b.Observe(100.0);  // +Inf bucket
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 2u);
  EXPECT_DOUBLE_EQ(merged.sum, 100.5);
  // +Inf observations clamp to the largest finite bound in quantiles.
  EXPECT_DOUBLE_EQ(merged.Quantile(1.0), 4.0);
}

TEST(Histogram, ObservationsLandInCorrectBuckets) {
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 10.0;
  options.num_buckets = 3;  // bounds 1, 10, 100
  Histogram h(options);
  h.Observe(1.0);    // <= 1 -> bucket 0
  h.Observe(5.0);    // bucket 1
  h.Observe(50.0);   // bucket 2
  h.Observe(500.0);  // +Inf
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
}

// --- exposition formats -----------------------------------------------------

TEST(Export, PrometheusGoldenFile) {
  Registry registry;
  registry.GetGauge("adgraph_build_info", "Version info.",
                    {{"version", "2.0.0"}, {"device", "A100"}})
      ->Set(1);
  Counter* jobs = registry.GetCounter("adgraph_jobs_total", "Jobs done.",
                                      {{"algo", "bfs"}, {"worker", "0"}});
  jobs->Increment(7);
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 2;  // bounds 1, 2, +Inf
  Histogram* lat = registry.GetHistogram("adgraph_latency_ms", "Latency.",
                                         {{"worker", "0"}}, options);
  lat->Observe(0.5);
  lat->Observe(1.5);
  lat->Observe(9.0);

  const std::string expected =
      "# HELP adgraph_build_info Version info.\n"
      "# TYPE adgraph_build_info gauge\n"
      "adgraph_build_info{device=\"A100\",version=\"2.0.0\"} 1\n"
      "# HELP adgraph_jobs_total Jobs done.\n"
      "# TYPE adgraph_jobs_total counter\n"
      "adgraph_jobs_total{algo=\"bfs\",worker=\"0\"} 7\n"
      "# HELP adgraph_latency_ms Latency.\n"
      "# TYPE adgraph_latency_ms histogram\n"
      "adgraph_latency_ms_bucket{worker=\"0\",le=\"1\"} 1\n"
      "adgraph_latency_ms_bucket{worker=\"0\",le=\"2\"} 2\n"
      "adgraph_latency_ms_bucket{worker=\"0\",le=\"+Inf\"} 3\n"
      "adgraph_latency_ms_sum{worker=\"0\"} 11\n"
      "adgraph_latency_ms_count{worker=\"0\"} 3\n";
  EXPECT_EQ(ToPrometheusText(registry.Scrape()), expected);
}

TEST(Export, PrometheusLabelEscaping) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");

  Registry registry;
  registry.GetGauge("g", "", {{"path", "C:\\x\n\"q\""}})->Set(1);
  std::string text = ToPrometheusText(registry.Scrape());
  EXPECT_NE(text.find("g{path=\"C:\\\\x\\n\\\"q\\\"\"} 1"), std::string::npos)
      << text;
}

TEST(Export, CumulativeBucketsAreMonotone) {
  Registry registry;
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 8;
  Histogram* h = registry.GetHistogram("lat", "", {}, options);
  for (int i = 0; i < 200; ++i) h->Observe(0.3 * i);
  std::string text = ToPrometheusText(registry.Scrape());
  // Walk the rendered _bucket lines; the trailing counts must not decrease.
  std::istringstream in(text);
  std::string line;
  long long prev = -1;
  int buckets = 0;
  while (std::getline(in, line)) {
    if (line.rfind("lat_bucket", 0) != 0) continue;
    long long count = std::stoll(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(count, prev) << line;
    prev = count;
    ++buckets;
  }
  EXPECT_EQ(buckets, 9);  // 8 finite + +Inf
}

TEST(Export, JsonLineStructure) {
  Registry registry;
  registry.GetCounter("jobs", "h", {{"algo", "bfs"}})->Increment(3);
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 2;
  registry.GetHistogram("lat", "h", {}, options)->Observe(1.5);

  SampleBatch batch;
  batch.sequence = 9;
  batch.ts_ms = 125.5;
  batch.families = registry.Scrape();
  AlertEvent event;
  event.rule = "queue_depth > 5 for 2";
  event.metric = "queue_depth";
  event.state = AlertEvent::State::kFiring;
  event.value = 7;
  event.threshold = 5;
  batch.alerts.push_back(event);

  std::string line = ToJsonLine(batch);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line per batch
  EXPECT_NE(line.find("\"seq\":9"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts_ms\":125.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"alerts\":[{\"rule\":\"queue_depth > 5 for 2\","
                      "\"state\":\"firing\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"name\":\"jobs\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"labels\":{\"algo\":\"bfs\"},\"value\":3"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"buckets\":[[1,0],[2,1],[\"+Inf\",0]]"),
            std::string::npos)
      << line;
}

TEST(Export, ParseFormatNames) {
  EXPECT_EQ(ParseExportFormat("prom").value(), ExportFormat::kPrometheus);
  EXPECT_EQ(ParseExportFormat("prometheus").value(),
            ExportFormat::kPrometheus);
  EXPECT_EQ(ParseExportFormat("jsonl").value(), ExportFormat::kJsonl);
  EXPECT_FALSE(ParseExportFormat("csv").ok());
}

// --- sample ring ------------------------------------------------------------

TEST(SampleRing, OverwritesOldestWhenFull) {
  SampleRing ring(3);
  for (uint64_t i = 0; i < 5; ++i) {
    SampleBatch batch;
    batch.sequence = i;
    ring.Push(std::move(batch));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  auto batches = ring.Batches();
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].sequence, 2u);  // oldest surviving
  EXPECT_EQ(batches[1].sequence, 3u);
  EXPECT_EQ(batches[2].sequence, 4u);
}

TEST(SampleRing, UnderCapacityKeepsEverything) {
  SampleRing ring(8);
  for (uint64_t i = 0; i < 5; ++i) {
    SampleBatch batch;
    batch.sequence = i;
    ring.Push(std::move(batch));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.Batches().front().sequence, 0u);
}

// --- alert rules ------------------------------------------------------------

TEST(Alerts, ParseRuleForms) {
  AlertRule rule = ParseAlertRule("queue_depth > 48 for 3").value();
  EXPECT_EQ(rule.metric, "queue_depth");
  EXPECT_EQ(rule.op, AlertRule::Op::kGreaterThan);
  EXPECT_DOUBLE_EQ(rule.threshold, 48);
  EXPECT_EQ(rule.for_samples, 3u);

  AlertRule simple = ParseAlertRule("cache_hit_ratio < 0.5").value();
  EXPECT_EQ(simple.op, AlertRule::Op::kLessThan);
  EXPECT_DOUBLE_EQ(simple.threshold, 0.5);
  EXPECT_EQ(simple.for_samples, 1u);

  EXPECT_FALSE(ParseAlertRule("queue_depth >= 5").ok());
  EXPECT_FALSE(ParseAlertRule("queue_depth > five").ok());
  EXPECT_FALSE(ParseAlertRule("queue_depth > 5 for 0").ok());
  EXPECT_FALSE(ParseAlertRule("queue_depth").ok());
}

TEST(Alerts, ParseRulesSkipsCommentsAndReportsLineNumbers) {
  auto rules = ParseAlertRules("# comment\n\nqueue_depth > 5\n"
                               "utilization < 0.2 for 4\n");
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 2u);

  auto bad = ParseAlertRules("queue_depth > 5\nbogus line here\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().ToString();
}

TEST(Alerts, FireAfterConsecutiveBreaches) {
  AlertRule rule = ParseAlertRule("queue_depth > 10 for 3").value();
  AlertEngine engine({rule});
  std::map<std::string, double> low = {{"queue_depth", 5}};
  std::map<std::string, double> high = {{"queue_depth", 20}};

  EXPECT_TRUE(engine.Evaluate(1, high).empty());
  EXPECT_TRUE(engine.Evaluate(2, high).empty());
  // Streak broken: the counter must reset.
  EXPECT_TRUE(engine.Evaluate(3, low).empty());
  EXPECT_TRUE(engine.Evaluate(4, high).empty());
  EXPECT_TRUE(engine.Evaluate(5, high).empty());
  auto events = engine.Evaluate(6, high);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].state, AlertEvent::State::kFiring);
  EXPECT_DOUBLE_EQ(events[0].value, 20);
  EXPECT_EQ(engine.states()[0].times_fired, 1u);
}

TEST(Alerts, ResolveHasSymmetricHysteresis) {
  AlertRule rule = ParseAlertRule("p95_latency_ms > 100 for 2").value();
  AlertEngine engine({rule});
  std::map<std::string, double> high = {{"p95_latency_ms", 500}};
  std::map<std::string, double> low = {{"p95_latency_ms", 10}};

  engine.Evaluate(1, high);
  ASSERT_EQ(engine.Evaluate(2, high).size(), 1u);  // fired
  // One clean sample is not enough to resolve; flapping stays quiet.
  EXPECT_TRUE(engine.Evaluate(3, low).empty());
  EXPECT_TRUE(engine.Evaluate(4, high).empty());  // still firing, no re-fire
  EXPECT_TRUE(engine.Evaluate(5, low).empty());
  auto resolved = engine.Evaluate(6, low);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].state, AlertEvent::State::kResolved);
  EXPECT_FALSE(engine.states()[0].firing);
}

TEST(Alerts, MissingMetricLeavesStateUntouched) {
  AlertRule rule = ParseAlertRule("cache_hit_ratio < 0.5 for 1").value();
  AlertEngine engine({rule});
  // No cache_hit_ratio key at all: never fires, never resolves.
  EXPECT_TRUE(engine.Evaluate(1, {}).empty());
  ASSERT_EQ(engine.Evaluate(2, {{"cache_hit_ratio", 0.1}}).size(), 1u);
  // Input disappears again while firing: stays firing.
  EXPECT_TRUE(engine.Evaluate(3, {}).empty());
  EXPECT_TRUE(engine.states()[0].firing);
}

// --- sampler ----------------------------------------------------------------

TEST(Sampler, SampleNowScrapesAndEvaluatesAlerts) {
  Registry registry;
  Counter* jobs = registry.GetCounter("jobs_total", "h");
  std::atomic<int> depth{0};
  SamplerOptions options;
  options.enabled = true;
  options.quiet = true;
  options.ring_capacity = 16;
  options.alert_rules = {ParseAlertRule("queue_depth > 3 for 2").value()};
  std::vector<AlertEvent> sink_events;
  Sampler sampler(
      &registry, options,
      [&] {
        return std::map<std::string, double>{
            {"queue_depth", static_cast<double>(depth.load())}};
      },
      [&](const AlertEvent& event) { sink_events.push_back(event); });

  jobs->Increment(5);
  sampler.SampleNow();  // depth 0: clean
  depth = 10;
  sampler.SampleNow();  // breach 1
  sampler.SampleNow();  // breach 2 -> fires
  depth = 0;
  sampler.SampleNow();
  sampler.SampleNow();  // clean x2 -> resolves

  auto batches = sampler.Batches();
  ASSERT_EQ(batches.size(), 5u);
  EXPECT_EQ(batches[0].families.front().name, "jobs_total");
  EXPECT_EQ(batches[2].alerts.size(), 1u);
  EXPECT_EQ(batches[2].alerts[0].state, AlertEvent::State::kFiring);
  EXPECT_EQ(batches[4].alerts.size(), 1u);
  EXPECT_EQ(batches[4].alerts[0].state, AlertEvent::State::kResolved);
  ASSERT_EQ(sink_events.size(), 2u);
  ASSERT_EQ(sampler.AlertLog().size(), 2u);
  EXPECT_EQ(sampler.samples_taken(), 5u);
  // Sequence numbers are monotone even though the ring could wrap.
  EXPECT_EQ(batches[4].sequence, 4u);
}

TEST(Sampler, RingBoundsBatchHistory) {
  Registry registry;
  SamplerOptions options;
  options.enabled = true;
  options.quiet = true;
  options.ring_capacity = 4;
  Sampler sampler(&registry, options,
                  [] { return std::map<std::string, double>{}; });
  for (int i = 0; i < 10; ++i) sampler.SampleNow();
  EXPECT_EQ(sampler.Batches().size(), 4u);
  EXPECT_EQ(sampler.dropped(), 6u);
  EXPECT_EQ(sampler.Latest().sequence, 9u);
}

TEST(Sampler, WriteToBothFormats) {
  Registry registry;
  registry.GetCounter("jobs_total", "h")->Increment(2);
  SamplerOptions options;
  options.enabled = true;
  options.quiet = true;
  Sampler sampler(&registry, options,
                  [] { return std::map<std::string, double>{}; });
  sampler.SampleNow();
  sampler.SampleNow();

  std::string prom_path = testing::TempDir() + "obs_test_out.prom";
  std::string jsonl_path = testing::TempDir() + "obs_test_out.jsonl";
  ASSERT_TRUE(sampler.WriteTo(prom_path, ExportFormat::kPrometheus).ok());
  ASSERT_TRUE(sampler.WriteTo(jsonl_path, ExportFormat::kJsonl).ok());

  std::ifstream prom(prom_path);
  std::stringstream prom_text;
  prom_text << prom.rdbuf();
  EXPECT_NE(prom_text.str().find("# TYPE jobs_total counter"),
            std::string::npos);

  std::ifstream jsonl(jsonl_path);
  std::string line;
  int lines = 0;
  while (std::getline(jsonl, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 2);  // one line per batch
  std::remove(prom_path.c_str());
  std::remove(jsonl_path.c_str());
}

// --- concurrency hammer (the TSan target) -----------------------------------

TEST(Registry, ConcurrentUpdatesAndScrapes) {
  Registry registry;
  Counter* shared_counter = registry.GetCounter("hammer_total", "h");
  Histogram* shared_histogram = registry.GetHistogram("hammer_ms", "h");
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Gauge* own_gauge = registry.GetGauge(
          "hammer_gauge", "h", {{"thread", std::to_string(t)}});
      for (int i = 0; i < kIterations; ++i) {
        shared_counter->Increment();
        shared_histogram->Observe(0.001 * i);
        own_gauge->Set(i);
      }
    });
  }
  // Scrape concurrently with the updates — what the background sampler
  // does to the serve pool.  Values must be sane mid-flight.
  for (int s = 0; s < 50; ++s) {
    auto families = registry.Scrape();
    for (const auto& family : families) {
      if (family.name != "hammer_total") continue;
      EXPECT_LE(family.series[0].value,
                static_cast<double>(kThreads) * kIterations);
    }
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(shared_counter->Value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  HistogramSnapshot snap = shared_histogram->Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kIterations);
}

// --- serve scheduler integration --------------------------------------------

class SchedulerMetricsTest : public ::testing::Test {
 protected:
  static std::shared_ptr<const graph::CsrGraph> MakeGraph() {
    auto coo = graph::GenerateRmat({.scale = 8, .edge_factor = 8.0, .seed = 3})
                   .value();
    graph::CsrBuildOptions build;
    build.remove_duplicates = true;
    build.remove_self_loops = true;
    build.make_undirected = true;
    return std::make_shared<const graph::CsrGraph>(
        graph::CsrGraph::FromCoo(coo, build).value());
  }
};

TEST_F(SchedulerMetricsTest, RegistryTracksJobsWithoutSampler) {
  // metrics.enabled stays false: the registry still exists and counts.
  serve::Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = serve::Scheduler::Create(std::move(options)).value();
  auto g = MakeGraph();
  std::vector<std::future<serve::JobOutcome>> futures;
  for (int i = 0; i < 4; ++i) {
    serve::JobSpec spec;
    spec.graph = g;
    core::BfsOptions o;
    o.source = static_cast<graph::vid_t>(i);
    o.assume_symmetric = true;
    spec.params = o;
    futures.push_back(scheduler->Submit(std::move(spec)).value());
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  scheduler->Drain();
  (void)scheduler->Snapshot();  // refreshes gauges

  auto families = scheduler->metrics_registry().Scrape();
  ASSERT_FALSE(families.empty());
  // Satellite (c): build_info leads every scrape, carrying the version.
  EXPECT_EQ(families[0].name, "adgraph_build_info");
  ASSERT_FALSE(families[0].series.empty());
  bool saw_version = false;
  for (const auto& [k, v] : families[0].series[0].labels) {
    if (k == "version") {
      saw_version = true;
      EXPECT_FALSE(v.empty());
    }
  }
  EXPECT_TRUE(saw_version);

  std::map<std::string, double> totals;
  for (const auto& family : families) {
    for (const auto& series : family.series) {
      totals[family.name] += family.kind == MetricKind::kHistogram
                                 ? static_cast<double>(series.histogram.count)
                                 : series.value;
    }
  }
  EXPECT_DOUBLE_EQ(totals["adgraph_jobs_submitted_total"], 4);
  EXPECT_DOUBLE_EQ(totals["adgraph_jobs_completed_total"], 4);
  EXPECT_DOUBLE_EQ(totals["adgraph_jobs_by_algo_total"], 4);
  EXPECT_DOUBLE_EQ(totals["adgraph_job_latency_ms"], 4);    // histogram count
  EXPECT_DOUBLE_EQ(totals["adgraph_queue_wait_ms"], 4);
  EXPECT_GT(totals["adgraph_device_warp_inst_total"], 0);
  EXPECT_GT(totals["adgraph_cache_misses_total"], 0);
  // But no sampler artifacts.
  EXPECT_TRUE(scheduler->MetricsBatches().empty());
  EXPECT_FALSE(scheduler
                   ->WriteMetrics(testing::TempDir() + "never.prom",
                                  ExportFormat::kPrometheus)
                   .ok());
}

TEST_F(SchedulerMetricsTest, SamplerExportsAndAlertsEndToEnd) {
  serve::Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.metrics.enabled = true;
  options.metrics.quiet = true;
  options.metrics.interval_ms = 2;
  std::string prom_path = testing::TempDir() + "sched_metrics.prom";
  options.metrics.path = prom_path;
  // Fires on the very first sample: utilization of a fresh pool is 0.
  options.metrics.alert_rules = {
      ParseAlertRule("jobs_per_sec < 1e12 for 1").value()};
  options.trace.enabled = true;
  auto scheduler = serve::Scheduler::Create(std::move(options)).value();

  auto g = MakeGraph();
  std::vector<std::future<serve::JobOutcome>> futures;
  for (int i = 0; i < 6; ++i) {
    serve::JobSpec spec;
    spec.graph = g;
    core::BfsOptions o;
    o.source = static_cast<graph::vid_t>(i);
    o.assume_symmetric = true;
    spec.params = o;
    futures.push_back(scheduler->Submit(std::move(spec)).value());
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  scheduler->Drain();

  // On-demand export before shutdown.
  std::string jsonl_path = testing::TempDir() + "sched_metrics.jsonl";
  ASSERT_TRUE(
      scheduler->WriteMetrics(jsonl_path, ExportFormat::kJsonl).ok());

  std::vector<trace::TraceEvent> events = scheduler->TraceEvents();
  scheduler->Shutdown();  // final sample + Prometheus file

  auto batches = scheduler->MetricsBatches();
  ASSERT_GE(batches.size(), 1u);
  EXPECT_EQ(batches.front().families.front().name, "adgraph_build_info");
  auto alert_log = scheduler->MetricsAlertLog();
  ASSERT_GE(alert_log.size(), 1u);
  EXPECT_EQ(alert_log[0].state, AlertEvent::State::kFiring);
  EXPECT_EQ(alert_log[0].metric, "jobs_per_sec");

  // The alert also landed on the trace as an instant event ('i' phase) —
  // unless it fired only on the final post-join sample; check the export
  // file instead for the unconditional evidence.
  std::ifstream prom(prom_path);
  ASSERT_TRUE(prom.good()) << prom_path;
  std::stringstream prom_text;
  prom_text << prom.rdbuf();
  EXPECT_NE(prom_text.str().find("adgraph_jobs_completed_total"),
            std::string::npos);
  EXPECT_NE(prom_text.str().find("adgraph_job_latency_ms_bucket"),
            std::string::npos);

  std::ifstream jsonl(jsonl_path);
  std::string line;
  int lines = 0;
  while (std::getline(jsonl, line)) {
    EXPECT_EQ(line.front(), '{');
    ++lines;
  }
  EXPECT_GE(lines, 1);
  std::remove(prom_path.c_str());
  std::remove(jsonl_path.c_str());
  (void)events;
}

TEST_F(SchedulerMetricsTest, ServerStatsCarriesP99FromHistograms) {
  serve::Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  auto scheduler = serve::Scheduler::Create(std::move(options)).value();
  auto g = MakeGraph();
  std::vector<std::future<serve::JobOutcome>> futures;
  for (int i = 0; i < 3; ++i) {
    serve::JobSpec spec;
    spec.graph = g;
    core::BfsOptions o;
    o.source = 0;
    o.assume_symmetric = true;
    spec.params = o;
    futures.push_back(scheduler->Submit(std::move(spec)).value());
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  scheduler->Drain();
  prof::ServerStats stats = scheduler->Snapshot();
  EXPECT_GT(stats.p50_wall_ms, 0);
  EXPECT_GE(stats.p95_wall_ms, stats.p50_wall_ms);
  EXPECT_GE(stats.p99_wall_ms, stats.p95_wall_ms);
  EXPECT_GE(stats.p99_modeled_ms, stats.p95_modeled_ms);
  std::string report = prof::FormatServerStats(stats);
  EXPECT_NE(report.find("p99"), std::string::npos) << report;
}

TEST(MetricsReport, RendersBatchesAndAlerts) {
  Registry registry;
  registry.GetCounter("adgraph_jobs_completed_total", "h",
                      {{"worker", "0"}})
      ->Increment(12);
  SampleBatch batch;
  batch.sequence = 3;
  batch.ts_ms = 42;
  batch.families = registry.Scrape();
  AlertEvent event;
  event.rule = "queue_depth > 5";
  event.metric = "queue_depth";
  event.state = AlertEvent::State::kFiring;
  event.value = 9;
  event.threshold = 5;
  event.ts_ms = 42;
  std::string report =
      prof::FormatMetricsReport({batch}, {event}, /*dropped_batches=*/2);
  EXPECT_NE(report.find("adgraph_jobs_completed_total"), std::string::npos)
      << report;
  EXPECT_NE(report.find("queue_depth > 5"), std::string::npos) << report;
  EXPECT_NE(report.find("FIRING"), std::string::npos) << report;

  std::string empty = prof::FormatMetricsReport({}, {}, 0);
  EXPECT_NE(empty.find("no samples"), std::string::npos) << empty;
}

}  // namespace
}  // namespace adgraph::obs
