#include <gtest/gtest.h>

#include <algorithm>

#include "core/host_ref.h"
#include "core/subgraph.h"
#include "graph/builder.h"
#include "graph/generate.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::core {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using graph::vid_t;
using vgpu::A100Config;
using vgpu::Device;
using vgpu::Z100LConfig;

// Canonical form for comparing graphs whose adjacency order may differ.
struct CanonicalEdges {
  std::vector<std::tuple<vid_t, vid_t, double>> edges;
};

CanonicalEdges Canonicalize(const CsrGraph& g) {
  CanonicalEdges out;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto adj = g.neighbors(u);
    for (size_t i = 0; i < adj.size(); ++i) {
      double w = g.has_weights() ? g.edge_weights(u)[i] : 1.0;
      out.edges.emplace_back(u, adj[i], w);
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

CsrGraph WeightedTestGraph(uint32_t scale, uint64_t seed) {
  auto coo = graph::GenerateRmat({.scale = scale, .edge_factor = 8,
                                  .seed = seed})
                 .value();
  graph::AttachRandomWeights(&coo, 0.5, 2.0, seed + 1);
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  return CsrGraph::FromCoo(coo, options).value();
}

TEST(EsbvTest, RequiresWeights) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Device dev(A100Config());
  EsbvOptions options;
  options.vertices = {0, 1};
  auto result = ExtractSubgraphByVertex(&dev, b.Build().value(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(EsbvTest, TinyGraphByHand) {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 1.0).AddEdge(1, 2, 2.0).AddEdge(2, 3, 3.0)
      .AddEdge(3, 0, 4.0).AddEdge(1, 4, 5.0);
  Device dev(A100Config());
  EsbvOptions options;
  options.vertices = {0, 1, 2};
  auto result = ExtractSubgraphByVertex(&dev, b.Build().value(), options)
                    .value();
  EXPECT_EQ(result.subgraph_vertices, 3u);
  EXPECT_EQ(result.subgraph_edges, 2u);  // (0,1) and (1,2) survive
  auto canon = Canonicalize(result.subgraph);
  ASSERT_EQ(canon.edges.size(), 2u);
  EXPECT_EQ(canon.edges[0], std::make_tuple(0u, 1u, 1.0));
  EXPECT_EQ(canon.edges[1], std::make_tuple(1u, 2u, 2.0));
}

TEST(EsbvTest, EmptySelectionYieldsEmptyGraph) {
  Device dev(A100Config());
  auto g = WeightedTestGraph(8, 41);
  EsbvOptions options;  // no vertices
  auto result = ExtractSubgraphByVertex(&dev, g, options).value();
  EXPECT_EQ(result.subgraph_vertices, 0u);
  EXPECT_EQ(result.subgraph_edges, 0u);
}

TEST(EsbvTest, FullSelectionReproducesGraph) {
  Device dev(A100Config());
  auto g = WeightedTestGraph(8, 42);
  EsbvOptions options;
  for (vid_t v = 0; v < g.num_vertices(); ++v) options.vertices.push_back(v);
  auto result = ExtractSubgraphByVertex(&dev, g, options).value();
  EXPECT_EQ(result.subgraph_vertices, g.num_vertices());
  EXPECT_EQ(result.subgraph_edges, g.num_edges());
  EXPECT_EQ(Canonicalize(result.subgraph).edges, Canonicalize(g).edges);
}

TEST(EsbvTest, MatchesHostReferenceOnRmat) {
  Device dev(A100Config());
  auto g = WeightedTestGraph(10, 43);
  EsbvOptions options;
  options.vertices = SelectPseudoCluster(g.num_vertices(), 0.6, 7);
  auto result = ExtractSubgraphByVertex(&dev, g, options).value();
  auto expected = host_ref::ExtractSubgraph(g, options.vertices);
  EXPECT_EQ(result.subgraph_vertices, expected.num_vertices());
  EXPECT_EQ(result.subgraph_edges, expected.num_edges());
  EXPECT_EQ(Canonicalize(result.subgraph).edges,
            Canonicalize(expected).edges);
}

TEST(EsbvTest, MatchesHostReferenceOnAmdLikeDevice) {
  Device dev(Z100LConfig());
  auto g = WeightedTestGraph(9, 44);
  EsbvOptions options;
  options.vertices = SelectPseudoCluster(g.num_vertices(), 0.4, 9);
  auto result = ExtractSubgraphByVertex(&dev, g, options).value();
  auto expected = host_ref::ExtractSubgraph(g, options.vertices);
  EXPECT_EQ(Canonicalize(result.subgraph).edges,
            Canonicalize(expected).edges);
}

TEST(EsbvTest, DuplicateSelectionsAreIdempotent) {
  Device dev(A100Config());
  auto g = WeightedTestGraph(8, 45);
  EsbvOptions once;
  once.vertices = {1, 2, 3};
  EsbvOptions twice;
  twice.vertices = {1, 2, 3, 3, 2, 1};
  auto a = ExtractSubgraphByVertex(&dev, g, once).value();
  auto b = ExtractSubgraphByVertex(&dev, g, twice).value();
  EXPECT_EQ(a.subgraph_vertices, b.subgraph_vertices);
  EXPECT_EQ(Canonicalize(a.subgraph).edges, Canonicalize(b.subgraph).edges);
}

TEST(EsbvTest, OutOfRangeVertexRejected) {
  Device dev(A100Config());
  auto g = WeightedTestGraph(8, 46);
  EsbvOptions options;
  options.vertices = {0, g.num_vertices()};
  EXPECT_FALSE(ExtractSubgraphByVertex(&dev, g, options).ok());
}

TEST(EsbvTest, OomOnTightDevice) {
  // The working set is ~44 bytes/edge; a device whose capacity is close to
  // the raw graph size must fail with OOM, like twitter-mpi in Table 5.
  auto g = WeightedTestGraph(12, 47);
  uint64_t graph_bytes = g.DeviceFootprintBytes();
  vgpu::Device::Options options;
  options.memory_scale =
      static_cast<double>(A100Config().dram_capacity_bytes) /
      (static_cast<double>(graph_bytes) * 2.0);
  Device dev(A100Config(), options);
  EsbvOptions esbv;
  esbv.vertices = SelectPseudoCluster(g.num_vertices(), 0.6, 11);
  auto result = ExtractSubgraphByVertex(&dev, g, esbv);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory());
}


// ------------------------------------------------------------------ ESBE

TEST(EsbeTest, KeepsExactlySelectedEdges) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1.0).AddEdge(0, 2, 2.0).AddEdge(3, 4, 3.0)
      .AddEdge(4, 5, 4.0);
  Device dev(A100Config());
  auto g = b.Build().value();
  EsbeOptions options;
  options.edges = {0, 2};  // (0,1) and (3,4)
  auto result = ExtractSubgraphByEdge(&dev, g, options).value();
  EXPECT_EQ(result.subgraph_vertices, 4u);  // 0,1,3,4
  EXPECT_EQ(result.subgraph_edges, 2u);
  auto canon = Canonicalize(result.subgraph);
  ASSERT_EQ(canon.edges.size(), 2u);
  EXPECT_EQ(canon.edges[0], std::make_tuple(0u, 1u, 1.0));
  EXPECT_EQ(canon.edges[1], std::make_tuple(2u, 3u, 3.0));
}

TEST(EsbeTest, MatchesHostReferenceOnRmat) {
  Device dev(A100Config());
  auto g = WeightedTestGraph(9, 48);
  // Every third edge.
  EsbeOptions options;
  for (graph::eid_t e = 0; e < g.num_edges(); e += 3) {
    options.edges.push_back(e);
  }
  auto result = ExtractSubgraphByEdge(&dev, g, options).value();
  auto expected = host_ref::ExtractSubgraphByEdge(g, options.edges);
  EXPECT_EQ(result.subgraph_vertices, expected.num_vertices());
  EXPECT_EQ(result.subgraph_edges, expected.num_edges());
  EXPECT_EQ(Canonicalize(result.subgraph).edges,
            Canonicalize(expected).edges);
}

TEST(EsbeTest, UnweightedGraphAccepted) {
  GraphBuilder b(4);
  b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3);
  Device dev(A100Config());
  EsbeOptions options;
  options.edges = {1};
  auto result = ExtractSubgraphByEdge(&dev, b.Build().value(), options)
                    .value();
  EXPECT_EQ(result.subgraph_vertices, 2u);
  EXPECT_EQ(result.subgraph_edges, 1u);
  EXPECT_FALSE(result.subgraph.has_weights());
}

TEST(EsbeTest, EmptySelectionAndValidation) {
  Device dev(A100Config());
  auto g = WeightedTestGraph(8, 49);
  EsbeOptions empty;
  auto result = ExtractSubgraphByEdge(&dev, g, empty).value();
  EXPECT_EQ(result.subgraph_vertices, 0u);
  EXPECT_EQ(result.subgraph_edges, 0u);
  EsbeOptions bad;
  bad.edges = {g.num_edges()};
  EXPECT_FALSE(ExtractSubgraphByEdge(&dev, g, bad).ok());
}

TEST(EsbeTest, MatchesOnAmdLikeDevice) {
  Device dev(Z100LConfig());
  auto g = WeightedTestGraph(8, 50);
  EsbeOptions options;
  for (graph::eid_t e = 1; e < g.num_edges(); e += 5) {
    options.edges.push_back(e);
  }
  auto result = ExtractSubgraphByEdge(&dev, g, options).value();
  auto expected = host_ref::ExtractSubgraphByEdge(g, options.edges);
  EXPECT_EQ(Canonicalize(result.subgraph).edges,
            Canonicalize(expected).edges);
}

TEST(SelectPseudoClusterTest, FractionRoughlyHonored) {
  auto sel = SelectPseudoCluster(100000, 0.6, 3);
  EXPECT_NEAR(static_cast<double>(sel.size()) / 100000, 0.6, 0.02);
  EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
  auto none = SelectPseudoCluster(1000, 0.0, 3);
  EXPECT_TRUE(none.empty());
  auto all = SelectPseudoCluster(1000, 1.0, 3);
  EXPECT_EQ(all.size(), 1000u);
}

}  // namespace
}  // namespace adgraph::core
