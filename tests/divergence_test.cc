#include <gtest/gtest.h>

#include <variant>

#include "core/api.h"
#include "graph/datasets.h"
#include "prof/metrics.h"
#include "prof/session.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph {
namespace {

using graph::CsrGraph;
using vgpu::Device;

/// Table 6 regression guard (ISSUE 7 acceptance): the engine rewiring must
/// not wash out the paper's SIMT-divergence phenomena.  Triangle counting
/// (irregular per-vertex intersection work) diverges far more than BFS
/// (regular frontier expansion); the ordering has to survive on both the
/// CUDA-like and the ROCm-like architectures, measured through the exact
/// entry point the serving stack uses — core::Run.

double DivergenceRatio(const prof::AlgoProfile& p) {
  return p.counters.branches == 0
             ? 0.0
             : static_cast<double>(p.counters.divergent_branches) /
                   static_cast<double>(p.counters.branches);
}

class DivergenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto spec = graph::FindDataset("web-Google").value();
    graph_ = new CsrGraph(graph::Materialize(spec, /*extra_divisor=*/8).value());
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }

  static CsrGraph* graph_;
};

CsrGraph* DivergenceTest::graph_ = nullptr;

TEST_F(DivergenceTest, TcDivergesMoreThanBfsOnBothVendorArchs) {
  for (const vgpu::ArchConfig* arch :
       {&vgpu::A100Config(), &vgpu::Z100LConfig()}) {
    Device dev(*arch);

    prof::Session bfs_session(&dev);
    auto bfs = core::Run(&dev, {core::Algo::kBfs}, *graph_,
                         core::Params(core::BfsOptions{.source = 0}));
    ASSERT_TRUE(bfs.ok()) << arch->name;
    prof::AlgoProfile bfs_profile = bfs_session.Finish();

    prof::Session tc_session(&dev);
    auto tc = core::Run(&dev, {core::Algo::kTriangleCount}, *graph_,
                        core::Params(core::TcOptions{}));
    ASSERT_TRUE(tc.ok()) << arch->name;
    prof::AlgoProfile tc_profile = tc_session.Finish();

    EXPECT_GT(tc_profile.counters.divergent_branches, 0u) << arch->name;
    EXPECT_GT(DivergenceRatio(tc_profile), DivergenceRatio(bfs_profile))
        << arch->name
        << ": Table 6 ordering (TC branch divergence >> BFS) regressed";
  }
}

TEST_F(DivergenceTest, EngineBfsKeepsSeedDivergenceProfile) {
  // The engine's BFS replays the seed kernels, so its counter profile —
  // not just its output — must stay in the seed's regime: mostly-uniform
  // branching with a small divergent tail from ragged frontier edges.
  Device dev(vgpu::A100Config());
  prof::Session session(&dev);
  auto r = core::Run(&dev, {core::Algo::kBfs}, *graph_,
                     core::Params(core::BfsOptions{.source = 0}));
  ASSERT_TRUE(r.ok());
  prof::AlgoProfile p = session.Finish();
  EXPECT_GT(p.counters.branches, 0u);
  EXPECT_LT(DivergenceRatio(p), 0.5)
      << "BFS through the engine became divergence-dominated";
}

}  // namespace
}  // namespace adgraph
