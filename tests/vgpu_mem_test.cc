#include <gtest/gtest.h>

#include "vgpu/mem/address_space.h"
#include "vgpu/mem/cache.h"
#include "vgpu/mem/coalescer.h"
#include "vgpu/mem/shared_mem.h"

namespace adgraph::vgpu {
namespace {

// ---------------------------------------------------------- AddressSpace

TEST(AddressSpaceTest, AllocatesDistinctAlignedAddresses) {
  AddressSpace mem(1 << 20);
  auto a = mem.Allocate(100);
  auto b = mem.Allocate(100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.value() % 256, 0u);
  EXPECT_EQ(b.value() % 256, 0u);
  EXPECT_NE(a.value(), 0u) << "null address must never be handed out";
}

TEST(AddressSpaceTest, EnforcesCapacity) {
  AddressSpace mem(1024);
  auto a = mem.Allocate(512);
  ASSERT_TRUE(a.ok());
  auto b = mem.Allocate(1024);
  ASSERT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsOutOfMemory());
}

TEST(AddressSpaceTest, FreeMakesRoom) {
  AddressSpace mem(1024);
  auto a = mem.Allocate(768);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(mem.Allocate(768).ok());
  ASSERT_TRUE(mem.Free(a.value()).ok());
  EXPECT_TRUE(mem.Allocate(768).ok());
}

TEST(AddressSpaceTest, ReusesFreedBlocksFirstFit) {
  AddressSpace mem(1 << 20);
  uint64_t a = mem.Allocate(256).value();
  uint64_t b = mem.Allocate(256).value();
  (void)b;
  ASSERT_TRUE(mem.Free(a).ok());
  uint64_t c = mem.Allocate(128).value();
  EXPECT_EQ(c, a) << "freed block should be reused";
}

TEST(AddressSpaceTest, CoalescesAdjacentFreeBlocks) {
  AddressSpace mem(4096);
  uint64_t a = mem.Allocate(1024).value();
  uint64_t b = mem.Allocate(1024).value();
  uint64_t c = mem.Allocate(1024).value();
  (void)c;
  ASSERT_TRUE(mem.Free(a).ok());
  ASSERT_TRUE(mem.Free(b).ok());
  // a+b coalesced: a 2048-byte request fits in the hole.
  auto d = mem.Allocate(2048);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), a);
}

TEST(AddressSpaceTest, FreeUnknownAddressFails) {
  AddressSpace mem(4096);
  EXPECT_FALSE(mem.Free(12345).ok());
  EXPECT_TRUE(mem.Free(0).ok()) << "freeing null is a no-op";
}

TEST(AddressSpaceTest, UsedAndPeakTracking) {
  AddressSpace mem(1 << 20);
  EXPECT_EQ(mem.used_bytes(), 0u);
  uint64_t a = mem.Allocate(1000).value();  // rounds to 1024
  EXPECT_EQ(mem.used_bytes(), 1024u);
  uint64_t b = mem.Allocate(10).value();  // rounds to 256
  EXPECT_EQ(mem.used_bytes(), 1280u);
  ASSERT_TRUE(mem.Free(a).ok());
  ASSERT_TRUE(mem.Free(b).ok());
  EXPECT_EQ(mem.used_bytes(), 0u);
  EXPECT_EQ(mem.peak_used_bytes(), 1280u);
}

TEST(AddressSpaceTest, ReadWriteRoundTrip) {
  AddressSpace mem(1 << 16);
  uint64_t addr = mem.Allocate(64).value();
  uint32_t data[4] = {1, 2, 3, 4};
  mem.Write(addr, data, sizeof(data));
  uint32_t back[4] = {};
  mem.Read(addr, back, sizeof(back));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back[i], data[i]);
  EXPECT_EQ(mem.Load<uint32_t>(addr + 8), 3u);
  mem.Store<uint32_t>(addr + 8, 99);
  EXPECT_EQ(mem.Load<uint32_t>(addr + 8), 99u);
}

TEST(AddressSpaceTest, FillWritesBytes) {
  AddressSpace mem(1 << 16);
  uint64_t addr = mem.Allocate(16).value();
  mem.Fill(addr, 0xAB, 16);
  EXPECT_EQ(mem.Load<uint8_t>(addr + 15), 0xAB);
}

TEST(AddressSpaceTest, ZeroByteAllocationGetsUniqueAddress) {
  AddressSpace mem(1 << 16);
  uint64_t a = mem.Allocate(0).value();
  uint64_t b = mem.Allocate(0).value();
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- Cache

TEST(CacheTest, MissThenHit) {
  CacheModel cache(1024, 64, 4);
  EXPECT_FALSE(cache.Access(0));
  EXPECT_TRUE(cache.Access(0));
  EXPECT_TRUE(cache.Access(63)) << "same line";
  EXPECT_FALSE(cache.Access(64)) << "next line";
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheTest, LruEvictionWithinSet) {
  // 4 sets x 2 ways x 64B lines = 512 B.
  CacheModel cache(512, 64, 2);
  // Lines 0, 4, 8 all map to set 0 (line % 4).
  uint64_t l0 = 0 * 64, l4 = 4 * 64, l8 = 8 * 64;
  EXPECT_FALSE(cache.Access(l0));
  EXPECT_FALSE(cache.Access(l4));
  EXPECT_TRUE(cache.Access(l0));   // refresh l0
  EXPECT_FALSE(cache.Access(l8));  // evicts l4 (LRU)
  EXPECT_TRUE(cache.Access(l0));
  EXPECT_FALSE(cache.Access(l4)) << "l4 was evicted";
}

TEST(CacheTest, ZeroSizeNeverHits) {
  CacheModel cache(0, 64, 4);
  EXPECT_FALSE(cache.Access(0));
  EXPECT_FALSE(cache.Access(0));
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheTest, ClearForgetsEverything) {
  CacheModel cache(1024, 64, 4);
  cache.Access(0);
  EXPECT_TRUE(cache.Access(0));
  cache.Clear();
  EXPECT_FALSE(cache.Access(0));
}

TEST(CacheTest, WorkingSetWithinCapacityAllHits) {
  CacheModel cache(8192, 64, 4);  // 128 lines
  for (uint64_t line = 0; line < 64; ++line) cache.Access(line * 64);
  uint64_t misses_before = cache.misses();
  for (int round = 0; round < 3; ++round) {
    for (uint64_t line = 0; line < 64; ++line) {
      EXPECT_TRUE(cache.Access(line * 64));
    }
  }
  EXPECT_EQ(cache.misses(), misses_before);
}

// ------------------------------------------------------------- Coalescer

Lanes<uint64_t> AddrsFrom(std::initializer_list<uint64_t> list) {
  Lanes<uint64_t> out;
  uint32_t i = 0;
  for (uint64_t a : list) out[i++] = a;
  return out;
}

TEST(CoalescerTest, SequentialAccessFullyCoalesces) {
  Lanes<uint64_t> addrs;
  for (uint32_t i = 0; i < 32; ++i) addrs[i] = i * 4;
  auto result = Coalesce(addrs, FullMask(32), 4, 32);
  EXPECT_EQ(result.size(), 4u);  // 128 bytes / 32
  EXPECT_EQ(result.bytes_requested, 128u);
  EXPECT_EQ(result.bytes_transferred, 128u);
}

TEST(CoalescerTest, ScatteredAccessOneSegmentPerLane) {
  Lanes<uint64_t> addrs;
  for (uint32_t i = 0; i < 32; ++i) addrs[i] = i * 1000;
  auto result = Coalesce(addrs, FullMask(32), 4, 32);
  EXPECT_EQ(result.size(), 32u);
  EXPECT_EQ(result.bytes_requested, 128u);
  EXPECT_EQ(result.bytes_transferred, 32u * 32u);
}

TEST(CoalescerTest, SameAddressBroadcastsToOneSegment) {
  Lanes<uint64_t> addrs = Lanes<uint64_t>::Splat(512);
  auto result = Coalesce(addrs, FullMask(64), 8, 32);
  EXPECT_EQ(result.size(), 1u);
  EXPECT_EQ(result.bytes_requested, 64u * 8u);
  EXPECT_EQ(result.bytes_transferred, 32u);
}

TEST(CoalescerTest, InactiveLanesIgnored) {
  auto addrs = AddrsFrom({0, 4096, 8192});
  auto result = Coalesce(addrs, 0b001, 4, 32);  // only lane 0 active
  EXPECT_EQ(result.size(), 1u);
  EXPECT_EQ(result.bytes_requested, 4u);
}

TEST(CoalescerTest, StraddlingAccessTouchesTwoSegments) {
  auto addrs = AddrsFrom({30});  // 8-byte access crossing the 32B boundary
  auto result = Coalesce(addrs, 0b1, 8, 32);
  EXPECT_EQ(result.size(), 2u);
  EXPECT_EQ(result.bytes_transferred, 64u);
}

TEST(CoalescerTest, EmptyMaskProducesNothing) {
  Lanes<uint64_t> addrs;
  auto result = Coalesce(addrs, 0, 4, 32);
  EXPECT_TRUE((result.size() == 0));
  EXPECT_EQ(result.bytes_requested, 0u);
  EXPECT_EQ(result.bytes_transferred, 0u);
}

TEST(CoalescerTest, SegmentsSortedAndDeduplicated) {
  auto addrs = AddrsFrom({96, 0, 96, 32});
  auto result = Coalesce(addrs, 0b1111, 4, 32);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result.segment_addrs[0], 0u);
  EXPECT_EQ(result.segment_addrs[1], 32u);
  EXPECT_EQ(result.segment_addrs[2], 96u);
}

// ---------------------------------------------------------- SharedMemory

TEST(SharedMemoryTest, LoadStoreRoundTrip) {
  SharedMemory smem(1024, 32);
  smem.Store<uint32_t>(16, 0xDEAD);
  EXPECT_EQ(smem.Load<uint32_t>(16), 0xDEADu);
  smem.Store<double>(24, 2.5);
  EXPECT_EQ(smem.Load<double>(24), 2.5);
}

TEST(SharedMemoryTest, FillResets) {
  SharedMemory smem(64, 32);
  smem.Store<uint32_t>(0, 77);
  smem.Fill(0);
  EXPECT_EQ(smem.Load<uint32_t>(0), 0u);
}

TEST(SharedMemoryTest, ConflictFreeSequential) {
  SharedMemory smem(4096, 32);
  Lanes<uint64_t> offsets;
  for (uint32_t i = 0; i < 32; ++i) offsets[i] = i * 4;  // distinct banks
  EXPECT_EQ(smem.ConflictDegree(offsets, FullMask(32), 4), 1u);
}

TEST(SharedMemoryTest, StrideOf32WordsConflictsFully) {
  SharedMemory smem(8192, 32);
  Lanes<uint64_t> offsets;
  for (uint32_t i = 0; i < 32; ++i) offsets[i] = i * 32 * 4;  // same bank
  EXPECT_EQ(smem.ConflictDegree(offsets, FullMask(32), 4), 32u);
}

TEST(SharedMemoryTest, BroadcastDoesNotConflict) {
  SharedMemory smem(4096, 32);
  Lanes<uint64_t> offsets = Lanes<uint64_t>::Splat(128);
  EXPECT_EQ(smem.ConflictDegree(offsets, FullMask(32), 4), 1u);
}

TEST(SharedMemoryTest, TwoWayConflict) {
  SharedMemory smem(4096, 32);
  Lanes<uint64_t> offsets;
  for (uint32_t i = 0; i < 32; ++i) {
    offsets[i] = (i % 16) * 4 + (i / 16) * 16 * 4 * 32;  // pairs share banks
  }
  EXPECT_EQ(smem.ConflictDegree(offsets, FullMask(32), 4), 2u);
}

TEST(SharedMemoryTest, EmptyMaskZeroDegree) {
  SharedMemory smem(4096, 32);
  Lanes<uint64_t> offsets;
  EXPECT_EQ(smem.ConflictDegree(offsets, 0, 4), 0u);
}

}  // namespace
}  // namespace adgraph::vgpu
