#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/bfs.h"
#include "core/coloring.h"
#include "core/conn_components.h"
#include "core/host_ref.h"
#include "core/jaccard.h"
#include "core/kcore.h"
#include "core/pagerank.h"
#include "core/spmv.h"
#include "core/sssp.h"
#include "core/widest_path.h"
#include "graph/builder.h"
#include "graph/generate.h"
#include "util/random.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::core {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using graph::vid_t;
using vgpu::A100Config;
using vgpu::Device;
using vgpu::Z100LConfig;

CsrGraph RandomGraph(uint32_t scale, double edge_factor, uint64_t seed,
                     bool weighted = false) {
  auto coo =
      graph::GenerateRmat({.scale = scale, .edge_factor = edge_factor,
                           .seed = seed})
          .value();
  if (weighted) graph::AttachRandomWeights(&coo, 0.1, 1.0, seed + 7);
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return CsrGraph::FromCoo(coo, options).value();
}

// ---------------------------------------------------------------- SpMV

TEST(SpmvTest, PlusTimesMatchesReference) {
  Device dev(A100Config());
  auto g = RandomGraph(9, 8, 51, /*weighted=*/true);
  std::vector<double> x(g.num_vertices());
  Rng rng(52);
  for (auto& v : x) v = rng.NextDouble();
  auto y = RunSpmv(&dev, g, x, {}).value();
  auto expected = host_ref::SpmvPlusTimes(g, x);
  ASSERT_EQ(y.size(), expected.size());
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], expected[i], 1e-9) << "row " << i;
  }
}

TEST(SpmvTest, MinPlusMatchesReference) {
  Device dev(A100Config());
  auto g = RandomGraph(8, 6, 53, /*weighted=*/true);
  std::vector<double> x(g.num_vertices());
  Rng rng(54);
  for (auto& v : x) v = rng.NextDouble() * 10;
  SpmvOptions options;
  options.semiring = Semiring::kMinPlus;
  auto y = RunSpmv(&dev, g, x, options).value();
  auto expected = host_ref::SpmvMinPlus(g, x);
  for (size_t i = 0; i < y.size(); ++i) {
    if (std::isinf(expected[i])) {
      EXPECT_TRUE(std::isinf(y[i]));
    } else {
      EXPECT_NEAR(y[i], expected[i], 1e-9);
    }
  }
}

TEST(SpmvTest, UnweightedActsAsAdjacencySum) {
  Device dev(A100Config());
  GraphBuilder b(3);
  b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(2, 1);
  std::vector<double> x{1.0, 2.0, 4.0};
  auto y = RunSpmv(&dev, b.Build().value(), x, {}).value();
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(SpmvTest, RejectsBadInputs) {
  Device dev(A100Config());
  auto g = RandomGraph(8, 4, 55);
  std::vector<double> wrong_size(3);
  EXPECT_FALSE(RunSpmv(&dev, g, wrong_size, {}).ok());
}

// ------------------------------------------------------------- PageRank

TEST(PageRankTest, UniformOnRegularRing) {
  GraphBuilder b;
  const vid_t n = 64;
  for (vid_t v = 0; v < n; ++v) b.AddEdge(v, (v + 1) % n);
  Device dev(A100Config());
  auto result = RunPageRank(&dev, b.Build().value(), {}).value();
  for (double r : result.ranks) EXPECT_NEAR(r, 1.0 / n, 1e-9);
}

TEST(PageRankTest, MatchesHostReference) {
  Device dev(A100Config());
  auto g = RandomGraph(9, 6, 56);
  PageRankOptions options;
  options.max_iterations = 25;
  options.tolerance = 0;  // fixed iteration count, same as the reference
  auto result = RunPageRank(&dev, g, options).value();
  auto expected = host_ref::PageRank(g, options.alpha, options.max_iterations);
  ASSERT_EQ(result.ranks.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(result.ranks[i], expected[i], 1e-8);
  }
}

TEST(PageRankTest, RanksSumToOneWithDanglingVertices) {
  GraphBuilder b(50);  // vertices 40..49 are dangling
  for (vid_t v = 0; v < 40; ++v) b.AddEdge(v, (v * 7 + 1) % 50);
  Device dev(A100Config());
  auto result = RunPageRank(&dev, b.Build().value(), {}).value();
  double sum = 0;
  for (double r : result.ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, ConvergesEarlyWithTolerance) {
  Device dev(A100Config());
  auto g = RandomGraph(8, 8, 57);
  PageRankOptions options;
  options.max_iterations = 200;
  options.tolerance = 1e-6;
  auto result = RunPageRank(&dev, g, options).value();
  EXPECT_LT(result.iterations, 200u);
  EXPECT_LT(result.l1_delta, 1e-6);
}

TEST(PageRankTest, HubOutranksLeaves) {
  GraphBuilder b;
  for (vid_t v = 1; v <= 30; ++v) b.AddEdge(v, 0);  // everyone points at 0
  b.AddEdge(0, 1);
  Device dev(A100Config());
  auto result = RunPageRank(&dev, b.Build().value(), {}).value();
  for (vid_t v = 2; v <= 30; ++v) {
    EXPECT_GT(result.ranks[0], result.ranks[v]);
  }
}

TEST(PageRankTest, ValidatesAlpha) {
  Device dev(A100Config());
  auto g = RandomGraph(8, 4, 58);
  PageRankOptions options;
  options.alpha = 1.5;
  EXPECT_FALSE(RunPageRank(&dev, g, options).ok());
}

// ----------------------------------------------------------------- SSSP

TEST(SsspTest, MatchesHostReferenceWeighted) {
  Device dev(A100Config());
  auto g = RandomGraph(9, 6, 59, /*weighted=*/true);
  SsspOptions options;
  options.source = 0;
  auto result = RunSssp(&dev, g, options).value();
  auto expected = host_ref::Sssp(g, 0);
  ASSERT_EQ(result.distances.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    if (std::isinf(expected[i])) {
      EXPECT_TRUE(std::isinf(result.distances[i]));
    } else {
      EXPECT_NEAR(result.distances[i], expected[i], 1e-9);
    }
  }
}

TEST(SsspTest, UnweightedDistancesEqualBfsLevels) {
  Device dev(Z100LConfig());
  auto g = RandomGraph(9, 8, 60);
  auto result = RunSssp(&dev, g, {.source = 5}).value();
  auto levels = host_ref::BfsLevels(g, 5);
  for (size_t v = 0; v < levels.size(); ++v) {
    if (levels[v] == kUnreachedLevel) {
      EXPECT_TRUE(std::isinf(result.distances[v]));
    } else {
      EXPECT_DOUBLE_EQ(result.distances[v], levels[v]);
    }
  }
}

TEST(SsspTest, RejectsNegativeWeights) {
  GraphBuilder b;
  b.AddEdge(0, 1, -2.0);
  Device dev(A100Config());
  EXPECT_FALSE(RunSssp(&dev, b.Build().value(), {.source = 0}).ok());
}

TEST(SsspTest, ChainDistancesAccumulateWeights) {
  GraphBuilder b;
  b.AddEdge(0, 1, 1.5).AddEdge(1, 2, 2.5).AddEdge(2, 3, 3.0);
  Device dev(A100Config());
  auto result = RunSssp(&dev, b.Build().value(), {.source = 0}).value();
  EXPECT_DOUBLE_EQ(result.distances[3], 7.0);
  EXPECT_LE(result.rounds, 4u);
}


TEST(SsspTest, FrontierAndFullSweepAgree) {
  Device dev(A100Config());
  auto g = RandomGraph(9, 8, 94, /*weighted=*/true);
  SsspOptions frontier;
  frontier.source = 2;
  frontier.use_frontier = true;
  SsspOptions full;
  full.source = 2;
  full.use_frontier = false;
  auto a = RunSssp(&dev, g, frontier).value();
  auto b = RunSssp(&dev, g, full).value();
  ASSERT_EQ(a.distances.size(), b.distances.size());
  for (size_t v = 0; v < a.distances.size(); ++v) {
    if (std::isinf(b.distances[v])) {
      EXPECT_TRUE(std::isinf(a.distances[v]));
    } else {
      EXPECT_DOUBLE_EQ(a.distances[v], b.distances[v]);
    }
  }
}

TEST(SsspTest, FrontierDoesLessWorkOnChains) {
  // A long chain: the full sweep touches all n vertices each round; the
  // frontier touches one.  Compare per-round VALU work, not time.
  GraphBuilder b;
  for (vid_t v = 0; v + 1 < 512; ++v) b.AddEdge(v, v + 1, 1.0);
  auto g = b.Build().value();
  auto work = [&](bool use_frontier) {
    Device dev(A100Config());
    size_t mark = dev.kernel_log().size();
    SsspOptions options;
    options.source = 0;
    options.use_frontier = use_frontier;
    RunSssp(&dev, g, options).value();
    uint64_t loads = 0;
    for (size_t i = mark; i < dev.kernel_log().size(); ++i) {
      const auto& s = dev.kernel_log()[i];
      if (s.kernel_name == "sssp_relax") {
        loads += s.counters.global_load_inst;
      }
    }
    return loads;
  };
  EXPECT_LT(work(true), work(false) / 2)
      << "the active-set sweep must touch far fewer vertices";
}

// ------------------------------------------------------------------- CC

TEST(CcTest, CountsComponents) {
  GraphBuilder b(10);
  b.AddEdge(0, 1).AddEdge(1, 2);   // component {0,1,2}
  b.AddEdge(4, 5);                 // component {4,5}
  Device dev(A100Config());
  auto result = RunConnectedComponents(&dev, b.Build().value(), {}).value();
  // {0,1,2}, {4,5}, and singletons 3,6,7,8,9.
  EXPECT_EQ(result.num_components, 7u);
  EXPECT_EQ(result.labels[0], result.labels[2]);
  EXPECT_EQ(result.labels[4], result.labels[5]);
  EXPECT_NE(result.labels[0], result.labels[4]);
}

TEST(CcTest, MatchesHostReference) {
  Device dev(A100Config());
  // Sparse graph so multiple components exist.
  auto coo = graph::GenerateErdosRenyi(2000, 1500, 61).value();
  auto g = CsrGraph::FromCoo(coo).value();
  auto result = RunConnectedComponents(&dev, g, {}).value();
  auto expected = host_ref::ConnectedComponents(g);
  EXPECT_EQ(result.labels, expected);
}

TEST(CcTest, DirectionIgnored) {
  GraphBuilder b(4);
  b.AddEdge(1, 0).AddEdge(2, 3);  // only "incoming" edges for 0 and 3
  Device dev(A100Config());
  auto result = RunConnectedComponents(&dev, b.Build().value(), {}).value();
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[2], result.labels[3]);
  EXPECT_EQ(result.num_components, 2u);
}

// -------------------------------------------------------------- Jaccard

TEST(JaccardTest, MatchesHostReference) {
  Device dev(A100Config());
  auto g = RandomGraph(8, 8, 62);
  auto result = RunJaccard(&dev, g, {}).value();
  auto expected = host_ref::JaccardPerEdge(g);
  ASSERT_EQ(result.coefficients.size(), expected.size());
  for (size_t e = 0; e < expected.size(); ++e) {
    EXPECT_NEAR(result.coefficients[e], expected[e], 1e-9) << "edge " << e;
  }
}

TEST(JaccardTest, KnownTinyValues) {
  // 0 -> {1,2}; 1 -> {2}; 2 -> {}.
  GraphBuilder b(3);
  b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 2);
  Device dev(A100Config());
  auto result = RunJaccard(&dev, b.Build().value(), {}).value();
  // Edge (0,1): N(0)={1,2}, N(1)={2}: inter {2} (1), union {1,2} (2) = 0.5.
  EXPECT_DOUBLE_EQ(result.coefficients[0], 0.5);
  // Edge (0,2): N(2)={} -> 0/2 = 0.
  EXPECT_DOUBLE_EQ(result.coefficients[1], 0.0);
  // Edge (1,2): 0/1 = 0.
  EXPECT_DOUBLE_EQ(result.coefficients[2], 0.0);
}


// ----------------------------------------------------------- widest path

TEST(WidestPathTest, MatchesHostReferenceWeighted) {
  Device dev(A100Config());
  auto g = RandomGraph(9, 6, 71, /*weighted=*/true);
  WidestPathOptions options;
  options.source = 0;
  auto result = RunWidestPath(&dev, g, options).value();
  auto expected = host_ref::WidestPath(g, 0);
  ASSERT_EQ(result.widths.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    if (std::isinf(expected[i])) {
      EXPECT_TRUE(std::isinf(result.widths[i]));
    } else {
      EXPECT_NEAR(result.widths[i], expected[i], 1e-12) << "vertex " << i;
    }
  }
}

TEST(WidestPathTest, BottleneckOnHandGraph) {
  // Two routes 0 -> 3: capacities min(5, 1) = 1 and min(2, 4) = 2.
  GraphBuilder b;
  b.AddEdge(0, 1, 5.0).AddEdge(1, 3, 1.0);
  b.AddEdge(0, 2, 2.0).AddEdge(2, 3, 4.0);
  Device dev(A100Config());
  auto result = RunWidestPath(&dev, b.Build().value(), {.source = 0}).value();
  EXPECT_TRUE(std::isinf(result.widths[0]));
  EXPECT_DOUBLE_EQ(result.widths[1], 5.0);
  EXPECT_DOUBLE_EQ(result.widths[2], 2.0);
  EXPECT_DOUBLE_EQ(result.widths[3], 2.0) << "wider route wins";
}

TEST(WidestPathTest, UnreachableIsZeroAndNegativeRejected) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 3.0);
  Device dev(A100Config());
  auto result = RunWidestPath(&dev, b.Build().value(), {.source = 0}).value();
  EXPECT_DOUBLE_EQ(result.widths[2], 0.0);
  GraphBuilder bad;
  bad.AddEdge(0, 1, -1.0);
  EXPECT_FALSE(RunWidestPath(&dev, bad.Build().value(), {.source = 0}).ok());
}

TEST(SpmvTest, OrAndMatchesReference) {
  Device dev(A100Config());
  auto g = RandomGraph(8, 6, 72, /*weighted=*/true);
  std::vector<double> x(g.num_vertices(), 0.0);
  Rng rng(73);
  for (auto& v : x) v = rng.Bernoulli(0.3) ? 1.0 : 0.0;
  SpmvOptions options;
  options.semiring = Semiring::kOrAnd;
  auto y = RunSpmv(&dev, g, x, options).value();
  auto expected = host_ref::SpmvOrAnd(g, x);
  EXPECT_EQ(y, expected);
}

TEST(SpmvTest, OrAndIteratedComputesReachability) {
  // Chain 0 -> 1 -> 2 -> 3: frontier indicator advances one hop per step.
  GraphBuilder b;
  b.AddEdge(1, 0).AddEdge(2, 1).AddEdge(3, 2);  // reversed: pull semantics
  Device dev(A100Config());
  auto g = b.Build().value();
  std::vector<double> x{1.0, 0.0, 0.0, 0.0};
  SpmvOptions options;
  options.semiring = Semiring::kOrAnd;
  for (int step = 1; step <= 3; ++step) {
    x = RunSpmv(&dev, g, x, options).value();
    for (int v = 0; v < 4; ++v) {
      EXPECT_EQ(x[v] != 0.0, v == step) << "step " << step << " v " << v;
    }
  }
}


// ------------------------------------------------------------- coloring

void ExpectProperColoring(const CsrGraph& g,
                          const std::vector<uint32_t>& colors) {
  graph::CsrBuildOptions sym_options;
  sym_options.make_undirected = true;
  sym_options.remove_duplicates = true;
  sym_options.remove_self_loops = true;
  auto sym = CsrGraph::FromCoo(g.ToCoo(), sym_options).value();
  for (vid_t u = 0; u < sym.num_vertices(); ++u) {
    for (vid_t v : sym.neighbors(u)) {
      EXPECT_NE(colors[u], colors[v]) << "edge (" << u << "," << v << ")";
    }
  }
}

TEST(ColoringTest, ProperOnRmat) {
  Device dev(A100Config());
  auto g = RandomGraph(9, 8, 91);
  auto result = RunGraphColoring(&dev, g, {}).value();
  ASSERT_EQ(result.colors.size(), g.num_vertices());
  ExpectProperColoring(g, result.colors);
  EXPECT_GT(result.num_colors, 1u);
}

TEST(ColoringTest, CompleteGraphNeedsNColors) {
  GraphBuilder b;
  const vid_t n = 9;
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  Device dev(A100Config());
  auto result = RunGraphColoring(&dev, b.Build().value(), {}).value();
  EXPECT_EQ(result.num_colors, n);
  ExpectProperColoring(b.Build().value(), result.colors);
}

TEST(ColoringTest, BipartiteUsesFewColors) {
  GraphBuilder b;
  for (vid_t u = 0; u < 16; ++u) {
    for (vid_t v = 16; v < 32; ++v) b.AddEdge(u, v);
  }
  Device dev(A100Config());
  auto result = RunGraphColoring(&dev, b.Build().value(), {}).value();
  EXPECT_LE(result.num_colors, 3u);
  ExpectProperColoring(b.Build().value(), result.colors);
}

TEST(ColoringTest, DeterministicPerSeedAndProperAcrossSeeds) {
  Device dev(Z100LConfig());
  auto g = RandomGraph(8, 6, 92);
  ColoringOptions a;
  a.seed = 5;
  auto r1 = RunGraphColoring(&dev, g, a).value();
  auto r2 = RunGraphColoring(&dev, g, a).value();
  EXPECT_EQ(r1.colors, r2.colors);
  ColoringOptions b;
  b.seed = 6;
  auto r3 = RunGraphColoring(&dev, g, b).value();
  ExpectProperColoring(g, r3.colors);
}

TEST(ColoringTest, WideColorWindowsWork) {
  // A 70-clique forces colors past the first 64-color window.
  GraphBuilder b;
  const vid_t n = 70;
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  Device dev(A100Config());
  auto result = RunGraphColoring(&dev, b.Build().value(), {}).value();
  EXPECT_EQ(result.num_colors, n);
  ExpectProperColoring(b.Build().value(), result.colors);
}

// ----------------------------------------------------------------- kcore

TEST(KCoreTest, MembershipMatchesCoreNumbers) {
  Device dev(A100Config());
  auto g = RandomGraph(8, 6, 63);
  auto cores = host_ref::CoreNumbers(g);
  for (uint32_t k : {1u, 2u, 3u, 5u}) {
    KCoreOptions options;
    options.k = k;
    auto result = RunKCore(&dev, g, options).value();
    ASSERT_EQ(result.in_core.size(), cores.size());
    for (size_t v = 0; v < cores.size(); ++v) {
      EXPECT_EQ(result.in_core[v], cores[v] >= k ? 1u : 0u)
          << "vertex " << v << " at k=" << k;
    }
  }
}

TEST(KCoreTest, CliquePlusTailPeelsTail) {
  GraphBuilder b;
  // 5-clique (core 4) with a path hanging off it.
  for (vid_t u = 0; u < 5; ++u) {
    for (vid_t v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(4, 5).AddEdge(5, 6);
  Device dev(A100Config());
  KCoreOptions options;
  options.k = 3;
  auto result = RunKCore(&dev, b.Build().value(), options).value();
  EXPECT_EQ(result.core_size, 5u);
  EXPECT_EQ(result.in_core[5], 0u);
  EXPECT_EQ(result.in_core[6], 0u);
}

TEST(KCoreTest, K1KeepsEverythingConnected) {
  GraphBuilder b(5);
  b.AddEdge(0, 1).AddEdge(2, 3);
  Device dev(A100Config());
  KCoreOptions options;
  options.k = 1;
  auto result = RunKCore(&dev, b.Build().value(), options).value();
  EXPECT_EQ(result.core_size, 4u);  // vertex 4 is isolated
}


TEST(CoreDecompositionTest, MatchesHostCoreNumbers) {
  Device dev(A100Config());
  auto g = RandomGraph(8, 6, 93);
  auto result = RunCoreDecomposition(&dev, g).value();
  auto expected = host_ref::CoreNumbers(g);
  ASSERT_EQ(result.core_numbers.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(result.core_numbers[v], expected[v]) << "vertex " << v;
  }
  uint32_t expected_max = 0;
  for (uint32_t c : expected) expected_max = std::max(expected_max, c);
  EXPECT_EQ(result.max_core, expected_max);
}

TEST(CoreDecompositionTest, CliqueWithTail) {
  GraphBuilder b;
  for (vid_t u = 0; u < 6; ++u) {
    for (vid_t v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(5, 6).AddEdge(6, 7);
  Device dev(A100Config());
  auto result = RunCoreDecomposition(&dev, b.Build().value()).value();
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(result.core_numbers[v], 5u);
  EXPECT_EQ(result.core_numbers[6], 1u);
  EXPECT_EQ(result.core_numbers[7], 1u);
  EXPECT_EQ(result.max_core, 5u);
}

}  // namespace
}  // namespace adgraph::core
