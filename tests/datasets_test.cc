#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/stats.h"

namespace adgraph::graph {
namespace {

TEST(DatasetsTest, SevenPaperDatasetsInTableOrder) {
  const auto& list = PaperDatasets();
  ASSERT_EQ(list.size(), 7u);
  EXPECT_EQ(list[0].name, "web-Stanford");
  EXPECT_EQ(list[1].name, "web-Google");
  EXPECT_EQ(list[2].name, "cit-Patents");
  EXPECT_EQ(list[3].name, "soc-liveJournal1");
  EXPECT_EQ(list[4].name, "soc-sinaweibo");
  EXPECT_EQ(list[5].name, "web-uk-2002-all");
  EXPECT_EQ(list[6].name, "twitter-mpi");
}

TEST(DatasetsTest, PaperStatsMatchTable4) {
  auto spec = FindDataset("twitter-mpi").value();
  EXPECT_EQ(spec.paper_vertices, 52579682u);
  EXPECT_EQ(spec.paper_edges, 1963263821u);
  EXPECT_EQ(spec.paper_max_degree, 3691240u);
  auto stanford = FindDataset("web-Stanford").value();
  EXPECT_EQ(stanford.paper_vertices, 281903u);
  EXPECT_EQ(stanford.paper_edges, 2312497u);
  EXPECT_EQ(stanford.paper_max_degree, 38626u);
}

TEST(DatasetsTest, FindRejectsUnknown) {
  EXPECT_FALSE(FindDataset("no-such-graph").ok());
}

TEST(DatasetsTest, ProxyEdgeOrderingMatchesPaperOrdering) {
  const auto& list = PaperDatasets();
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1].proxy_edges(), list[i].proxy_edges())
        << list[i - 1].name << " vs " << list[i].name;
    EXPECT_LT(list[i - 1].paper_edges, list[i].paper_edges);
  }
}

TEST(DatasetsTest, LargestThreeShareOneDivisor) {
  // Required so capacity ratios survive scaling (DESIGN.md / OOM story).
  const auto& list = PaperDatasets();
  EXPECT_EQ(list[4].scale_divisor, list[5].scale_divisor);
  EXPECT_EQ(list[5].scale_divisor, list[6].scale_divisor);
}

TEST(DatasetsTest, MaterializeIsDeterministic) {
  auto spec = FindDataset("web-Stanford").value();
  auto a = Materialize(spec, /*extra_divisor=*/8).value();
  auto b = Materialize(spec, /*extra_divisor=*/8).value();
  EXPECT_EQ(a.row_offsets(), b.row_offsets());
  EXPECT_EQ(a.col_indices(), b.col_indices());
}

TEST(DatasetsTest, MaterializedProxyHasExpectedShape) {
  auto spec = FindDataset("web-Google").value();
  auto g = Materialize(spec).value();
  auto stats = ComputeDegreeStats(g);
  // Vertex count is the nearest power of two of paper/divisor.
  EXPECT_EQ(g.num_vertices(), spec.proxy_vertices());
  // Generation overshoots ~6% to compensate dedup losses; the result
  // should land near the target either way.
  double target = static_cast<double>(spec.proxy_edges());
  EXPECT_GT(stats.num_edges, 0.8 * target);
  EXPECT_LT(stats.num_edges, 1.15 * target);
  // Power-law character: max degree far above average.
  EXPECT_GT(stats.skew(), 8.0);
}

TEST(DatasetsTest, SocialProxiesMoreSkewedThanCitation) {
  auto patents =
      Materialize(FindDataset("cit-Patents").value(), 4).value();
  auto weibo =
      Materialize(FindDataset("soc-sinaweibo").value(), 4).value();
  auto s1 = ComputeDegreeStats(patents);
  auto s2 = ComputeDegreeStats(weibo);
  EXPECT_GT(s2.skew(), 2.0 * s1.skew());
}

}  // namespace
}  // namespace adgraph::graph
