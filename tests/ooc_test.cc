// Tests of src/ooc/: byte-bounded partition plans, the OocCsr wrapper over
// in-memory and memory-mapped backings, and the streamed BFS / PageRank
// drivers — including the load-bearing acceptance property that a graph too
// large for the device completes out-of-core with results byte-identical to
// the in-memory path, and the fault-injection contract (a failed staged
// copy or a truncated shard file yields a structured error, no partial
// results, no leaked device bytes, and a still-usable device).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/api.h"
#include "core/bfs.h"
#include "core/pagerank.h"
#include "core/residency.h"
#include "graph/csr.h"
#include "graph/datasets.h"
#include "graph/generate.h"
#include "graph/io.h"
#include "ooc/ooc_csr.h"
#include "ooc/streamed.h"
#include "part/partition.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::ooc {
namespace {

using graph::CsrGraph;
using graph::eid_t;
using graph::vid_t;

CsrGraph TestGraph(uint32_t scale = 9, uint64_t seed = 42) {
  auto coo = graph::GenerateRmat(
                 {.scale = scale, .edge_factor = 8.0, .seed = seed})
                 .value();
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return CsrGraph::FromCoo(coo, options).value();
}

std::shared_ptr<const CsrGraph> Shared(CsrGraph g) {
  return std::make_shared<const CsrGraph>(std::move(g));
}

/// Device bytes of the whole-graph in-memory PageRank working set: the
/// pull-transpose (rows + cols + weights) dominates.
uint64_t FullPageRankBytes(const CsrGraph& g) {
  const uint64_t n = g.num_vertices();
  const uint64_t m = g.num_edges();
  return 2 * (n + 1) * sizeof(eid_t) + m * sizeof(vid_t) +
         m * sizeof(double) + 3 * n * sizeof(double);
}

/// A device too small for the whole graph but big enough for the streamed
/// working set (O(n) state + two slots of `shard_bytes`).
vgpu::Device SmallDevice(const CsrGraph& g, uint64_t shard_bytes) {
  const uint64_t full = FullPageRankBytes(g);
  const uint64_t streamed =
      EstimateStreamedBytes(core::Algo::kPageRank, g.num_vertices(),
                            g.has_weights(), shard_bytes)
          .value();
  // Cap capacity at 60% of the whole-graph footprint, with at least 1.25x
  // the streamed estimate of headroom so staging slack never trips the test.
  const uint64_t capacity =
      std::max<uint64_t>(full * 3 / 5, streamed + streamed / 4);
  vgpu::Device probe(vgpu::A100Config());
  vgpu::Device::Options options;
  // memory_scale divides capacity (scaled experiments): scale of base/target
  // leaves exactly `capacity` bytes.
  options.memory_scale = static_cast<double>(probe.memory_capacity_bytes()) /
                         static_cast<double>(capacity);
  return vgpu::Device(vgpu::A100Config(), options);
}

// ---------------------------------------------------------------------------
// Byte-bounded plans

TEST(ByteBoundedPlanTest, ShardsRespectBudgetAndCoverAllVertices) {
  CsrGraph g = TestGraph();
  const uint64_t budget = 16 << 10;
  auto plan =
      part::MakeByteBoundedPlan(g.row_offsets(), g.has_weights(), budget)
          .value();
  ASSERT_GE(plan.num_shards(), 2u);
  EXPECT_EQ(plan.lo(0), 0u);
  EXPECT_EQ(plan.hi(plan.num_shards() - 1), g.num_vertices());
  for (uint32_t s = 0; s < plan.num_shards(); ++s) {
    EXPECT_EQ(plan.hi(s), s + 1 < plan.num_shards() ? plan.lo(s + 1)
                                                    : g.num_vertices());
    ASSERT_GT(plan.hi(s), plan.lo(s));
    const uint64_t bytes = part::ShardDeviceBytes(
        g.row_offsets(), plan.lo(s), plan.hi(s), g.has_weights());
    // A multi-row shard must fit; only a single hub row may exceed.
    if (plan.hi(s) - plan.lo(s) > 1) {
      EXPECT_LE(bytes, budget);
    }
  }
}

TEST(ByteBoundedPlanTest, HubRowLargerThanBudgetGetsItsOwnShard) {
  // Star: vertex 0 points at everyone; its row alone exceeds the budget.
  const vid_t n = 1000;
  std::vector<eid_t> rows(n + 1, n - 1);
  rows[0] = 0;
  std::vector<vid_t> cols(n - 1);
  for (vid_t v = 1; v < n; ++v) cols[v - 1] = v;
  CsrGraph g = CsrGraph::FromArrays(n, rows, cols, {}).value();
  auto plan = part::MakeByteBoundedPlan(g.row_offsets(), false, 256).value();
  EXPECT_EQ(plan.lo(0), 0u);
  EXPECT_EQ(plan.hi(0), 1u);  // the hub is alone, over budget but legal
  EXPECT_GT(part::ShardDeviceBytes(g.row_offsets(), 0, 1, false), 256u);
}

TEST(ByteBoundedPlanTest, RejectsZeroBudgetAndEmptyOffsets) {
  CsrGraph g = TestGraph(6);
  EXPECT_FALSE(
      part::MakeByteBoundedPlan(g.row_offsets(), false, 0).ok());
  EXPECT_FALSE(part::MakeByteBoundedPlan({}, false, 1024).ok());
}

// ---------------------------------------------------------------------------
// OocCsr

TEST(OocCsrTest, FromMemoryExposesShardsAndMaxima) {
  auto g = Shared(TestGraph());
  OocCsr ooc = OocCsr::FromMemory(g, 4 << 10).value();
  EXPECT_FALSE(ooc.disk_backed());
  EXPECT_EQ(ooc.num_vertices(), g->num_vertices());
  EXPECT_EQ(ooc.num_edges(), g->num_edges());
  ASSERT_GE(ooc.num_shards(), 2u);
  uint64_t edges = 0;
  for (uint32_t s = 0; s < ooc.num_shards(); ++s) {
    const ShardView v = ooc.shard(s);
    EXPECT_LE(v.num_rows(), ooc.max_shard_rows());
    EXPECT_LE(v.num_edges(), ooc.max_shard_edges());
    edges += v.num_edges();
  }
  EXPECT_EQ(edges, g->num_edges());
  EXPECT_GT(ooc.slot_bytes(), 0u);
}

TEST(OocCsrTest, SpillRoundTripsThroughDisk) {
  CsrGraph g = TestGraph(8);
  const std::string path = testing::TempDir() + "/ooc_spill.bin";
  OocCsr ooc = OocCsr::Spill(g, path, 32 << 10).value();
  EXPECT_TRUE(ooc.disk_backed());
  ASSERT_EQ(ooc.num_vertices(), g.num_vertices());
  ASSERT_EQ(ooc.num_edges(), g.num_edges());
  EXPECT_EQ(0, std::memcmp(ooc.row_offsets().data(), g.row_offsets().data(),
                           (g.num_vertices() + 1) * sizeof(eid_t)));
  EXPECT_EQ(0, std::memcmp(ooc.col_indices().data(), g.col_indices().data(),
                           g.num_edges() * sizeof(vid_t)));
  ::unlink(path.c_str());
}

TEST(OocCsrTest, TruncatedShardFileFailsStructured) {
  CsrGraph g = TestGraph(8);
  const std::string path = testing::TempDir() + "/ooc_truncated.bin";
  ASSERT_TRUE(graph::WriteBinaryCsr(g, path).ok());
  struct stat st;
  ASSERT_EQ(0, ::stat(path.c_str(), &st));
  ASSERT_EQ(0, ::truncate(path.c_str(), st.st_size - 7));
  auto opened = OocCsr::Open(path, 32 << 10);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIOError);
  ::unlink(path.c_str());
}

TEST(EstimateStreamedBytesTest, OnlyBfsAndPageRankStream) {
  EXPECT_TRUE(EstimateStreamedBytes(core::Algo::kBfs, 1000, false, 0).ok());
  EXPECT_TRUE(
      EstimateStreamedBytes(core::Algo::kPageRank, 1000, false, 0).ok());
  auto tc = EstimateStreamedBytes(core::Algo::kTriangleCount, 1000, false, 0);
  ASSERT_FALSE(tc.ok());
  EXPECT_EQ(tc.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Byte-identity on over-budget devices (the acceptance property), across
// three bundled dataset proxies.

class StreamedIdentityTest : public testing::TestWithParam<const char*> {};

TEST_P(StreamedIdentityTest, OverBudgetGraphMatchesInMemoryByteForByte) {
  auto spec = graph::FindDataset(GetParam()).value();
  auto g = Shared(graph::Materialize(spec, /*extra_divisor=*/64.0).value());
  const uint64_t shard_bytes = FullPageRankBytes(*g) / 8;

  // Reference results from a device roomy enough for the in-memory path.
  vgpu::Device roomy(vgpu::A100Config());
  core::BfsOptions bfs_options;
  auto ref_bfs = core::Run(&roomy, {core::Algo::kBfs}, *g, bfs_options);
  ASSERT_TRUE(ref_bfs.ok()) << ref_bfs.status().message();
  core::PageRankOptions pr_options;
  auto ref_pr = core::Run(&roomy, {core::Algo::kPageRank}, *g, pr_options);
  ASSERT_TRUE(ref_pr.ok()) << ref_pr.status().message();

  // The small device cannot run the in-memory paths at all...
  vgpu::Device small = SmallDevice(*g, shard_bytes);
  EXPECT_FALSE(core::Run(&small, {core::Algo::kPageRank}, *g, pr_options).ok())
      << "device unexpectedly fit the whole graph; shrink memory_scale"
      << " n=" << g->num_vertices() << " m=" << g->num_edges()
      << " full=" << FullPageRankBytes(*g)
      << " capacity=" << small.memory_capacity_bytes();

  // ...but the streamed path completes, byte-identical.
  OocOptions ooc;
  ooc.shard_bytes = shard_bytes;
  StreamedStats bfs_stats;
  auto got_bfs = RunStreamed(&small, core::Algo::kBfs, g, bfs_options, ooc,
                             &bfs_stats);
  ASSERT_TRUE(got_bfs.ok()) << got_bfs.status().message();
  const auto& want_bfs = std::get<core::BfsResult>(*ref_bfs);
  const auto& have_bfs = std::get<core::BfsResult>(*got_bfs);
  ASSERT_EQ(have_bfs.levels.size(), want_bfs.levels.size());
  EXPECT_EQ(0, std::memcmp(have_bfs.levels.data(), want_bfs.levels.data(),
                           want_bfs.levels.size() * sizeof(uint32_t)));
  EXPECT_EQ(have_bfs.depth, want_bfs.depth);
  EXPECT_EQ(have_bfs.vertices_visited, want_bfs.vertices_visited);
  EXPECT_EQ(have_bfs.top_down_iterations, want_bfs.top_down_iterations);
  EXPECT_GE(bfs_stats.num_shards, 2u);

  StreamedStats pr_stats;
  auto got_pr = RunStreamed(&small, core::Algo::kPageRank, g, pr_options, ooc,
                            &pr_stats);
  ASSERT_TRUE(got_pr.ok()) << got_pr.status().message();
  const auto& want_pr = std::get<core::PageRankResult>(*ref_pr);
  const auto& have_pr = std::get<core::PageRankResult>(*got_pr);
  ASSERT_EQ(have_pr.ranks.size(), want_pr.ranks.size());
  EXPECT_EQ(0, std::memcmp(have_pr.ranks.data(), want_pr.ranks.data(),
                           want_pr.ranks.size() * sizeof(double)));
  EXPECT_EQ(have_pr.iterations, want_pr.iterations);
  EXPECT_EQ(have_pr.l1_delta, want_pr.l1_delta);

  // Overlap model sanity: the pipeline can only help, and every PageRank
  // iteration re-streams the shards.
  EXPECT_GT(pr_stats.shards_staged,
            static_cast<uint64_t>(pr_stats.num_shards));
  EXPECT_LE(pr_stats.overlapped_ms, pr_stats.serialized_ms * (1 + 1e-9));
  EXPECT_GE(pr_stats.overlap_speedup(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Proxies, StreamedIdentityTest,
                         testing::Values("web-Google", "soc-liveJournal1",
                                         "cit-Patents"));

TEST(StreamedTest, DiskBackedRunMatchesInMemory) {
  auto g = Shared(TestGraph());
  const std::string path = testing::TempDir() + "/ooc_disk_run.bin";
  CsrGraph pull =
      core::BuildHostVariant(*g, core::GraphVariant::kPullTranspose).value();
  OocCsr disk_pull = OocCsr::Spill(pull, path, 24 << 10).value();
  ASSERT_TRUE(disk_pull.disk_backed());

  vgpu::Device roomy(vgpu::A100Config());
  core::PageRankOptions options;
  auto want = core::RunPageRank(&roomy, *g, options).value();

  vgpu::Device small = SmallDevice(*g, 24 << 10);
  auto got = RunStreamedPageRank(&small, disk_pull, g->row_offsets(), options,
                                 {});
  ASSERT_TRUE(got.ok()) << got.status().message();
  ASSERT_EQ(got->ranks.size(), want.ranks.size());
  EXPECT_EQ(0, std::memcmp(got->ranks.data(), want.ranks.data(),
                           want.ranks.size() * sizeof(double)));
  EXPECT_EQ(got->iterations, want.iterations);
  ::unlink(path.c_str());
}

TEST(StreamedTest, ZeroEdgeShardsStillWriteIdentity) {
  // Star graph: after the hub's shard, every shard is pure zero-edge rows;
  // PageRank must still launch the SpMV over them so next[u] gets the
  // semiring identity instead of stale bytes.
  const vid_t n = 256;
  std::vector<eid_t> rows(n + 1, n - 1);
  rows[0] = 0;
  std::vector<vid_t> cols(n - 1);
  for (vid_t v = 1; v < n; ++v) cols[v - 1] = v;
  auto g = Shared(CsrGraph::FromArrays(n, rows, cols, {}).value());

  vgpu::Device roomy(vgpu::A100Config());
  core::PageRankOptions options;
  auto want = core::RunPageRank(&roomy, *g, options).value();

  vgpu::Device device(vgpu::A100Config());
  OocOptions ooc;
  ooc.shard_bytes = 512;  // forces many zero-edge shards
  auto got =
      RunStreamed(&device, core::Algo::kPageRank, g, options, ooc, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().message();
  const auto& have = std::get<core::PageRankResult>(*got);
  EXPECT_EQ(0, std::memcmp(have.ranks.data(), want.ranks.data(),
                           want.ranks.size() * sizeof(double)));
  EXPECT_EQ(have.iterations, want.iterations);
}

TEST(StreamedTest, ComputeParentsIsRejected) {
  auto g = Shared(TestGraph(7));
  vgpu::Device device(vgpu::A100Config());
  core::BfsOptions options;
  options.compute_parents = true;
  auto r = RunStreamed(&device, core::Algo::kBfs, g, options, {}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamedTest, UnsupportedAlgorithmIsRejected) {
  auto g = Shared(TestGraph(7));
  vgpu::Device device(vgpu::A100Config());
  auto r = RunStreamed(&device, core::Algo::kTriangleCount, g,
                       core::TcOptions{}, {}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Fault injection

TEST(StreamedFaultTest, CopyFaultMidStreamAbortsCleanlyAndDeviceSurvives) {
  auto g = Shared(TestGraph());
  vgpu::Device device(vgpu::A100Config());
  const uint64_t used_before = device.memory_used_bytes();

  OocOptions ooc;
  ooc.shard_bytes = FullPageRankBytes(*g) / 8;
  uint64_t calls = 0;
  ooc.copy_fault = [&calls](uint64_t stage, uint32_t) -> Status {
    calls += 1;
    if (stage == 3) return Status::Internal("injected staged-copy fault");
    return Status::OK();
  };
  core::PageRankOptions options;
  auto r = RunStreamed(&device, core::Algo::kPageRank, g, options, ooc,
                       nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("injected"), std::string::npos);
  EXPECT_GE(calls, 4u);  // it got as far as stage 3, then stopped
  // RAII unwound every device allocation: nothing leaked.
  EXPECT_EQ(device.memory_used_bytes(), used_before);

  // The device remains usable: the same run without the fault completes.
  ooc.copy_fault = nullptr;
  auto ok = RunStreamed(&device, core::Algo::kPageRank, g, options, ooc,
                        nullptr);
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  EXPECT_EQ(device.memory_used_bytes(), used_before);
}

TEST(StreamedFaultTest, BfsCopyFaultLeavesNoPartialResult) {
  auto g = Shared(TestGraph());
  vgpu::Device device(vgpu::A100Config());
  const uint64_t used_before = device.memory_used_bytes();
  OocOptions ooc;
  ooc.shard_bytes = 16 << 10;
  ooc.copy_fault = [](uint64_t stage, uint32_t) {
    return stage == 0 ? Status::IOError("shard backing store went away")
                      : Status::OK();
  };
  auto r = RunStreamed(&device, core::Algo::kBfs, g, core::BfsOptions{}, ooc,
                       nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(device.memory_used_bytes(), used_before);
}

}  // namespace
}  // namespace adgraph::ooc
