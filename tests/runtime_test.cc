#include <gtest/gtest.h>

#include <thread>

#include "runtime/runtime.h"
#include "runtime/stream.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::rt {
namespace {

using vgpu::A100Config;
using vgpu::Device;
using vgpu::Z100LConfig;

TEST(PlatformTest, VendorsMapToPlatforms) {
  Device a100(A100Config());
  Device z100l(Z100LConfig());
  EXPECT_EQ(PlatformOf(a100), Platform::kCuda);
  EXPECT_EQ(PlatformOf(z100l), Platform::kRocmLike);
  EXPECT_EQ(PlatformName(Platform::kCuda), "CUDA");
  EXPECT_EQ(PlatformName(Platform::kRocmLike), "ROCm-like");
  EXPECT_EQ(LibraryNameOn(Platform::kCuda), "nvGRAPH");
  EXPECT_EQ(LibraryNameOn(Platform::kRocmLike), "adGRAPH");
}

TEST(DeviceBufferTest, UploadDownloadRoundTrip) {
  Device dev(A100Config());
  std::vector<double> host{1.5, 2.5, 3.5};
  auto buf = DeviceBuffer<double>::FromHost(&dev, host).value();
  EXPECT_EQ(buf.size(), 3u);
  auto back = buf.ToHost().value();
  EXPECT_EQ(back, host);
}

TEST(DeviceBufferTest, CreateZeroed) {
  Device dev(A100Config());
  auto buf = DeviceBuffer<uint32_t>::CreateZeroed(&dev, 16).value();
  for (uint32_t v : buf.ToHost().value()) EXPECT_EQ(v, 0u);
}

TEST(DeviceBufferTest, PartialUploadWithOffset) {
  Device dev(A100Config());
  auto buf = DeviceBuffer<uint32_t>::CreateZeroed(&dev, 8).value();
  uint32_t vals[2] = {7, 9};
  ASSERT_TRUE(buf.Upload(vals, 2, /*dst_offset=*/3).ok());
  auto host = buf.ToHost().value();
  EXPECT_EQ(host[3], 7u);
  EXPECT_EQ(host[4], 9u);
  EXPECT_EQ(host[0], 0u);
}

TEST(DeviceBufferTest, BoundsChecked) {
  Device dev(A100Config());
  auto buf = DeviceBuffer<uint32_t>::CreateZeroed(&dev, 4).value();
  uint32_t vals[4] = {};
  EXPECT_FALSE(buf.Upload(vals, 4, 1).ok());
  EXPECT_FALSE(buf.Download(vals, 3, 2).ok());
}

TEST(DeviceBufferTest, MoveTransfersOwnership) {
  Device dev(A100Config());
  uint64_t before = dev.memory_used_bytes();
  {
    auto a = DeviceBuffer<uint32_t>::CreateZeroed(&dev, 1024).value();
    EXPECT_GT(dev.memory_used_bytes(), before);
    DeviceBuffer<uint32_t> b = std::move(a);
    EXPECT_EQ(b.size(), 1024u);
    EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  }
  EXPECT_EQ(dev.memory_used_bytes(), before) << "destructor freed memory";
}

TEST(DeviceBufferTest, AllocationFailurePropagatesOom) {
  vgpu::Device::Options options;
  options.memory_scale = 1e6;  // shrink the A100 to ~84 KB
  Device dev(A100Config(), options);
  auto result = DeviceBuffer<double>::Create(&dev, 1 << 20);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory());
}


TEST(StreamTest, LaunchesPrefixKernelNames) {
  Device dev(A100Config());
  Stream stream(&dev, "upload");
  auto st = stream.Launch("fill", {1, 32}, [](vgpu::Ctx& c) -> vgpu::KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(stream.launches(), 1u);
  EXPECT_EQ(dev.kernel_log().back().kernel_name, "upload/fill");
}

TEST(StreamTest, EventsMeasureIntervals) {
  Device dev(A100Config());
  Stream stream(&dev);
  Event start, stop;
  ASSERT_TRUE(stream.Record(&start).ok());
  auto work = [](vgpu::Ctx& c) -> vgpu::KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  ASSERT_TRUE(stream.Launch("work", {32, 256}, work).ok());
  ASSERT_TRUE(stream.Record(&stop).ok());
  auto elapsed = ElapsedTime(start, stop);
  ASSERT_TRUE(elapsed.ok());
  EXPECT_GT(*elapsed, 0.0);
  EXPECT_NEAR(*elapsed, dev.elapsed_ms() - start.timestamp_ms(), 1e-12);
}

TEST(StreamTest, UnrecordedEventsRejected) {
  Event a, b;
  EXPECT_FALSE(ElapsedTime(a, b).ok());
  Device dev(A100Config());
  Stream stream(&dev);
  ASSERT_TRUE(stream.Record(&a).ok());
  EXPECT_FALSE(ElapsedTime(a, b).ok());
  EXPECT_FALSE(stream.Record(nullptr).ok());
  EXPECT_TRUE(stream.Synchronize().ok());
}

TEST(StreamTest, ThreadConfinementEnforced) {
  Device dev(A100Config());
  Stream stream(&dev);
  Event event;
  auto work = [](vgpu::Ctx& c) -> vgpu::KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  };
  // On the owning (constructing) thread everything works...
  ASSERT_TRUE(stream.Launch("owned", {1, 32}, work).ok());
  ASSERT_TRUE(stream.Record(&event).ok());

  // ...from any other thread both Launch and Record are refused instead of
  // racing on the single-threaded device underneath.
  Status launch_status;
  Status record_status;
  std::thread foreign([&] {
    launch_status = stream.Launch("foreign", {1, 32}, work).status();
    record_status = stream.Record(&event);
  });
  foreign.join();
  EXPECT_FALSE(launch_status.ok());
  EXPECT_NE(launch_status.message().find("thread"), std::string::npos);
  EXPECT_FALSE(record_status.ok());
  EXPECT_EQ(stream.launches(), 1u) << "the foreign launch must not count";
  EXPECT_EQ(dev.kernel_log().size(), 1u);

  // A stream constructed *on* a worker thread is owned by that thread.
  Status worker_status = Status::Internal("not run");
  std::thread worker([&] {
    Device worker_dev(A100Config());
    Stream worker_stream(&worker_dev, "worker");
    worker_status = worker_stream.Launch("ok", {1, 32}, work).status();
  });
  worker.join();
  EXPECT_TRUE(worker_status.ok()) << worker_status.ToString();
}

TEST(CoverThreadsTest, CeilDivGrid) {
  auto dims = CoverThreads(1000, 256);
  EXPECT_EQ(dims.grid, 4u);
  EXPECT_EQ(dims.block, 256u);
  EXPECT_EQ(CoverThreads(1024, 256).grid, 4u);
  EXPECT_EQ(CoverThreads(1025, 256).grid, 5u);
  EXPECT_EQ(CoverThreads(0, 256).grid, 1u);
  EXPECT_EQ(CoverThreads(10, 128, 64).shared_bytes, 64u);
}

TEST(DeviceTimerTest, MeasuresKernelTimeOnly) {
  Device dev(A100Config());
  DeviceTimer outer(&dev);
  EXPECT_EQ(outer.ElapsedMs(), 0.0);
  auto st = dev.Launch("nop", {64, 256}, [](vgpu::Ctx& c) -> vgpu::KernelTask {
    c.Add(c.GlobalThreadId(), 1u);
    co_return;
  });
  ASSERT_TRUE(st.ok());
  EXPECT_GT(outer.ElapsedMs(), 0.0);
  DeviceTimer after(&dev);
  EXPECT_EQ(after.ElapsedMs(), 0.0);
}

TEST(DeviceTest, TransferTimeTracked) {
  Device dev(A100Config());
  std::vector<double> host(1 << 16, 1.0);
  double before = dev.transfer_ms();
  auto buf = DeviceBuffer<double>::FromHost(&dev, host).value();
  EXPECT_GT(dev.transfer_ms(), before);
  EXPECT_EQ(dev.elapsed_ms(), 0.0) << "transfers are not kernel time";
}

TEST(DeviceTest, MemoryScaleShrinksCapacity) {
  vgpu::Device::Options options;
  options.memory_scale = 192;
  Device dev(vgpu::Z100Config(), options);
  EXPECT_EQ(dev.memory_capacity_bytes(), (16ull << 30) / 192);
}

}  // namespace
}  // namespace adgraph::rt
