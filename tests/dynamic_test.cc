// Dynamic-graph tests (DESIGN.md §2.12): DeltaGraph mutation semantics,
// randomized materialization/fingerprint equivalence against a shadow
// rebuild, versioned-residency staleness (the regression the epoch key
// fixes), and incremental recompute agreement with full recompute.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "core/api.h"
#include "core/incremental.h"
#include "core/residency.h"
#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/datasets.h"
#include "graph/delta.h"
#include "graph/generate.h"
#include "serve/graph_cache.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph {
namespace {

using graph::CsrGraph;
using graph::DeltaGraph;
using graph::EdgeUpdate;
using graph::vid_t;
using graph::weight_t;

CsrGraph SmallGraph() {
  graph::GraphBuilder b(6);
  b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3).AddEdge(3, 4);
  return b.Build().value();
}

// ------------------------------------------------------- mutation semantics

TEST(DeltaGraphTest, AddRemoveVersionAndEdgeCount) {
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  EXPECT_EQ(delta.version(), 0u);
  EXPECT_EQ(delta.num_edges(), 5u);

  EXPECT_TRUE(delta.AddEdge(4, 5).value());
  EXPECT_EQ(delta.version(), 1u);
  EXPECT_EQ(delta.num_edges(), 6u);

  EXPECT_TRUE(delta.RemoveEdge(0, 1).value());
  EXPECT_EQ(delta.version(), 2u);
  EXPECT_EQ(delta.num_edges(), 5u);

  // Deleting a non-live edge is a no-op: no version bump.
  EXPECT_FALSE(delta.RemoveEdge(0, 1).value());
  EXPECT_EQ(delta.version(), 2u);
}

TEST(DeltaGraphTest, DuplicateInsertIsKeepFirstNoOp) {
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  // (0,1) is live in the base: re-inserting must not apply.
  EXPECT_FALSE(delta.AddEdge(0, 1).value());
  EXPECT_EQ(delta.version(), 0u);
  // Same for a pending insert.
  EXPECT_TRUE(delta.AddEdge(5, 0).value());
  EXPECT_FALSE(delta.AddEdge(5, 0).value());
  EXPECT_EQ(delta.version(), 1u);
}

TEST(DeltaGraphTest, SelfLoopsAreLegal) {
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  EXPECT_TRUE(delta.AddEdge(2, 2).value());
  auto m = delta.Materialize().value();
  auto n2 = m.neighbors(2);
  EXPECT_TRUE(std::find(n2.begin(), n2.end(), 2u) != n2.end());
}

TEST(DeltaGraphTest, OutOfRangeVertexIsRejected) {
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  EXPECT_FALSE(delta.AddEdge(0, 6).ok());
  EXPECT_FALSE(delta.RemoveEdge(6, 0).ok());
  EXPECT_EQ(delta.version(), 0u) << "rejected mutations must not count";
}

TEST(DeltaGraphTest, DeleteThenReinsertResurrectsBaseEdge) {
  graph::GraphBuilder b(3);
  b.AddEdge(0, 1, 2.5).AddEdge(1, 2, 7.0);
  auto delta = DeltaGraph::Create(b.Build().value()).value();
  EXPECT_TRUE(delta.RemoveEdge(0, 1).value());
  EXPECT_TRUE(delta.AddEdge(0, 1, 9.0).value());
  auto m = delta.Materialize().value();
  EXPECT_EQ(m.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(m.edge_weights(0)[0], 9.0)
      << "a resurrected edge carries the insert's weight";
}

TEST(DeltaGraphTest, ApplyBatchCountsOnlyEffectiveUpdates) {
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  std::vector<EdgeUpdate> batch = {
      {4, 5, 1, true},   // applies
      {4, 5, 1, true},   // duplicate: no-op
      {0, 1, 1, false},  // applies
      {5, 5, 1, false},  // not live: no-op
  };
  EXPECT_EQ(delta.Apply(batch).value(), 2u);
  EXPECT_EQ(delta.version(), 2u);
}

TEST(DeltaGraphTest, ApplyStopsAtFirstOutOfRangeId) {
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  std::vector<EdgeUpdate> batch = {
      {4, 5, 1, true},
      {0, 99, 1, true},  // out of range: Apply fails here
      {1, 4, 1, true},   // never reached
  };
  EXPECT_FALSE(delta.Apply(batch).ok());
  EXPECT_EQ(delta.version(), 1u) << "updates before the offender are kept";
  EXPECT_EQ(delta.num_edges(), 6u);
}

TEST(DeltaGraphTest, CompactKeepsVersionFamilyAndContent) {
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  ASSERT_TRUE(delta.AddEdge(4, 5).value());
  ASSERT_TRUE(delta.RemoveEdge(0, 2).value());
  const uint64_t family = delta.family_fingerprint();
  const uint64_t version = delta.version();
  auto before = delta.Materialize().value();

  ASSERT_TRUE(delta.Compact().ok());
  EXPECT_EQ(delta.pending_updates(), 0u);
  EXPECT_EQ(delta.family_fingerprint(), family);
  EXPECT_EQ(delta.version(), version);
  auto after = delta.Materialize().value();
  EXPECT_EQ(before.row_offsets(), after.row_offsets());
  EXPECT_EQ(before.col_indices(), after.col_indices());
  EXPECT_EQ(before.ContentFingerprint(), after.ContentFingerprint());
}

TEST(DeltaGraphTest, UpdatesSinceAndTrimHistory) {
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  ASSERT_TRUE(delta.AddEdge(4, 5).value());
  ASSERT_TRUE(delta.AddEdge(5, 4).value());
  ASSERT_TRUE(delta.RemoveEdge(0, 1).value());

  auto all = delta.UpdatesSince(0);
  ASSERT_TRUE(all.has_value());
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ((*all)[0].u, 4u);
  EXPECT_FALSE((*all)[2].insert);

  auto tail = delta.UpdatesSince(2);
  ASSERT_TRUE(tail.has_value());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ(tail->front().u, 0u);

  EXPECT_TRUE(delta.UpdatesSince(3).has_value())
      << "empty suffix is known, not trimmed";

  delta.TrimHistory(1);
  EXPECT_FALSE(delta.UpdatesSince(0).has_value()) << "trimmed range is gone";
  EXPECT_TRUE(delta.UpdatesSince(2).has_value());
}

TEST(DeltaGraphTest, CreateRejectsNonNormalFormBase) {
  // A multigraph build (duplicates kept) is not in normal form.
  graph::CooGraph coo;
  coo.num_vertices = 3;
  coo.AddEdge(0, 1);
  coo.AddEdge(0, 1);
  graph::CsrBuildOptions keep_dups;
  keep_dups.remove_duplicates = false;
  auto base = CsrGraph::FromCoo(coo, keep_dups).value();
  EXPECT_FALSE(DeltaGraph::Create(std::move(base)).ok());
}

// ------------------------------------------------ shared normalization policy

TEST(NormalizationPolicyTest, BuilderKeepsFirstWeightAndSelfLoops) {
  graph::GraphBuilder b(3);
  b.AddEdge(0, 1, 5.0).AddEdge(0, 1, 9.0).AddEdge(1, 1, 2.0);
  auto g = b.Build().value();
  EXPECT_EQ(g.num_edges(), 2u) << "duplicates collapse";
  EXPECT_DOUBLE_EQ(g.edge_weights(0)[0], 5.0) << "first weight wins";
  auto n1 = g.neighbors(1);
  ASSERT_EQ(n1.size(), 1u);
  EXPECT_EQ(n1[0], 1u) << "self loops are kept";
}

TEST(NormalizationPolicyTest, GeneratorsEmitNormalFormDeltaBasesAccept) {
  // The policy satellite: a raw generator COO normalized under the shared
  // default policy (keep-first duplicates, self loops kept) is in normal
  // form, so DeltaGraph::Create accepts it directly.
  auto rmat = graph::GenerateRmat({.scale = 8, .edge_factor = 8, .seed = 3})
                  .value();
  auto g = CsrGraph::FromCoo(rmat, graph::GraphBuilder::DefaultBuildOptions())
               .value();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto n = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
    EXPECT_TRUE(std::adjacent_find(n.begin(), n.end()) == n.end())
        << "duplicate neighbor at vertex " << v;
  }
  EXPECT_TRUE(DeltaGraph::Create(std::move(g)).ok());
}

// ---------------------------------------------------- randomized equivalence

/// Shadow model of the live edge set, rebuilt from scratch through the
/// normal CSR construction path for comparison.
using ShadowEdges = std::map<std::pair<vid_t, vid_t>, weight_t>;

CsrGraph RebuildFromShadow(vid_t n, const ShadowEdges& edges, bool weighted) {
  graph::CooGraph coo;
  coo.num_vertices = n;
  for (const auto& [uv, w] : edges) {
    if (weighted) {
      coo.AddEdge(uv.first, uv.second, w);
    } else {
      coo.AddEdge(uv.first, uv.second);
    }
  }
  return CsrGraph::FromCoo(coo, graph::GraphBuilder::DefaultBuildOptions())
      .value();
}

void ExpectMatchesShadow(const DeltaGraph& delta, vid_t n,
                         const ShadowEdges& shadow, bool weighted,
                         const char* where) {
  auto m = delta.Materialize().value();
  auto rebuilt = RebuildFromShadow(n, shadow, weighted);
  ASSERT_EQ(m.row_offsets(), rebuilt.row_offsets()) << where;
  ASSERT_EQ(m.col_indices(), rebuilt.col_indices()) << where;
  if (weighted) {
    ASSERT_EQ(m.weights(), rebuilt.weights()) << where;
  }
  ASSERT_EQ(m.ContentFingerprint(), rebuilt.ContentFingerprint())
      << where << ": fingerprint must be byte-identical to a from-scratch "
      << "rebuild";
  ASSERT_EQ(delta.num_edges(), rebuilt.num_edges()) << where;
}

/// 200 random insert/delete/compact steps against `base`, checking the
/// materialized graph and its fingerprint against the shadow rebuild at
/// every compaction and every 50th step.
void FuzzMutations(CsrGraph base, uint64_t seed) {
  const vid_t n = base.num_vertices();
  const bool weighted = base.has_weights();
  ShadowEdges shadow;
  for (vid_t u = 0; u < n; ++u) {
    auto neigh = base.neighbors(u);
    for (size_t i = 0; i < neigh.size(); ++i) {
      shadow[{u, neigh[i]}] = weighted ? base.edge_weights(u)[i] : 1;
    }
  }
  auto delta = DeltaGraph::Create(std::move(base)).value();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  uint64_t expected_version = 0;
  for (int step = 1; step <= 200; ++step) {
    const uint32_t roll = rng() % 100;
    if (roll < 55) {  // random insert (may duplicate)
      vid_t u = pick(rng), v = pick(rng);
      weight_t w = static_cast<weight_t>(1 + rng() % 7);
      bool applied = delta.AddEdge(u, v, w).value();
      EXPECT_EQ(applied, shadow.emplace(std::make_pair(u, v), w).second);
      if (applied) ++expected_version;
    } else if (roll < 75 && !shadow.empty()) {  // delete a live edge
      auto it = shadow.begin();
      std::advance(it, static_cast<long>(rng() % shadow.size()));
      auto [u, v] = it->first;
      EXPECT_TRUE(delta.RemoveEdge(u, v).value());
      shadow.erase(it);
      ++expected_version;
    } else if (roll < 90) {  // delete a random pair (usually a no-op)
      vid_t u = pick(rng), v = pick(rng);
      bool applied = delta.RemoveEdge(u, v).value();
      EXPECT_EQ(applied, shadow.erase({u, v}) > 0);
      if (applied) ++expected_version;
    } else {  // compact
      ASSERT_TRUE(delta.Compact().ok());
      ASSERT_NO_FATAL_FAILURE(ExpectMatchesShadow(
          delta, n, shadow, weighted, "after compact"));
    }
    ASSERT_EQ(delta.version(), expected_version) << "step " << step;
    if (step % 50 == 0) {
      ASSERT_NO_FATAL_FAILURE(
          ExpectMatchesShadow(delta, n, shadow, weighted, "periodic check"));
    }
  }
  ASSERT_NO_FATAL_FAILURE(
      ExpectMatchesShadow(delta, n, shadow, weighted, "final state"));
}

CsrGraph ProxyGraph(const char* name, double extra_divisor) {
  auto spec = graph::FindDataset(name).value();
  return graph::Materialize(spec, extra_divisor).value();
}

TEST(DeltaGraphFuzzTest, WebStanfordProxy) {
  FuzzMutations(ProxyGraph("web-Stanford", 64.0), 0xDE17A1);
}

TEST(DeltaGraphFuzzTest, WebGoogleProxy) {
  FuzzMutations(ProxyGraph("web-Google", 128.0), 0xDE17A2);
}

TEST(DeltaGraphFuzzTest, CitPatentsProxy) {
  FuzzMutations(ProxyGraph("cit-Patents", 512.0), 0xDE17A3);
}

TEST(DeltaGraphFuzzTest, WeightedBase) {
  auto rmat = graph::GenerateRmat({.scale = 7, .edge_factor = 6, .seed = 11})
                  .value();
  auto g = CsrGraph::FromCoo(rmat, graph::GraphBuilder::DefaultBuildOptions())
               .value()
               .WithUniformWeights(1.0);
  FuzzMutations(std::move(g), 0xDE17A4);
}

// ------------------------------------------------- versioned residency keys

std::shared_ptr<const CsrGraph> Snap(DeltaGraph& delta) {
  return delta.Snapshot().value();
}

// The stale-residency regression (the bug this PR fixes): before the epoch
// joined the cache key, a mutated graph's snapshot — same family
// fingerprint, new content — was *served from the stale resident copy*.
TEST(StaleResidencyTest, MutatedSnapshotMissesInsteadOfServingStale) {
  vgpu::Device device(vgpu::A100Config());
  serve::GraphCache cache(&device, {});
  auto delta = DeltaGraph::Create(SmallGraph()).value();

  auto snap0 = Snap(delta);
  {
    auto h = cache.Acquire(&device, *snap0, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok());
  }
  ASSERT_EQ(cache.stats().misses, 1u);

  ASSERT_TRUE(delta.AddEdge(4, 5).value());
  auto snap1 = Snap(delta);
  // The trap: both snapshots fingerprint to the family id.  Only the epoch
  // tells them apart.
  ASSERT_EQ(snap0->ContentFingerprint(), snap1->ContentFingerprint());
  ASSERT_LT(snap0->mutation_epoch(), snap1->mutation_epoch());

  auto h = cache.Acquire(&device, *snap1, core::GraphVariant::kAsIs);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(cache.stats().hits, 0u)
      << "a content-only cache key would serve the stale resident copy here";
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(StaleResidencyTest, InvalidateDropsOldEpochsKeepsCurrent) {
  vgpu::Device device(vgpu::A100Config());
  serve::GraphCache cache(&device, {});
  auto delta = DeltaGraph::Create(SmallGraph()).value();

  auto snap0 = Snap(delta);
  { auto h = cache.Acquire(&device, *snap0, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  ASSERT_TRUE(delta.AddEdge(4, 5).value());
  auto snap1 = Snap(delta);
  { auto h = cache.Acquire(&device, *snap1, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  ASSERT_EQ(cache.num_entries(), 2u);

  // Drop epochs older than the current version; the fresh entry survives.
  EXPECT_EQ(cache.Invalidate(delta.family_fingerprint(), delta.version()),
            1u);
  EXPECT_EQ(cache.stats().stale_invalidated, 1u);
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_TRUE(cache.PinIfResident(*snap1, core::GraphVariant::kAsIs)
                  .from_cache());
  EXPECT_FALSE(cache.PinIfResident(*snap0, core::GraphVariant::kAsIs)
                   .from_cache());

  // A family-wide invalidate clears the rest.
  EXPECT_EQ(cache.Invalidate(delta.family_fingerprint()), 1u);
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(StaleResidencyTest, PinnedEntryIsDoomedNotServedThenErasedOnUnpin) {
  vgpu::Device device(vgpu::A100Config());
  serve::GraphCache cache(&device, {});
  auto delta = DeltaGraph::Create(SmallGraph()).value();
  auto snap0 = Snap(delta);

  auto pin = cache.Acquire(&device, *snap0, core::GraphVariant::kAsIs);
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(cache.Invalidate(delta.family_fingerprint()), 1u)
      << "a pinned entry is doomed, and still counts";
  // Doomed: the in-flight reader keeps its arrays, but no new job may be
  // served from the stale copy.
  EXPECT_FALSE(cache.PinIfResident(*snap0, core::GraphVariant::kAsIs)
                   .from_cache());
  EXPECT_EQ(cache.num_entries(), 1u) << "erase waits for the last unpin";

  pin = core::ResidentCsr();  // drop the pin
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(StaleResidencyTest, StaticGraphsKeepContentAddressedSharing) {
  // Epoch 0 graphs (every static load path) must still share residency by
  // content, exactly as before this PR.
  vgpu::Device device(vgpu::A100Config());
  serve::GraphCache cache(&device, {});
  auto a = SmallGraph();
  auto b = SmallGraph();
  { auto h = cache.Acquire(&device, a, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  { auto h = cache.Acquire(&device, b, core::GraphVariant::kAsIs);
    ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(cache.stats().hits, 1u);
}

// ---------------------------------------------------- incremental recompute

struct IncrementalFixture {
  vgpu::Device device{vgpu::A100Config()};
  DeltaGraph delta;
  core::AlgoResult previous;
  uint64_t previous_version = 0;

  explicit IncrementalFixture(core::Algo algo, const core::Params& params,
                              uint32_t scale = 9) {
    auto coo =
        graph::GenerateRmat({.scale = scale, .edge_factor = 8, .seed = 5})
            .value();
    delta = DeltaGraph::Create(
                CsrGraph::FromCoo(coo,
                                  graph::GraphBuilder::DefaultBuildOptions())
                    .value())
                .value();
    auto snap = delta.Snapshot().value();
    previous =
        core::Run(&device, {algo}, *snap, params).value();
    previous_version = delta.version();
  }

  /// Applies `count` deterministic inserts that are absent from the graph.
  uint64_t InsertNovelEdges(int count, uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<vid_t> pick(0, delta.num_vertices() - 1);
    uint64_t applied = 0;
    while (applied < static_cast<uint64_t>(count)) {
      if (delta.AddEdge(pick(rng), pick(rng)).value()) ++applied;
    }
    return applied;
  }
};

TEST(IncrementalTest, BfsLevelsMatchFullRecomputeBitwise) {
  core::BfsOptions options;
  options.source = 1;
  IncrementalFixture fx(core::Algo::kBfs, options);
  fx.InsertNovelEdges(24, 77);

  core::IncrementalInfo info;
  auto inc = core::RunIncremental(&fx.device, {core::Algo::kBfs}, fx.delta,
                                  options, fx.previous, fx.previous_version,
                                  {}, nullptr, &info)
                 .value();
  EXPECT_TRUE(info.incremental) << info.fallback_reason;
  EXPECT_GT(info.seed_vertices, 0u);

  auto full = core::Run(&fx.device, {core::Algo::kBfs},
                        *fx.delta.Snapshot().value(), options)
                  .value();
  const auto& inc_bfs = std::get<core::BfsResult>(inc);
  const auto& full_bfs = std::get<core::BfsResult>(full);
  EXPECT_EQ(inc_bfs.levels, full_bfs.levels);
  EXPECT_EQ(inc_bfs.depth, full_bfs.depth);
  EXPECT_EQ(inc_bfs.vertices_visited, full_bfs.vertices_visited);
}

TEST(IncrementalTest, CcLabelsMatchFullRecomputeBitwise) {
  core::CcOptions options;
  IncrementalFixture fx(core::Algo::kConnectedComponents, options);
  fx.InsertNovelEdges(24, 78);

  core::IncrementalInfo info;
  auto inc = core::RunIncremental(&fx.device,
                                  {core::Algo::kConnectedComponents},
                                  fx.delta, options, fx.previous,
                                  fx.previous_version, {}, nullptr, &info)
                 .value();
  EXPECT_TRUE(info.incremental) << info.fallback_reason;

  auto full = core::Run(&fx.device, {core::Algo::kConnectedComponents},
                        *fx.delta.Snapshot().value(), options)
                  .value();
  const auto& inc_cc = std::get<core::CcResult>(inc);
  const auto& full_cc = std::get<core::CcResult>(full);
  EXPECT_EQ(inc_cc.labels, full_cc.labels);
  EXPECT_EQ(inc_cc.num_components, full_cc.num_components);
}

TEST(IncrementalTest, PageRankWarmStartAgreesWithinTolerance) {
  core::PageRankOptions options;
  options.max_iterations = 200;
  options.tolerance = 1e-10;
  IncrementalFixture fx(core::Algo::kPageRank, options);
  fx.InsertNovelEdges(16, 79);
  ASSERT_TRUE(fx.delta.RemoveEdge(0, fx.delta.num_vertices() - 1).ok())
      << "PageRank's delta path must also take deletions";

  core::IncrementalInfo info;
  auto inc = core::RunIncremental(&fx.device, {core::Algo::kPageRank},
                                  fx.delta, options, fx.previous,
                                  fx.previous_version, {}, nullptr, &info)
                 .value();
  EXPECT_TRUE(info.incremental) << info.fallback_reason;

  auto full = core::Run(&fx.device, {core::Algo::kPageRank},
                        *fx.delta.Snapshot().value(), options)
                  .value();
  const auto& inc_pr = std::get<core::PageRankResult>(inc);
  const auto& full_pr = std::get<core::PageRankResult>(full);
  ASSERT_EQ(inc_pr.ranks.size(), full_pr.ranks.size());
  for (size_t v = 0; v < full_pr.ranks.size(); ++v) {
    EXPECT_NEAR(inc_pr.ranks[v], full_pr.ranks[v], 1e-6) << "vertex " << v;
  }
  // The point of warm starting: fewer iterations than the cold run.
  EXPECT_LE(inc_pr.iterations, full_pr.iterations);
}

TEST(IncrementalTest, FallbackReasonsAreReported) {
  core::BfsOptions options;
  options.source = 0;
  IncrementalFixture fx(core::Algo::kBfs, options);
  fx.InsertNovelEdges(4, 80);

  // force_full.
  {
    core::IncrementalInfo info;
    core::IncrementalOptions inc_options;
    inc_options.force_full = true;
    auto r = core::RunIncremental(&fx.device, {core::Algo::kBfs}, fx.delta,
                                  options, fx.previous, fx.previous_version,
                                  inc_options, nullptr, &info);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(info.incremental);
    EXPECT_EQ(info.fallback_reason, "forced full recompute");
  }
  // Delta over the threshold.
  {
    core::IncrementalInfo info;
    core::IncrementalOptions inc_options;
    inc_options.full_threshold = 0.0;
    auto r = core::RunIncremental(&fx.device, {core::Algo::kBfs}, fx.delta,
                                  options, fx.previous, fx.previous_version,
                                  inc_options, nullptr, &info);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(info.incremental);
    EXPECT_EQ(info.fallback_reason,
              "delta exceeds the full-recompute threshold");
  }
  // Trimmed history.
  {
    fx.delta.TrimHistory(0);
    core::IncrementalInfo info;
    auto r = core::RunIncremental(&fx.device, {core::Algo::kBfs}, fx.delta,
                                  options, fx.previous, fx.previous_version,
                                  {}, nullptr, &info);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(info.incremental);
    EXPECT_EQ(info.fallback_reason,
              "update history unavailable for the previous version");
  }
}

TEST(IncrementalTest, BfsDeletionFallsBackAndStillMatchesFull) {
  core::BfsOptions options;
  options.source = 0;
  IncrementalFixture fx(core::Algo::kBfs, options);
  fx.InsertNovelEdges(4, 81);
  // Delete one base edge: BFS re-expansion is insert-only, so this must
  // fall back — and the fallback result must equal the full recompute.
  auto snap = fx.delta.Snapshot().value();
  vid_t u = 0;
  while (snap->degree(u) == 0) ++u;
  ASSERT_TRUE(fx.delta.RemoveEdge(u, snap->neighbors(u)[0]).value());

  core::IncrementalInfo info;
  auto r = core::RunIncremental(&fx.device, {core::Algo::kBfs}, fx.delta,
                                options, fx.previous, fx.previous_version,
                                {}, nullptr, &info)
               .value();
  EXPECT_FALSE(info.incremental);
  EXPECT_EQ(info.fallback_reason,
            "deletion in delta (BFS re-expansion is insert-only)");
  auto full = core::Run(&fx.device, {core::Algo::kBfs},
                        *fx.delta.Snapshot().value(), options)
                  .value();
  EXPECT_EQ(std::get<core::BfsResult>(r).levels,
            std::get<core::BfsResult>(full).levels);
}

TEST(IncrementalTest, MismatchedPreviousResultFallsBack) {
  core::BfsOptions options;
  IncrementalFixture fx(core::Algo::kBfs, options);
  fx.InsertNovelEdges(2, 82);

  // Previous result from a different algorithm.
  core::IncrementalInfo info;
  core::AlgoResult wrong = core::CcResult{};
  auto r = core::RunIncremental(&fx.device, {core::Algo::kBfs}, fx.delta,
                                options, wrong, fx.previous_version, {},
                                nullptr, &info);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(info.incremental);
  EXPECT_EQ(info.fallback_reason,
            "previous result is from a different algorithm");

  // Parents requested: levels-only maintenance can't produce them.
  core::BfsOptions with_parents = options;
  with_parents.compute_parents = true;
  core::IncrementalInfo parents_info;
  auto pr = core::RunIncremental(&fx.device, {core::Algo::kBfs}, fx.delta,
                                 with_parents, fx.previous,
                                 fx.previous_version, {}, nullptr,
                                 &parents_info);
  ASSERT_TRUE(pr.ok());
  EXPECT_FALSE(parents_info.incremental);
  EXPECT_EQ(parents_info.fallback_reason,
            "parents requested (no incremental maintenance)");
}

TEST(IncrementalTest, SnapshotFeedsVersionedResidency) {
  // End-to-end: incremental runs through the residency cache must never hit
  // an entry from a previous version.
  core::BfsOptions options;
  IncrementalFixture fx(core::Algo::kBfs, options);
  serve::GraphCache cache(&fx.device, {});

  auto snap0 = fx.delta.Snapshot().value();
  auto r0 = core::Run(&fx.device, {core::Algo::kBfs}, *snap0, options,
                      &cache);
  ASSERT_TRUE(r0.ok());
  const uint64_t misses_before = cache.stats().misses;

  fx.InsertNovelEdges(8, 83);
  core::IncrementalInfo info;
  auto r1 = core::RunIncremental(&fx.device, {core::Algo::kBfs}, fx.delta,
                                 options, fx.previous, fx.previous_version,
                                 {}, &cache, &info);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(info.incremental) << info.fallback_reason;
  EXPECT_GT(cache.stats().misses, misses_before)
      << "the new version must upload fresh, not reuse the stale copy";
  auto full = core::Run(&fx.device, {core::Algo::kBfs},
                        *fx.delta.Snapshot().value(), options)
                  .value();
  EXPECT_EQ(std::get<core::BfsResult>(*r1).levels,
            std::get<core::BfsResult>(full).levels);
}

}  // namespace
}  // namespace adgraph
