// Exercises the nvGRAPH-style C facade end to end, cross-checking every
// entry point against the C++ host references.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "capi/adgraph.h"
#include "core/host_ref.h"
#include "graph/builder.h"
#include "graph/generate.h"
#include "util/status.h"

namespace {

using adgraph::graph::CsrGraph;

CsrGraph TestGraph(uint64_t seed, bool weighted) {
  auto coo = adgraph::graph::GenerateRmat(
                 {.scale = 8, .edge_factor = 6, .seed = seed})
                 .value();
  if (weighted) adgraph::graph::AttachRandomWeights(&coo, 0.1, 1.0, seed + 1);
  adgraph::graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return CsrGraph::FromCoo(coo, options).value();
}

// RAII wrapper keeping the C tests tidy.
struct CApiFixture {
  adgraphHandle_t handle = nullptr;
  adgraphGraphDescr_t descr = nullptr;

  explicit CApiFixture(const char* gpu, const CsrGraph& g) {
    EXPECT_EQ(adgraphCreate(&handle, gpu), ADGRAPH_STATUS_SUCCESS);
    EXPECT_EQ(adgraphCreateGraphDescr(handle, &descr),
              ADGRAPH_STATUS_SUCCESS);
    EXPECT_EQ(adgraphSetGraphStructure(handle, descr, g.num_vertices(),
                                       g.num_edges(), g.row_offsets().data(),
                                       g.col_indices().data()),
              ADGRAPH_STATUS_SUCCESS);
    if (g.has_weights()) {
      EXPECT_EQ(adgraphSetEdgeWeights(handle, descr, g.weights().data()),
                ADGRAPH_STATUS_SUCCESS);
    }
  }
  ~CApiFixture() {
    if (descr) adgraphDestroyGraphDescr(handle, descr);
    if (handle) adgraphDestroy(handle);
  }
};

TEST(CApiTest, LifecycleAndValidation) {
  adgraphHandle_t handle = nullptr;
  EXPECT_EQ(adgraphCreate(nullptr, nullptr), ADGRAPH_STATUS_INVALID_VALUE);
  EXPECT_EQ(adgraphCreate(&handle, "NoSuchGPU"), ADGRAPH_STATUS_NOT_FOUND);
  ASSERT_EQ(adgraphCreate(&handle, "Z100L"), ADGRAPH_STATUS_SUCCESS);
  double ms = -1;
  EXPECT_EQ(adgraphGetDeviceTimeMs(handle, &ms), ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(ms, 0.0);
  adgraphGraphDescr_t descr = nullptr;
  ASSERT_EQ(adgraphCreateGraphDescr(handle, &descr), ADGRAPH_STATUS_SUCCESS);
  uint32_t levels[4];
  EXPECT_EQ(adgraphTraversalBfs(handle, descr, 0, 0, levels),
            ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH)
      << "no structure set yet";
  EXPECT_EQ(adgraphDestroyGraphDescr(handle, descr), ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(adgraphDestroy(handle), ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(adgraphDestroy(nullptr), ADGRAPH_STATUS_NOT_INITIALIZED);
}

TEST(CApiTest, StatusStrings) {
  EXPECT_STREQ(adgraphStatusGetString(ADGRAPH_STATUS_SUCCESS),
               "ADGRAPH_STATUS_SUCCESS");
  EXPECT_STREQ(adgraphStatusGetString(ADGRAPH_STATUS_ALLOC_FAILED),
               "ADGRAPH_STATUS_ALLOC_FAILED");
  EXPECT_STREQ(adgraphStatusGetString(ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH),
               "ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH");
  EXPECT_STREQ(adgraphStatusGetString(ADGRAPH_STATUS_RESOURCE_EXHAUSTED),
               "ADGRAPH_STATUS_RESOURCE_EXHAUSTED");
  EXPECT_STREQ(adgraphStatusGetString(ADGRAPH_STATUS_UNSUPPORTED),
               "ADGRAPH_STATUS_UNSUPPORTED");
  EXPECT_STREQ(adgraphStatusGetString(ADGRAPH_STATUS_DEADLINE_EXCEEDED),
               "ADGRAPH_STATUS_DEADLINE_EXCEEDED");
  EXPECT_STREQ(adgraphStatusGetString(ADGRAPH_STATUS_FAILED_PRECONDITION),
               "ADGRAPH_STATUS_FAILED_PRECONDITION");
  // Appended value: the frozen 0..14 range must not have been renumbered.
  EXPECT_EQ(ADGRAPH_STATUS_FAILED_PRECONDITION, 15);
  EXPECT_EQ(ADGRAPH_STATUS_DEADLINE_EXCEEDED, 14);
}

TEST(CApiTest, VersionIsV2) {
  int major = -1, minor = -1, patch = -1;
  EXPECT_EQ(adgraphGetVersion(&major, &minor, &patch),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(major, ADGRAPH_VERSION_MAJOR);
  EXPECT_EQ(minor, ADGRAPH_VERSION_MINOR);
  EXPECT_EQ(patch, ADGRAPH_VERSION_PATCH);
  EXPECT_EQ(major, 2);
  // NULL out-pointers are allowed.
  EXPECT_EQ(adgraphGetVersion(nullptr, nullptr, nullptr),
            ADGRAPH_STATUS_SUCCESS);
}

TEST(CApiTest, StatusCodeMappingIsStableAndDistinct) {
  using adgraph::StatusCode;
  // The v1 values are frozen contract; a renumbering must fail here.
  EXPECT_EQ(ADGRAPH_STATUS_SUCCESS, 0);
  EXPECT_EQ(ADGRAPH_STATUS_NOT_INITIALIZED, 1);
  EXPECT_EQ(ADGRAPH_STATUS_ALLOC_FAILED, 2);
  EXPECT_EQ(ADGRAPH_STATUS_INVALID_VALUE, 3);
  EXPECT_EQ(ADGRAPH_STATUS_INTERNAL_ERROR, 4);

  const std::vector<std::pair<StatusCode, adgraphStatus_t>> expected = {
      {StatusCode::kOk, ADGRAPH_STATUS_SUCCESS},
      {StatusCode::kInvalidArgument, ADGRAPH_STATUS_INVALID_VALUE},
      {StatusCode::kOutOfMemory, ADGRAPH_STATUS_ALLOC_FAILED},
      {StatusCode::kNotFound, ADGRAPH_STATUS_NOT_FOUND},
      {StatusCode::kAlreadyExists, ADGRAPH_STATUS_ALREADY_EXISTS},
      {StatusCode::kOutOfRange, ADGRAPH_STATUS_OUT_OF_RANGE},
      {StatusCode::kUnimplemented, ADGRAPH_STATUS_UNSUPPORTED},
      {StatusCode::kInternal, ADGRAPH_STATUS_INTERNAL_ERROR},
      {StatusCode::kIOError, ADGRAPH_STATUS_IO_ERROR},
      {StatusCode::kDeadlock, ADGRAPH_STATUS_DEADLOCK},
      {StatusCode::kResourceExhausted, ADGRAPH_STATUS_RESOURCE_EXHAUSTED},
      {StatusCode::kUnavailable, ADGRAPH_STATUS_UNAVAILABLE},
      {StatusCode::kDeadlineExceeded, ADGRAPH_STATUS_DEADLINE_EXCEEDED},
  };
  std::set<adgraphStatus_t> seen;
  for (const auto& [code, want] : expected) {
    adgraphStatus_t got = adgraphStatusFromStatusCode(static_cast<int>(code));
    EXPECT_EQ(got, want) << adgraph::StatusCodeToString(code);
    // Every non-OK library code keeps its own C value (no v1-style
    // folding); only kInternal shares INTERNAL_ERROR with nothing.
    EXPECT_TRUE(seen.insert(got).second)
        << "duplicate C mapping for " << adgraph::StatusCodeToString(code);
  }
  // Out-of-range inputs degrade to INTERNAL_ERROR instead of UB.
  EXPECT_EQ(adgraphStatusFromStatusCode(-1), ADGRAPH_STATUS_INTERNAL_ERROR);
  EXPECT_EQ(adgraphStatusFromStatusCode(999), ADGRAPH_STATUS_INTERNAL_ERROR);
}

TEST(CApiTest, LastErrorRoundTrip) {
  auto g = TestGraph(208, false);
  CApiFixture fx("A100", g);
  EXPECT_STREQ(adgraphGetLastErrorString(nullptr), "");
  EXPECT_STREQ(adgraphGetLastErrorString(fx.handle), "")
      << "no failing call yet";

  std::vector<uint32_t> levels(g.num_vertices());
  // Out-of-range source is now its own status, detected at the C boundary.
  EXPECT_EQ(adgraphTraversalBfs(fx.handle, fx.descr, g.num_vertices(), 0,
                                levels.data()),
            ADGRAPH_STATUS_OUT_OF_RANGE);
  std::string err = adgraphGetLastErrorString(fx.handle);
  EXPECT_NE(err.find("source"), std::string::npos) << err;

  // NULL output buffer: INVALID_VALUE, and the message is replaced.
  EXPECT_EQ(adgraphTraversalBfs(fx.handle, fx.descr, 0, 0, nullptr),
            ADGRAPH_STATUS_INVALID_VALUE);
  EXPECT_NE(std::string(adgraphGetLastErrorString(fx.handle)).find("NULL"),
            std::string::npos);

  // A successful call clears the last error.
  ASSERT_EQ(adgraphTraversalBfs(fx.handle, fx.descr, 0, 0, levels.data()),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_STREQ(adgraphGetLastErrorString(fx.handle), "");
}

TEST(CApiTest, SsspAndWidestSourceOutOfRange) {
  auto g = TestGraph(209, true);
  CApiFixture fx("V100", g);
  std::vector<double> out(g.num_vertices());
  EXPECT_EQ(adgraphSssp(fx.handle, fx.descr, g.num_vertices(), out.data()),
            ADGRAPH_STATUS_OUT_OF_RANGE);
  EXPECT_EQ(
      adgraphWidestPath(fx.handle, fx.descr, g.num_vertices(), out.data()),
      ADGRAPH_STATUS_OUT_OF_RANGE);
}

TEST(CApiTest, BfsMatchesReference) {
  auto g = TestGraph(201, false);
  CApiFixture fx("A100", g);
  std::vector<uint32_t> levels(g.num_vertices());
  ASSERT_EQ(adgraphTraversalBfs(fx.handle, fx.descr, 3, 0, levels.data()),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(levels, adgraph::core::host_ref::BfsLevels(g, 3));
  double ms = 0;
  ASSERT_EQ(adgraphGetDeviceTimeMs(fx.handle, &ms), ADGRAPH_STATUS_SUCCESS);
  EXPECT_GT(ms, 0.0);
}

TEST(CApiTest, TriangleCountMatchesReference) {
  auto g = TestGraph(202, false);
  CApiFixture fx("Z100", g);
  uint64_t triangles = 0;
  ASSERT_EQ(adgraphTriangleCount(fx.handle, fx.descr, &triangles),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(triangles, adgraph::core::host_ref::TriangleCount(g));
}

TEST(CApiTest, PagerankMatchesReference) {
  auto g = TestGraph(203, false);
  CApiFixture fx("V100", g);
  std::vector<double> ranks(g.num_vertices());
  ASSERT_EQ(adgraphPagerank(fx.handle, fx.descr, 0.85, 20, ranks.data()),
            ADGRAPH_STATUS_SUCCESS);
  double sum = 0;
  for (double r : ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(CApiTest, SsspAndWidestMatchReference) {
  auto g = TestGraph(204, true);
  CApiFixture fx("Z100L", g);
  std::vector<double> dist(g.num_vertices());
  ASSERT_EQ(adgraphSssp(fx.handle, fx.descr, 0, dist.data()),
            ADGRAPH_STATUS_SUCCESS);
  auto expected_dist = adgraph::core::host_ref::Sssp(g, 0);
  for (size_t i = 0; i < dist.size(); ++i) {
    if (std::isinf(expected_dist[i])) {
      EXPECT_TRUE(std::isinf(dist[i]));
    } else {
      EXPECT_NEAR(dist[i], expected_dist[i], 1e-9);
    }
  }
  std::vector<double> widths(g.num_vertices());
  ASSERT_EQ(adgraphWidestPath(fx.handle, fx.descr, 0, widths.data()),
            ADGRAPH_STATUS_SUCCESS);
  auto expected_width = adgraph::core::host_ref::WidestPath(g, 0);
  for (size_t i = 0; i < widths.size(); ++i) {
    if (std::isinf(expected_width[i])) {
      EXPECT_TRUE(std::isinf(widths[i]));
    } else {
      EXPECT_NEAR(widths[i], expected_width[i], 1e-12);
    }
  }
}

TEST(CApiTest, SubgraphExtractionRoundTrips) {
  auto g = TestGraph(205, true);
  CApiFixture fx("A100", g);
  adgraphGraphDescr_t sub = nullptr;
  ASSERT_EQ(adgraphCreateGraphDescr(fx.handle, &sub),
            ADGRAPH_STATUS_SUCCESS);
  std::vector<uint32_t> keep;
  for (uint32_t v = 0; v < g.num_vertices(); v += 2) keep.push_back(v);
  ASSERT_EQ(adgraphExtractSubgraphByVertex(fx.handle, fx.descr, sub,
                                           keep.data(), keep.size()),
            ADGRAPH_STATUS_SUCCESS);
  auto expected = adgraph::core::host_ref::ExtractSubgraph(
      g, {keep.begin(), keep.end()});
  uint32_t n = 0;
  uint64_t m = 0;
  ASSERT_EQ(adgraphGetGraphStructure(fx.handle, sub, &n, &m, nullptr,
                                     nullptr),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(n, expected.num_vertices());
  EXPECT_EQ(m, expected.num_edges());
  std::vector<uint64_t> rows(n + 1);
  std::vector<uint32_t> cols(m);
  ASSERT_EQ(adgraphGetGraphStructure(fx.handle, sub, nullptr, nullptr,
                                     rows.data(), cols.data()),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(rows.back(), m);
  adgraphDestroyGraphDescr(fx.handle, sub);
}

TEST(CApiTest, EsbvWithoutWeightsIsGraphTypeMismatch) {
  auto g = TestGraph(206, false);
  CApiFixture fx("A100", g);
  adgraphGraphDescr_t sub = nullptr;
  ASSERT_EQ(adgraphCreateGraphDescr(fx.handle, &sub),
            ADGRAPH_STATUS_SUCCESS);
  uint32_t keep[2] = {0, 1};
  EXPECT_EQ(adgraphExtractSubgraphByVertex(fx.handle, fx.descr, sub, keep, 2),
            ADGRAPH_STATUS_GRAPH_TYPE_MISMATCH)
      << "ESBV requires weights, as in the paper";
  const char* err = adgraphGetLastErrorString(fx.handle);
  EXPECT_NE(std::string(err).find("weights"), std::string::npos) << err;
  adgraphDestroyGraphDescr(fx.handle, sub);
}

TEST(CApiTest, GetJobProfileWindowsTheLastRun) {
  auto g = TestGraph(210, false);
  CApiFixture fx("A100", g);

  adgraphJobProfile_t profile;
  EXPECT_EQ(adgraphGetJobProfile(nullptr, &profile),
            ADGRAPH_STATUS_NOT_INITIALIZED);
  EXPECT_EQ(adgraphGetJobProfile(fx.handle, nullptr),
            ADGRAPH_STATUS_INVALID_VALUE);

  // Before any run: a neutral profile, not garbage.
  ASSERT_EQ(adgraphGetJobProfile(fx.handle, &profile),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_EQ(profile.num_kernels, 0u);
  EXPECT_EQ(profile.total_cycles, 0.0);
  EXPECT_EQ(profile.gld_efficiency, 1.0);
  EXPECT_EQ(profile.gst_efficiency, 1.0);

  std::vector<uint32_t> levels(g.num_vertices());
  ASSERT_EQ(adgraphTraversalBfs(fx.handle, fx.descr, 0, 0, levels.data()),
            ADGRAPH_STATUS_SUCCESS);
  ASSERT_EQ(adgraphGetJobProfile(fx.handle, &profile),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_GT(profile.num_kernels, 0u);
  EXPECT_GT(profile.total_cycles, 0.0);
  EXPECT_GT(profile.warp_inst_issued, 0u);
  EXPECT_GE(profile.divergent_branch_ratio, 0.0);
  EXPECT_LE(profile.divergent_branch_ratio, 1.0);
  EXPECT_GT(profile.achieved_occupancy, 0.0);
  EXPECT_LE(profile.achieved_occupancy, 1.0);
  const uint64_t bfs_kernels = profile.num_kernels;

  // The window covers the *last* run only: a second algorithm replaces the
  // attribution instead of accumulating the device's whole history.
  uint64_t triangles = 0;
  ASSERT_EQ(adgraphTriangleCount(fx.handle, fx.descr, &triangles),
            ADGRAPH_STATUS_SUCCESS);
  adgraphJobProfile_t second;
  ASSERT_EQ(adgraphGetJobProfile(fx.handle, &second),
            ADGRAPH_STATUS_SUCCESS);
  EXPECT_GT(second.num_kernels, 0u);
  EXPECT_LT(second.num_kernels, bfs_kernels + second.num_kernels)
      << "profile accumulated across runs instead of windowing the last";
}

TEST(CApiTest, AllFourGpusSelectable) {
  auto g = TestGraph(207, false);
  uint64_t expected = adgraph::core::host_ref::TriangleCount(g);
  for (const char* gpu : {"Z100", "V100", "Z100L", "A100"}) {
    CApiFixture fx(gpu, g);
    uint64_t triangles = 0;
    ASSERT_EQ(adgraphTriangleCount(fx.handle, fx.descr, &triangles),
              ADGRAPH_STATUS_SUCCESS)
        << gpu;
    EXPECT_EQ(triangles, expected) << gpu;
  }
}

}  // namespace
