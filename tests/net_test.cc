// Tests of the src/net/ TCP front door: JSON parse/dump, tenant config and
// quota accounting, wire param mapping, and a live loopback server —
// including the protocol-robustness paths (malformed / truncated /
// oversized request lines, mid-request disconnect, slow-loris partial
// writes) that must fail with a structured error or a session drop without
// leaking reserved admission bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/csr.h"
#include "graph/generate.h"
#include "ooc/ooc_csr.h"
#include "net/client.h"
#include "net/json.h"
#include "net/server.h"
#include "net/tenant.h"
#include "net/wire.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "trace/trace.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::net {
namespace {

using graph::CsrGraph;

std::shared_ptr<const CsrGraph> TestGraph(uint32_t scale = 7) {
  auto coo = graph::GenerateRmat({.scale = scale, .edge_factor = 8.0,
                                  .seed = 42}).value();
  graph::AttachRandomWeights(&coo, 0.1, 1.0, 7);
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  options.make_undirected = true;
  return std::make_shared<const CsrGraph>(
      CsrGraph::FromCoo(coo, options).value());
}

// --- JSON ------------------------------------------------------------------

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string text =
      R"({"op":"SUBMIT","n":3,"f":1.5,"neg":-2,"flag":true,"nil":null,)"
      R"("arr":[1,"two",false],"nested":{"k":"v"}})";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);  // insertion order is preserved
  EXPECT_EQ(parsed->GetString("op", ""), "SUBMIT");
  EXPECT_EQ(parsed->GetNumber("n", 0), 3);
  EXPECT_EQ(parsed->GetNumber("f", 0), 1.5);
  EXPECT_TRUE(parsed->GetBool("flag", false));
  EXPECT_TRUE(parsed->Find("nil")->is_null());
  EXPECT_EQ(parsed->Find("arr")->size(), 3u);
  EXPECT_EQ(parsed->Find("nested")->GetString("k", ""), "v");
}

TEST(JsonTest, StringEscapesRoundTrip) {
  Json object = Json::MakeObject();
  object.Set("s", std::string("a\"b\\c\n\t\x01 ω"));
  auto reparsed = Json::Parse(object.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->GetString("s", ""), "a\"b\\c\n\t\x01 ω");
}

TEST(JsonTest, ParseUnicodeEscapes) {
  auto parsed = Json::Parse(R"({"s":"Aé 😀"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("s", ""), "Aé \xF0\x9F\x98\x80");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  const char* bad[] = {
      "",
      "{",
      "{\"a\":}",
      "{\"a\":1} trailing",
      "{\"a\" 1}",
      "[1,]",
      "{\"a\":01}",
      "\"unterminated",
      "{\"a\":\"raw\ncontrol\"}",
      "nul",
      "{\"a\":+1}",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Json::Parse(text).ok()) << "accepted: " << text;
  }
  // Depth bomb: beyond the nesting cap.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, IntegralNumbersPrintWithoutDecimalPoint) {
  Json object = Json::MakeObject();
  object.Set("i", static_cast<uint64_t>(42));
  object.Set("f", 2.5);
  EXPECT_EQ(object.Dump(), R"({"i":42,"f":2.5})");
}

// --- tenant config + quotas ------------------------------------------------

TEST(TenantTest, ParseByteSizeSuffixes) {
  EXPECT_EQ(ParseByteSize("512").value(), 512u);
  EXPECT_EQ(ParseByteSize("64K").value(), 64u * 1024);
  EXPECT_EQ(ParseByteSize("16M").value(), 16ull << 20);
  EXPECT_EQ(ParseByteSize("2G").value(), 2ull << 30);
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("12Q").ok());
  EXPECT_FALSE(ParseByteSize("-3").ok());
}

TEST(TenantTest, ParseTenantConfigs) {
  auto configs = ParseTenantConfigs(
      "# fleet\n"
      "alpha rate=10 burst=20 concurrent=4 bytes=1G priority=0 weight=2.5\n"
      "\n"
      "beta priority=1 deadline_ms=250\n");
  ASSERT_TRUE(configs.ok()) << configs.status().ToString();
  ASSERT_EQ(configs->size(), 2u);
  EXPECT_EQ((*configs)[0].name, "alpha");
  EXPECT_EQ((*configs)[0].rate_per_sec, 10);
  EXPECT_EQ((*configs)[0].burst, 20);
  EXPECT_EQ((*configs)[0].max_concurrent, 4u);
  EXPECT_EQ((*configs)[0].max_inflight_bytes, 1ull << 30);
  EXPECT_EQ((*configs)[0].weight, 2.5);
  EXPECT_EQ((*configs)[1].priority, 1u);
  EXPECT_EQ((*configs)[1].default_deadline_ms, 250);

  EXPECT_FALSE(ParseTenantConfigs("alpha turbo=9").ok());  // unknown key
  EXPECT_FALSE(ParseTenantConfigs("a rate=1\na rate=2").ok());  // duplicate
  EXPECT_FALSE(ParseTenantConfigs("a rate=fast").ok());
}

TEST(TenantTest, TokenBucketRefillsLazily) {
  TenantTable table({{.name = "a", .rate_per_sec = 2.0, .burst = 2.0}});
  QuotaReject reason = QuotaReject::kNone;
  EXPECT_TRUE(table.AdmitAt("a", 0, 0.0).ok());
  EXPECT_TRUE(table.AdmitAt("a", 0, 0.0).ok());
  Status third = table.AdmitAt("a", 0, 0.0, &reason);
  EXPECT_TRUE(third.IsResourceExhausted()) << third.ToString();
  EXPECT_EQ(reason, QuotaReject::kRate);
  // Half a second refills one token at 2/s.
  EXPECT_TRUE(table.AdmitAt("a", 0, 0.5).ok());
  EXPECT_FALSE(table.AdmitAt("a", 0, 0.5).ok());
  // A backwards clock must not mint tokens.
  EXPECT_FALSE(table.AdmitAt("a", 0, 0.1).ok());
  auto usage = table.GetUsage("a");
  EXPECT_EQ(usage.admitted, 3u);
  EXPECT_EQ(usage.rejected_rate, 3u);
}

TEST(TenantTest, ConcurrentAndByteCapsChargeAndRelease) {
  TenantTable table({{.name = "a",
                      .max_concurrent = 2,
                      .max_inflight_bytes = 1000}});
  QuotaReject reason = QuotaReject::kNone;
  EXPECT_TRUE(table.Admit("a", 600).ok());
  EXPECT_TRUE(table.Admit("a", 300, &reason).ok());
  // Third job would be within bytes but over the concurrency cap.
  EXPECT_FALSE(table.Admit("a", 10, &reason).ok());
  EXPECT_EQ(reason, QuotaReject::kConcurrent);
  table.Release("a", 300);
  // Now under the job cap but 600 + 500 busts the byte cap.
  EXPECT_FALSE(table.Admit("a", 500, &reason).ok());
  EXPECT_EQ(reason, QuotaReject::kBytes);
  EXPECT_TRUE(table.Admit("a", 400).ok());
  auto usage = table.GetUsage("a");
  EXPECT_EQ(usage.inflight_jobs, 2u);
  EXPECT_EQ(usage.inflight_bytes, 1000u);
  // Releases pair off; over-release clamps instead of wrapping.
  table.Release("a", 600);
  table.Release("a", 400);
  table.Release("a", 999);
  usage = table.GetUsage("a");
  EXPECT_EQ(usage.inflight_jobs, 0u);
  EXPECT_EQ(usage.inflight_bytes, 0u);
}

TEST(TenantTest, UnknownTenantRejected) {
  TenantTable table({{.name = "a"}});
  QuotaReject reason = QuotaReject::kNone;
  Status status = table.Admit("nobody", 0, &reason);
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(reason, QuotaReject::kUnknownTenant);
}

// --- wire ------------------------------------------------------------------

TEST(WireTest, StatusNamesAreSnakeCase) {
  EXPECT_EQ(WireStatusName(StatusCode::kOk), "ok");
  EXPECT_EQ(WireStatusName(StatusCode::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(WireStatusName(StatusCode::kResourceExhausted),
            "resource_exhausted");
}

TEST(WireTest, BuildJobParamsRejectsMalformedNumbers) {
  std::map<std::string, std::string> kv{{"source", "banana"}};
  auto params = serve::Algorithm::kBfs;
  EXPECT_TRUE(BuildJobParams(params, kv, 100).status().IsInvalidArgument());
  kv["source"] = "12";
  EXPECT_TRUE(BuildJobParams(params, kv, 100).ok());
}

TEST(WireTest, JobParamsFromJsonAcceptsNumbersStringsBools) {
  auto request = Json::Parse(R"({"source":5,"symmetric":true})").value();
  auto params =
      JobParamsFromJson(serve::Algorithm::kBfs, &request, 100).value();
  EXPECT_EQ(std::get<core::BfsOptions>(params).source, 5u);
  EXPECT_TRUE(std::get<core::BfsOptions>(params).assume_symmetric);

  auto bad = Json::Parse(R"({"source":[1]})").value();
  EXPECT_FALSE(JobParamsFromJson(serve::Algorithm::kBfs, &bad, 100).ok());
}

// --- loopback server -------------------------------------------------------

struct LiveServer {
  std::unique_ptr<serve::Scheduler> scheduler;
  std::unique_ptr<Server> server;
};

LiveServer StartServer(std::shared_ptr<const CsrGraph> g,
                       std::vector<TenantConfig> tenants = {},
                       double floor_ms = 0,
                       size_t max_line_bytes = kDefaultMaxLineBytes) {
  serve::Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.queue_capacity = 64;
  options.device_occupancy_floor_ms = floor_ms;
  LiveServer live;
  live.scheduler = std::move(serve::Scheduler::Create(std::move(options))
                                 .value());
  ServerOptions server_options;
  server_options.tenants = std::move(tenants);
  server_options.max_line_bytes = max_line_bytes;
  Server::GraphMap graphs;
  graphs["default"] = std::move(g);
  live.server = std::move(
      Server::Start(live.scheduler.get(), std::move(graphs), server_options)
          .value());
  return live;
}

TEST(ServerTest, SubmitOverTcpMatchesInProcessFingerprint) {
  auto g = TestGraph();
  auto live = StartServer(g);
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  auto hello = client.Hello("anyone").value();
  EXPECT_EQ(hello.GetNumber("proto", 0), kProtocolVersion);

  auto request = Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":3,"symmetric":1},)"
      R"("tag":"t1"})").value();
  auto submitted = client.Call(request).value();
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  auto done = client.WaitJob(
      static_cast<uint64_t>(submitted.GetNumber("job", 0))).value();
  EXPECT_EQ(done.GetString("status", ""), "ok");
  EXPECT_EQ(done.GetString("tag", ""), "t1");

  // In-process reference: identical params through the same registry
  // handler on a fresh device must fingerprint-match the wire result.
  serve::JobSpec spec;
  spec.graph = g;
  spec.params = BuildJobParams(serve::Algorithm::kBfs,
                               {{"source", "3"}, {"symmetric", "1"}},
                               g->num_vertices())
                    .value();
  vgpu::Device device(vgpu::A100Config());
  auto payload =
      serve::GetHandler(serve::Algorithm::kBfs).run(&device, spec, nullptr)
          .value();
  EXPECT_EQ(done.GetString("fingerprint", ""),
            FingerprintHex(serve::FingerprintPayload(payload)));

  // Delivered-once: a second POLL for the same id is an error.
  Json poll = Json::MakeObject();
  poll.Set("op", "POLL");
  poll.Set("job", submitted.GetNumber("job", 0));
  auto repoll = client.Call(poll).value();
  EXPECT_FALSE(repoll.GetBool("ok", true));
  EXPECT_EQ(repoll.GetString("code", ""), "not_found");
}

TEST(ServerTest, HelloRejectsUnknownTenantAndDropsSession) {
  auto live = StartServer(TestGraph(), {{.name = "alpha"}});
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  EXPECT_TRUE(client.Hello("nobody").status().IsNotFound());
  // The server closes the session after the rejection line.
  auto next = client.ReadLine(2000);
  EXPECT_TRUE(next.status().IsUnavailable()) << next.status().ToString();
}

TEST(ServerTest, SubmitBeforeHelloRejected) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  auto response =
      client.Call(Json::Parse(R"({"op":"SUBMIT","algo":"bfs"})").value())
          .value();
  EXPECT_FALSE(response.GetBool("ok", true));
}

TEST(ServerTest, MalformedLineGetsStructuredErrorSessionSurvives) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.SendLine("{this is not json").ok());
  auto error = Json::Parse(client.ReadLine().value()).value();
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_EQ(error.GetString("code", ""), "invalid_argument");
  // The session is still usable afterwards.
  EXPECT_TRUE(client.Hello("x").ok());
  EXPECT_GE(live.server->Counters().protocol_errors, 1u);
}

TEST(ServerTest, OversizedLineGetsErrorThenDrop) {
  auto live = StartServer(TestGraph(), {}, 0, /*max_line_bytes=*/256);
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  std::string big = R"({"op":"HELLO","pad":")" + std::string(1024, 'x') +
                    "\"}";
  ASSERT_TRUE(client.SendLine(big).ok());
  auto error = Json::Parse(client.ReadLine().value()).value();
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_EQ(error.GetString("code", ""), "resource_exhausted");
  EXPECT_TRUE(client.ReadLine(2000).status().IsUnavailable());
  EXPECT_GE(live.server->Counters().lines_oversized, 1u);
}

TEST(ServerTest, OversizedPartialLineWithoutNewlineAlsoDropped) {
  // Slow-loris flavor: an endless request that never sends '\n' must be
  // cut off once it exceeds the line cap, not buffered forever.
  auto live = StartServer(TestGraph(), {}, 0, /*max_line_bytes=*/256);
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.SendRaw(std::string(4096, 'y')).ok());  // no newline
  auto error = Json::Parse(client.ReadLine().value()).value();
  EXPECT_EQ(error.GetString("code", ""), "resource_exhausted");
  EXPECT_TRUE(client.ReadLine(2000).status().IsUnavailable());
}

TEST(ServerTest, SlowLorisPartialWritesStillParse) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  const std::string request =
      R"({"op":"HELLO","proto":1,"tenant":"drip"})" "\n";
  for (size_t i = 0; i < request.size(); i += 5) {
    ASSERT_TRUE(client.SendRaw(request.substr(i, 5)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto response = Json::Parse(client.ReadLine().value()).value();
  EXPECT_TRUE(response.GetBool("ok", false)) << response.Dump();
  EXPECT_EQ(response.GetString("tenant", ""), "drip");
}

TEST(ServerTest, QuotaRejectionOnTheWireThenReleaseAdmits) {
  auto live = StartServer(TestGraph(), {{.name = "alpha", .max_concurrent = 1}},
                          /*floor_ms=*/40);
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("alpha").ok());
  auto request = Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":0}})").value();
  auto first = client.Call(request).value();
  ASSERT_TRUE(first.GetBool("ok", false)) << first.Dump();
  // Job 1 occupies the device for >= 40 ms, so this lands over the cap.
  auto second = client.Call(request).value();
  EXPECT_FALSE(second.GetBool("ok", true));
  EXPECT_EQ(second.GetString("code", ""), "resource_exhausted");
  EXPECT_EQ(second.GetString("reason", ""), "concurrent");
  // Delivering job 1's outcome releases the slot.
  auto done = client.WaitJob(
      static_cast<uint64_t>(first.GetNumber("job", 0))).value();
  EXPECT_EQ(done.GetString("status", ""), "ok");
  auto third = client.Call(request).value();
  EXPECT_TRUE(third.GetBool("ok", false)) << third.Dump();
  EXPECT_EQ(live.server->Counters().submits_rejected_quota, 1u);
}

TEST(ServerTest, MidRequestDisconnectReleasesCharges) {
  auto live = StartServer(TestGraph(),
                          {{.name = "alpha", .max_inflight_bytes = 1ull << 30}},
                          /*floor_ms=*/60);
  {
    auto client = Client::Connect("127.0.0.1", live.server->port()).value();
    ASSERT_TRUE(client.Hello("alpha").ok());
    auto submitted = client.Call(Json::Parse(
        R"({"op":"SUBMIT","algo":"bfs","params":{"source":0}})").value())
        .value();
    ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
    EXPECT_GT(live.server->tenants()->GetUsage("alpha").inflight_bytes, 0u);
    // Half a request, then vanish with the job still in flight.
    ASSERT_TRUE(client.SendRaw(R"({"op":"POLL","jo)").ok());
  }  // ~Client closes the socket
  // The orphan reaper must return the charge once the job resolves.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  TenantTable::Usage usage;
  while (std::chrono::steady_clock::now() < deadline) {
    usage = live.server->tenants()->GetUsage("alpha");
    if (usage.inflight_jobs == 0 && usage.inflight_bytes == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(usage.inflight_jobs, 0u);
  EXPECT_EQ(usage.inflight_bytes, 0u);
  EXPECT_GE(live.server->Counters().jobs_orphaned, 1u);
}

TEST(ServerTest, DeadlineShedReportedOnWire) {
  // One worker with a 50 ms occupancy floor: job 2's queue wait exceeds its
  // 1 ms deadline by the time a worker picks it up, so it is shed.
  auto live = StartServer(TestGraph(), {}, /*floor_ms=*/50);
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());
  auto blocker = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":0}})").value())
      .value();
  ASSERT_TRUE(blocker.GetBool("ok", false)) << blocker.Dump();
  auto doomed = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":1},)"
      R"("deadline_ms":1})").value()).value();
  ASSERT_TRUE(doomed.GetBool("ok", false)) << doomed.Dump();
  auto outcome = client.WaitJob(
      static_cast<uint64_t>(doomed.GetNumber("job", 0))).value();
  EXPECT_EQ(outcome.GetString("status", ""), "deadline_exceeded");
}

TEST(ServerTest, CancelMarksJobAndStatsReports) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());
  auto submitted = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"cc"})").value()).value();
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  Json cancel = Json::MakeObject();
  cancel.Set("op", "CANCEL");
  cancel.Set("job", submitted.GetNumber("job", 0));
  auto cancelled = client.Call(cancel).value();
  EXPECT_TRUE(cancelled.GetBool("ok", false)) << cancelled.Dump();
  EXPECT_TRUE(cancelled.GetBool("cancelled", false));

  auto stats = client.Call(Json::Parse(R"({"op":"STATS"})").value()).value();
  EXPECT_TRUE(stats.GetBool("ok", false)) << stats.Dump();
  ASSERT_NE(stats.Find("server"), nullptr);
  EXPECT_GE(stats.Find("server")->GetNumber("requests", 0), 3);
  ASSERT_NE(stats.Find("jobs"), nullptr);
}

// Regression: POLL after CANCEL used to race the orphan reaper — the
// response depended on whether the job had already resolved.  It must now be
// a deterministic terminal answer, independent of completion timing.
TEST(ServerTest, PollAfterCancelIsDeterministicTerminal) {
  auto live = StartServer(TestGraph(),
                          {{.name = "alpha", .max_inflight_bytes = 1ull << 30}},
                          /*floor_ms=*/40);
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("alpha").ok());
  auto submitted = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"cc"})").value()).value();
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  const uint64_t job_id =
      static_cast<uint64_t>(submitted.GetNumber("job", 0));

  Json cancel = Json::MakeObject();
  cancel.Set("op", "CANCEL");
  cancel.Set("job", job_id);
  ASSERT_TRUE(client.Call(cancel).value().GetBool("ok", false));

  // Immediately after CANCEL (the job may still be running): terminal.
  Json poll = Json::MakeObject();
  poll.Set("op", "POLL");
  poll.Set("job", job_id);
  auto response = client.Call(poll).value();
  EXPECT_TRUE(response.GetBool("ok", false)) << response.Dump();
  EXPECT_TRUE(response.GetBool("done", false))
      << "POLL after CANCEL must be terminal, not reaper-timing dependent";
  EXPECT_TRUE(response.GetBool("cancelled", false));
  EXPECT_EQ(response.GetString("status", ""), "cancelled");

  // Delivered-once semantics hold for the cancelled terminal too.
  auto repoll = client.Call(poll).value();
  EXPECT_FALSE(repoll.GetBool("ok", true));
  EXPECT_EQ(repoll.GetString("code", ""), "not_found");

  // The still-charged future is handed to the orphan reaper, which must
  // release the tenant's admission charge once the job resolves.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  TenantTable::Usage usage;
  while (std::chrono::steady_clock::now() < deadline) {
    usage = live.server->tenants()->GetUsage("alpha");
    if (usage.inflight_jobs == 0 && usage.inflight_bytes == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(usage.inflight_jobs, 0u);
  EXPECT_EQ(usage.inflight_bytes, 0u);
}

// --- MUTATE (dynamic graphs) ----------------------------------------------

TEST(ServerTest, MutateThenSubmitSeesFreshGraph) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());

  // Baseline result fingerprint on the pristine graph.
  auto request = Json::Parse(
      R"({"op":"SUBMIT","algo":"pagerank","params":{"max_iterations":30}})")
      .value();
  auto first = client.Call(request).value();
  ASSERT_TRUE(first.GetBool("ok", false)) << first.Dump();
  auto first_done = client.WaitJob(
      static_cast<uint64_t>(first.GetNumber("job", 0))).value();
  ASSERT_EQ(first_done.GetString("status", ""), "ok");
  const std::string before_fp = first_done.GetString("fingerprint", "");

  // Mutate: a batch of inserts, at least one of which must be novel.
  Json updates = Json::MakeArray();
  for (uint32_t v = 60; v < 68; ++v) {
    Json update = Json::MakeObject();
    update.Set("op", "add");
    update.Set("u", 0);
    update.Set("v", static_cast<double>(v));
    updates.PushBack(std::move(update));
  }
  auto mutated = client.Mutate("default", std::move(updates)).value();
  EXPECT_GT(mutated.GetNumber("applied", 0), 0) << mutated.Dump();
  EXPECT_GT(mutated.GetNumber("version", 0), 0);
  EXPECT_NE(mutated.GetString("fingerprint", ""), "");
  EXPECT_GE(live.server->Counters().mutations_applied, 1u);

  // A submit after the mutation must run on the new version.
  auto second = client.Call(request).value();
  ASSERT_TRUE(second.GetBool("ok", false)) << second.Dump();
  auto second_done = client.WaitJob(
      static_cast<uint64_t>(second.GetNumber("job", 0))).value();
  ASSERT_EQ(second_done.GetString("status", ""), "ok");
  EXPECT_NE(second_done.GetString("fingerprint", ""), before_fp)
      << "the job ran on the stale pre-mutation snapshot";
}

TEST(ServerTest, MutateErrorsAreStructured) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());

  // Unknown graph name.
  Json updates = Json::MakeArray();
  Json add = Json::MakeObject();
  add.Set("op", "add");
  add.Set("u", 0);
  add.Set("v", 1);
  updates.PushBack(std::move(add));
  auto unknown = client.Mutate("nope", std::move(updates));
  EXPECT_FALSE(unknown.ok());

  // Out-of-range vertex id: structured error, session survives.
  Json request = Json::MakeObject();
  request.Set("op", "MUTATE");
  request.Set("graph", "default");
  Json bad_updates = Json::MakeArray();
  Json bad = Json::MakeObject();
  bad.Set("op", "add");
  bad.Set("u", 0);
  bad.Set("v", static_cast<double>(1u << 30));
  bad_updates.PushBack(std::move(bad));
  request.Set("updates", std::move(bad_updates));
  auto response = client.Call(request).value();
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code", ""), "out_of_range");
  EXPECT_TRUE(client.Call(Json::Parse(R"({"op":"STATS"})").value())
                  .value()
                  .GetBool("ok", false))
      << "the session must survive a rejected mutation";
}

TEST(ServerTest, MutateCompactFoldsTheDelta) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());
  Json updates = Json::MakeArray();
  Json add = Json::MakeObject();
  add.Set("op", "add");
  add.Set("u", 1);
  add.Set("v", 1);  // self loop: legal under the shared policy
  updates.PushBack(std::move(add));
  auto response =
      client.Mutate("default", std::move(updates), /*compact=*/true).value();
  EXPECT_TRUE(response.GetBool("compacted", false)) << response.Dump();
  EXPECT_EQ(response.GetNumber("applied", -1), 1);
}

// --- out-of-core + incremental on the wire ---------------------------------

TEST(ServerTest, OocSubmitStreamsOnWireAndMatchesInMemory) {
  auto g = TestGraph();
  // Budget the single device below the whole-graph PageRank working set but
  // above the streamed one (memory_scale *divides* the arch capacity).
  serve::JobSpec probe;
  probe.graph = g;
  core::PageRankOptions pr;
  pr.max_iterations = 12;
  probe.params = pr;
  const uint64_t full = serve::EstimateJobDeviceBytes(probe);
  const uint64_t streamed =
      ooc::EstimateStreamedBytes(serve::Algorithm::kPageRank,
                                 g->num_vertices(), g->has_weights(), 4096)
          .value();
  const uint64_t budget =
      std::max<uint64_t>(full * 3 / 5, streamed + streamed / 4);

  serve::Scheduler::Options options;
  serve::Scheduler::DeviceSlot slot;
  slot.arch = &vgpu::A100Config();
  slot.options.memory_scale =
      static_cast<double>(vgpu::A100Config().dram_capacity_bytes) /
      static_cast<double>(budget);
  options.devices = {slot};
  options.queue_capacity = 64;
  LiveServer live;
  live.scheduler =
      std::move(serve::Scheduler::Create(std::move(options)).value());
  Server::GraphMap graphs;
  graphs["default"] = g;
  live.server = std::move(
      Server::Start(live.scheduler.get(), std::move(graphs), {}).value());

  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());

  // Without the opt-in, the over-budget job is a hard admission reject.
  auto plain = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"pagerank","params":{"iters":12}})")
      .value()).value();
  ASSERT_TRUE(plain.GetBool("ok", false)) << plain.Dump();
  auto plain_done = client.WaitJob(
      static_cast<uint64_t>(plain.GetNumber("job", 0))).value();
  EXPECT_EQ(plain_done.GetString("status", ""), "resource_exhausted")
      << plain_done.Dump();

  // With "ooc": the same ask lands in the streamed tier and reports it.
  auto ooc = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"pagerank","params":{"iters":12},)"
      R"("ooc":true,"shard_bytes":4096})").value()).value();
  ASSERT_TRUE(ooc.GetBool("ok", false)) << ooc.Dump();
  auto done = client.WaitJob(
      static_cast<uint64_t>(ooc.GetNumber("job", 0))).value();
  ASSERT_EQ(done.GetString("status", ""), "ok") << done.Dump();
  EXPECT_TRUE(done.GetBool("streamed", false)) << done.Dump();
  EXPECT_GE(done.GetNumber("ooc_shards", 0), 2) << done.Dump();
  EXPECT_GT(done.GetNumber("ooc_staged_bytes", 0), 0) << done.Dump();

  // Byte-identical to the in-memory path on a full-size device.
  vgpu::Device roomy(vgpu::A100Config());
  auto payload = serve::GetHandler(serve::Algorithm::kPageRank)
                     .run(&roomy, probe, nullptr)
                     .value();
  EXPECT_EQ(done.GetString("fingerprint", ""),
            FingerprintHex(serve::FingerprintPayload(payload)));
}

TEST(ServerTest, IncrementalSubmitReportsPathOnWire) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());
  const std::string ask =
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":3},)"
      R"("incremental":true})";

  // Cold ask: no previous result of this algorithm exists yet, so a full
  // run happens and the response says why the warm start didn't.
  auto cold = client.Call(Json::Parse(ask).value()).value();
  ASSERT_TRUE(cold.GetBool("ok", false)) << cold.Dump();
  auto cold_done = client.WaitJob(
      static_cast<uint64_t>(cold.GetNumber("job", 0))).value();
  ASSERT_EQ(cold_done.GetString("status", ""), "ok") << cold_done.Dump();
  EXPECT_FALSE(cold_done.GetBool("incremental", true)) << cold_done.Dump();
  EXPECT_EQ(cold_done.GetString("fallback_reason", ""),
            "no previous result to warm-start from");
  EXPECT_EQ(cold_done.GetNumber("version", -1), 0) << cold_done.Dump();

  // Mutate: a small batch of inserts, well under the incremental
  // threshold; the cold run above seeded the previous-result store.
  Json updates = Json::MakeArray();
  for (uint32_t v = 60; v < 68; ++v) {
    Json update = Json::MakeObject();
    update.Set("op", "add");
    update.Set("u", 0);
    update.Set("v", static_cast<double>(v));
    updates.PushBack(std::move(update));
  }
  auto mutated = client.Mutate("default", std::move(updates)).value();
  ASSERT_GT(mutated.GetNumber("applied", 0), 0) << mutated.Dump();
  const double version = mutated.GetNumber("version", 0);

  // Warm ask: the delta path actually runs and the version advances.
  auto warm = client.Call(Json::Parse(ask).value()).value();
  ASSERT_TRUE(warm.GetBool("ok", false)) << warm.Dump();
  auto warm_done = client.WaitJob(
      static_cast<uint64_t>(warm.GetNumber("job", 0))).value();
  ASSERT_EQ(warm_done.GetString("status", ""), "ok") << warm_done.Dump();
  EXPECT_TRUE(warm_done.GetBool("incremental", false)) << warm_done.Dump();
  EXPECT_EQ(warm_done.GetString("fallback_reason", ""), "");
  EXPECT_EQ(warm_done.GetNumber("version", -1), version)
      << warm_done.Dump();

  // A deletion makes the next warm ask fall back — visibly.
  Json removal = Json::MakeArray();
  Json remove = Json::MakeObject();
  remove.Set("op", "remove");
  remove.Set("u", 0);
  remove.Set("v", 60);
  removal.PushBack(std::move(remove));
  ASSERT_GT(client.Mutate("default", std::move(removal))
                .value()
                .GetNumber("applied", 0),
            0);
  auto fell = client.Call(Json::Parse(ask).value()).value();
  ASSERT_TRUE(fell.GetBool("ok", false)) << fell.Dump();
  auto fell_done = client.WaitJob(
      static_cast<uint64_t>(fell.GetNumber("job", 0))).value();
  ASSERT_EQ(fell_done.GetString("status", ""), "ok") << fell_done.Dump();
  EXPECT_FALSE(fell_done.GetBool("incremental", true)) << fell_done.Dump();
  EXPECT_NE(fell_done.GetString("fallback_reason", "").find("deletion"),
            std::string::npos)
      << fell_done.Dump();
}

TEST(ServerTest, IncrementalOnStaticGraphIsFailedPrecondition) {
  // A base with duplicate adjacency fails delta normal-form validation and
  // stays static: SUBMIT works, incremental asks are a structured error.
  graph::CooGraph coo;
  coo.num_vertices = 3;
  coo.AddEdge(0, 1);
  coo.AddEdge(0, 1);
  coo.AddEdge(1, 2);
  auto g = std::make_shared<const CsrGraph>(CsrGraph::FromCoo(coo).value());
  auto live = StartServer(g);
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());

  auto refused = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":0},)"
      R"("incremental":true})").value()).value();
  EXPECT_FALSE(refused.GetBool("ok", true)) << refused.Dump();
  EXPECT_EQ(refused.GetString("code", ""), "failed_precondition")
      << refused.Dump();

  // The session and plain submits on the same graph keep working.
  auto plain = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":0}})").value())
      .value();
  ASSERT_TRUE(plain.GetBool("ok", false)) << plain.Dump();
  EXPECT_EQ(client.WaitJob(static_cast<uint64_t>(
                               plain.GetNumber("job", 0)))
                .value()
                .GetString("status", ""),
            "ok");
}

TEST(ServerTest, SequenceNumbersEchoInOrder) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());
  // Pipeline three STATS with seq tags; responses must come back in order.
  for (int seq = 10; seq < 13; ++seq) {
    Json request = Json::MakeObject();
    request.Set("op", "STATS");
    request.Set("seq", seq);
    ASSERT_TRUE(client.SendLine(request.Dump()).ok());
  }
  for (int seq = 10; seq < 13; ++seq) {
    auto response = Json::Parse(client.ReadLine().value()).value();
    EXPECT_EQ(response.GetNumber("seq", -1), seq);
  }
}

// --- trace identity + INSPECT (§2.14) --------------------------------------

std::vector<std::string> Keys(const Json& object) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : object.members()) keys.push_back(key);
  return keys;
}

// Golden key sets: the exact wire surface, in insertion order.  A key
// appearing, vanishing, or moving is a protocol change and must be a
// conscious one (update this test *and* DESIGN.md §2.10/§2.14).
TEST(ServerTest, GoldenSubmitPollAndStatsKeySets) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());

  // The client is the outermost layer here, so it mints the trace id; the
  // server must adopt it verbatim rather than minting its own.
  const std::string trace_hex = trace::TraceIdHex(trace::MintTraceId());
  auto request = Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":3},"tag":"t"})")
      .value();
  request.Set("trace_id", trace_hex);
  auto submitted = client.Call(request).value();
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  // Every response gains a trailing "op" echo from the dispatcher.
  EXPECT_EQ(Keys(submitted),
            (std::vector<std::string>{"ok", "job", "trace_id",
                                      "estimated_bytes", "tag", "op"}));
  EXPECT_EQ(submitted.GetString("trace_id", ""), trace_hex);

  auto done = client.WaitJob(
      static_cast<uint64_t>(submitted.GetNumber("job", 0))).value();
  ASSERT_EQ(done.GetString("status", ""), "ok") << done.Dump();
  EXPECT_EQ(Keys(done),
            (std::vector<std::string>{
                "ok", "done", "status", "tag", "device", "queue_ms",
                "exec_ms", "trace_id", "sched_job_id", "algo", "modeled_ms",
                "transfer_ms", "cache_hit", "fingerprint", "profile",
                "job", "op"}));
  EXPECT_EQ(done.GetString("trace_id", ""), trace_hex)
      << "the propagated id must survive SUBMIT -> scheduler -> POLL";
  const Json* profile = done.Find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(Keys(*profile),
            (std::vector<std::string>{
                "num_kernels", "total_ms", "total_cycles",
                "warp_inst_issued", "branches", "divergent_branches",
                "dram_bytes", "divergent_branch_ratio", "gld_efficiency",
                "gst_efficiency", "l1_hit_rate", "l2_hit_rate",
                "achieved_occupancy", "exposed_latency_cycles",
                "top_kernels"}));
  EXPECT_GT(profile->GetNumber("num_kernels", 0), 0);
  ASSERT_NE(profile->Find("top_kernels"), nullptr);
  ASSERT_GT(profile->Find("top_kernels")->size(), 0u);
  EXPECT_EQ(Keys(profile->Find("top_kernels")->items()[0]),
            (std::vector<std::string>{"kernel", "launches", "cycles",
                                      "time_ms"}));

  auto stats = client.Call(Json::Parse(R"({"op":"STATS"})").value()).value();
  ASSERT_TRUE(stats.GetBool("ok", false)) << stats.Dump();
  EXPECT_EQ(Keys(stats),
            (std::vector<std::string>{"ok", "jobs", "server", "tenants",
                                      "op"}));
  EXPECT_EQ(Keys(*stats.Find("jobs")),
            (std::vector<std::string>{
                "submitted", "completed", "failed", "rejected_admission",
                "rejected_backpressure", "shed_deadline", "queued",
                "running", "jobs_per_sec"}));
  EXPECT_EQ(Keys(*stats.Find("server")),
            (std::vector<std::string>{
                "sessions_open", "sessions_opened", "requests",
                "protocol_errors", "submits_accepted",
                "submits_rejected_quota", "mutations_applied"}));
}

// Regression: the wire job id used to be minted *after* Scheduler::Submit,
// so the id a client polled could never be matched to the spans already
// emitted for the job.  Both ids now ride the outcome, and INSPECT by the
// wire id must land on the record carrying the scheduler's id.
TEST(ServerTest, WireAndSchedulerJobIdsCorrelate) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());
  auto submitted = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":0}})").value())
      .value();
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  const uint64_t wire_id =
      static_cast<uint64_t>(submitted.GetNumber("job", 0));
  const std::string trace_hex = submitted.GetString("trace_id", "");
  ASSERT_NE(trace_hex, "");

  auto done = client.WaitJob(wire_id).value();
  ASSERT_EQ(done.GetString("status", ""), "ok") << done.Dump();
  EXPECT_EQ(done.GetNumber("job", 0), static_cast<double>(wire_id));
  const uint64_t sched_id =
      static_cast<uint64_t>(done.GetNumber("sched_job_id", 0));
  EXPECT_NE(sched_id, 0u);

  auto inspected = client.Inspect(wire_id).value();
  const Json* record = inspected.Find("record");
  ASSERT_NE(record, nullptr) << inspected.Dump();
  EXPECT_EQ(record->GetNumber("job", 0), static_cast<double>(wire_id));
  EXPECT_EQ(record->GetNumber("sched_job_id", 0),
            static_cast<double>(sched_id));
  EXPECT_EQ(record->GetString("trace_id", ""), trace_hex);
}

TEST(ServerTest, InspectReturnsSpanTreeProfileAndList) {
  auto live = StartServer(TestGraph());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("x").ok());
  auto submitted = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"pagerank","params":{"iters":8}})").value())
      .value();
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  auto done = client.WaitJob(
      static_cast<uint64_t>(submitted.GetNumber("job", 0))).value();
  ASSERT_EQ(done.GetString("status", ""), "ok") << done.Dump();
  const std::string trace_hex = done.GetString("trace_id", "");

  // By trace id (INSPECT needs no HELLO, but an existing session is fine):
  // the full tree — the wire-layer admit span at the head, the engine's
  // algo span, kernel spans — every one stamped with the job's identity.
  auto inspected = client.Inspect(0, trace_hex).value();
  const Json* record = inspected.Find("record");
  ASSERT_NE(record, nullptr) << inspected.Dump();
  EXPECT_EQ(record->GetString("status", ""), "ok");
  ASSERT_NE(record->Find("profile"), nullptr);
  EXPECT_GT(record->Find("profile")->GetNumber("num_kernels", 0), 0);
  const Json* spans = record->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_GT(spans->size(), 0u);
  bool saw_admit = false, saw_algo = false, saw_kernel = false;
  for (const Json& span : spans->items()) {
    const std::string name = span.GetString("name", "");
    saw_admit |= name == "admit";
    saw_algo |= name.rfind("algo:", 0) == 0;
    saw_kernel |= span.GetString("cat", "") == "kernel";
    const Json* args = span.Find("args");
    ASSERT_NE(args, nullptr) << name;
    EXPECT_EQ(args->GetString("trace_id", ""), trace_hex) << name;
  }
  EXPECT_TRUE(saw_admit) << "the wire layer heads the span tree";
  EXPECT_TRUE(saw_algo);
  EXPECT_TRUE(saw_kernel);

  // The no-selector list form carries summaries without span trees.
  auto listed = client.Inspect().value();
  const Json* records = listed.Find("records");
  ASSERT_NE(records, nullptr) << listed.Dump();
  ASSERT_GT(records->size(), 0u);
  bool found = false;
  for (const Json& entry : records->items()) {
    found |= entry.GetString("trace_id", "") == trace_hex;
    EXPECT_EQ(entry.Find("spans"), nullptr) << "list form omits span trees";
  }
  EXPECT_TRUE(found);

  // Unknown ids and malformed hex are structured errors, session survives.
  EXPECT_TRUE(client.Inspect(999999).status().IsNotFound());
  Json bad = Json::MakeObject();
  bad.Set("op", "INSPECT");
  bad.Set("trace_id", "not-hex!");
  auto error = client.Call(bad).value();
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_EQ(error.GetString("code", ""), "invalid_argument");
  EXPECT_TRUE(client.Call(Json::Parse(R"({"op":"STATS"})").value())
                  .value()
                  .GetBool("ok", false));
}

TEST(ServerTest, InspectWithoutFlightRecorderIsUnavailable) {
  serve::Scheduler::Options options;
  options.devices = {{.arch = &vgpu::A100Config(), .options = {}}};
  options.flight_recorder.enabled = false;
  LiveServer live;
  live.scheduler =
      std::move(serve::Scheduler::Create(std::move(options)).value());
  Server::GraphMap graphs;
  graphs["default"] = TestGraph();
  live.server = std::move(
      Server::Start(live.scheduler.get(), std::move(graphs), {}).value());
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  // Like STATS, INSPECT needs no HELLO handshake.
  Json request = Json::MakeObject();
  request.Set("op", "INSPECT");
  auto response = client.Call(request).value();
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code", ""), "unavailable");
}

TEST(ServerTest, ShutdownWithLiveSessionsReleasesEverything) {
  auto live = StartServer(TestGraph(),
                          {{.name = "alpha", .max_inflight_bytes = 1ull << 30}},
                          /*floor_ms=*/40);
  auto client = Client::Connect("127.0.0.1", live.server->port()).value();
  ASSERT_TRUE(client.Hello("alpha").ok());
  auto submitted = client.Call(Json::Parse(
      R"({"op":"SUBMIT","algo":"bfs","params":{"source":0}})").value())
      .value();
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  live.server->Shutdown();
  auto usage = live.server->tenants()->GetUsage("alpha");
  EXPECT_EQ(usage.inflight_jobs, 0u);
  EXPECT_EQ(usage.inflight_bytes, 0u);
  live.scheduler->Drain();
}

}  // namespace
}  // namespace adgraph::net
