#include <gtest/gtest.h>

#include <numeric>

#include "core/device_graph.h"
#include "graph/generate.h"
#include "util/random.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::core {
namespace {

using primitives::ExclusiveScanU32;
using primitives::Fill;
using primitives::GetElement;
using primitives::SetElement;
using vgpu::A100Config;
using vgpu::Device;

TEST(FillTest, FillsEveryElement) {
  Device dev(A100Config());
  auto buf = rt::DeviceBuffer<uint32_t>::Create(&dev, 1000).value();
  ASSERT_TRUE(Fill<uint32_t>(&dev, buf.ptr(), 1000, 0xABCD).ok());
  for (uint32_t v : buf.ToHost().value()) EXPECT_EQ(v, 0xABCDu);
}

TEST(FillTest, DoubleAndZeroCount) {
  Device dev(A100Config());
  auto buf = rt::DeviceBuffer<double>::Create(&dev, 10).value();
  ASSERT_TRUE(Fill<double>(&dev, buf.ptr(), 10, 3.25).ok());
  EXPECT_EQ(buf.ToHost().value()[9], 3.25);
  ASSERT_TRUE(Fill<double>(&dev, buf.ptr(), 0, 9.0).ok());  // no-op
  EXPECT_EQ(buf.ToHost().value()[0], 3.25);
}

TEST(ElementTest, SetAndGet) {
  Device dev(A100Config());
  auto buf = rt::DeviceBuffer<uint32_t>::CreateZeroed(&dev, 8).value();
  ASSERT_TRUE(SetElement<uint32_t>(&dev, buf.ptr(), 5, 77).ok());
  EXPECT_EQ(GetElement<uint32_t>(&dev, buf.ptr(), 5).value(), 77u);
  EXPECT_EQ(GetElement<uint32_t>(&dev, buf.ptr(), 4).value(), 0u);
}

void CheckScan(const std::vector<uint32_t>& input) {
  Device dev(A100Config());
  auto in = rt::DeviceBuffer<uint32_t>::FromHost(&dev, input).value();
  auto out = rt::DeviceBuffer<uint32_t>::Create(&dev, input.size()).value();
  auto total =
      ExclusiveScanU32(&dev, in.ptr(), out.ptr(), input.size()).value();
  std::vector<uint32_t> expected(input.size());
  uint64_t acc = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    expected[i] = static_cast<uint32_t>(acc);
    acc += input[i];
  }
  EXPECT_EQ(total, acc);
  EXPECT_EQ(out.ToHost().value(), expected);
}

TEST(ScanTest, SmallExact) { CheckScan({3, 1, 4, 1, 5, 9, 2, 6}); }

TEST(ScanTest, SingleElement) { CheckScan({42}); }

TEST(ScanTest, AllZeros) { CheckScan(std::vector<uint32_t>(100, 0)); }

TEST(ScanTest, ExactlyOneBlock) { CheckScan(std::vector<uint32_t>(256, 2)); }

TEST(ScanTest, MultiBlockUnevenTail) {
  std::vector<uint32_t> input(256 * 3 + 77);
  Rng rng(5);
  for (auto& v : input) v = static_cast<uint32_t>(rng.Uniform(10));
  CheckScan(input);
}

TEST(ScanTest, LargeRandom) {
  std::vector<uint32_t> input(10000);
  Rng rng(6);
  for (auto& v : input) v = static_cast<uint32_t>(rng.Uniform(100));
  CheckScan(input);
}

TEST(ScanTest, InPlaceAliasing) {
  Device dev(A100Config());
  std::vector<uint32_t> input{1, 2, 3, 4, 5};
  auto buf = rt::DeviceBuffer<uint32_t>::FromHost(&dev, input).value();
  auto total = ExclusiveScanU32(&dev, buf.ptr(), buf.ptr(), 5).value();
  EXPECT_EQ(total, 15u);
  auto host = buf.ToHost().value();
  EXPECT_EQ(host, (std::vector<uint32_t>{0, 1, 3, 6, 10}));
}

TEST(ScanTest, UsesBarriersAndSharedMemory) {
  Device dev(A100Config());
  std::vector<uint32_t> input(512, 1);
  auto in = rt::DeviceBuffer<uint32_t>::FromHost(&dev, input).value();
  auto out = rt::DeviceBuffer<uint32_t>::Create(&dev, 512).value();
  size_t log_before = dev.kernel_log().size();
  ASSERT_TRUE(ExclusiveScanU32(&dev, in.ptr(), out.ptr(), 512).ok());
  vgpu::KernelCounters merged;
  for (size_t i = log_before; i < dev.kernel_log().size(); ++i) {
    merged.Merge(dev.kernel_log()[i].counters);
  }
  EXPECT_GT(merged.barriers, 0u);
  EXPECT_GT(merged.shared_store_inst, 0u);
  EXPECT_GT(merged.shared_load_inst, 0u);
}


TEST(ReduceTest, SumsExactly) {
  Device dev(A100Config());
  std::vector<double> values(1000);
  double expected = 0;
  Rng rng(9);
  for (auto& v : values) {
    v = rng.NextDouble();
    expected += v;
  }
  auto buf = rt::DeviceBuffer<double>::FromHost(&dev, values).value();
  auto sum =
      primitives::ReduceSumF64(&dev, buf.ptr(), values.size()).value();
  EXPECT_NEAR(sum, expected, 1e-9);
}

TEST(ReduceTest, EmptyAndSingle) {
  Device dev(A100Config());
  auto buf = rt::DeviceBuffer<double>::FromHost(&dev, {42.5}).value();
  EXPECT_DOUBLE_EQ(primitives::ReduceSumF64(&dev, buf.ptr(), 0).value(), 0.0);
  EXPECT_DOUBLE_EQ(primitives::ReduceSumF64(&dev, buf.ptr(), 1).value(),
                   42.5);
}

TEST(DeviceCsrTest, UploadCarriesShapeAndWeights) {
  Device dev(A100Config());
  auto coo = graph::GenerateErdosRenyi(100, 500, 4).value();
  graph::AttachRandomWeights(&coo, 0.5, 1.5, 5);
  auto g = graph::CsrGraph::FromCoo(coo).value();
  auto d = DeviceCsr::Upload(&dev, g).value();
  EXPECT_EQ(d.num_vertices, 100u);
  EXPECT_EQ(d.num_edges, 500u);
  EXPECT_TRUE(d.has_weights());
  auto row = d.row_offsets.ToHost().value();
  EXPECT_EQ(row, g.row_offsets());
  auto w = d.weights.ToHost().value();
  EXPECT_EQ(w, g.weights());
}

TEST(DeviceCsrTest, UploadFailsWhenTooLarge) {
  vgpu::Device::Options options;
  options.memory_scale = 1e6;
  Device dev(A100Config(), options);
  auto coo = graph::GenerateErdosRenyi(1 << 12, 1 << 16, 4).value();
  auto g = graph::CsrGraph::FromCoo(coo).value();
  auto d = DeviceCsr::Upload(&dev, g);
  ASSERT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsOutOfMemory());
}

}  // namespace
}  // namespace adgraph::core
