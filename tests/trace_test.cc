// End-to-end tests of src/trace/: sink semantics, the Chrome trace-event
// JSON export, and the span structure the instrumented stack emits — the
// golden check that a serve-batch trace nests job ⊃ algorithm ⊃ kernel and
// shows one track per device and per worker.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/bfs.h"
#include "graph/builder.h"
#include "graph/generate.h"
#include "prof/report.h"
#include "serve/job.h"
#include "serve/scheduler.h"
#include "trace/trace.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace {

using adgraph::trace::Collector;
using adgraph::trace::Span;
using adgraph::trace::TraceEvent;

adgraph::graph::CsrGraph TestGraph(uint64_t seed) {
  auto coo = adgraph::graph::GenerateRmat(
                 {.scale = 8, .edge_factor = 6, .seed = seed})
                 .value();
  adgraph::graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return adgraph::graph::CsrGraph::FromCoo(coo, options).value();
}

// --- minimal Chrome trace-event JSON reader --------------------------------
//
// The exporter writes one event object per line with no nested objects
// except a trailing flat "args" map, so a small hand-rolled reader is
// enough to keep this test dependency-free.

struct ParsedEvent {
  std::string ph;
  std::string name;
  std::string cat;
  uint64_t tid = 0;
  double ts = 0;
  double dur = 0;
  std::map<std::string, std::string> args;  // string values unquoted
};

/// Reads the JSON string starting at the opening quote; returns the value
/// and advances `pos` past the closing quote.
std::string ReadJsonString(const std::string& s, size_t* pos) {
  EXPECT_EQ(s[*pos], '"') << s.substr(*pos, 20);
  std::string out;
  for (size_t i = *pos + 1; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      out.push_back(s[++i]);
    } else if (c == '"') {
      *pos = i + 1;
      return out;
    } else {
      out.push_back(c);
    }
  }
  ADD_FAILURE() << "unterminated string in " << s;
  return out;
}

/// Reads a bare JSON number token starting at `pos`.
std::string ReadJsonNumber(const std::string& s, size_t* pos) {
  size_t start = *pos;
  while (*pos < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[*pos])) ||
          s[*pos] == '-' || s[*pos] == '+' || s[*pos] == '.' ||
          s[*pos] == 'e' || s[*pos] == 'E')) {
    ++*pos;
  }
  return s.substr(start, *pos - start);
}

/// Parses the flat key/value object starting at the '{' at `pos`.
std::map<std::string, std::string> ReadFlatObject(const std::string& s,
                                                  size_t* pos) {
  std::map<std::string, std::string> out;
  EXPECT_EQ(s[*pos], '{');
  ++*pos;
  while (*pos < s.size() && s[*pos] != '}') {
    if (s[*pos] == ',') {
      ++*pos;
      continue;
    }
    std::string key = ReadJsonString(s, pos);
    EXPECT_EQ(s[*pos], ':');
    ++*pos;
    out[key] = s[*pos] == '"' ? ReadJsonString(s, pos)
                              : ReadJsonNumber(s, pos);
  }
  if (*pos < s.size()) ++*pos;  // consume '}'
  return out;
}

/// Parses one `{...}` event line into a ParsedEvent.
ParsedEvent ParseEventLine(std::string line) {
  while (!line.empty() && (line.back() == ',' || line.back() == '\r')) {
    line.pop_back();
  }
  ParsedEvent event;
  size_t pos = 0;
  EXPECT_EQ(line[pos], '{');
  ++pos;
  while (pos < line.size() && line[pos] != '}') {
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    std::string key = ReadJsonString(line, &pos);
    EXPECT_EQ(line[pos], ':') << line;
    ++pos;
    if (key == "args") {
      event.args = ReadFlatObject(line, &pos);
    } else {
      std::string value = line[pos] == '"' ? ReadJsonString(line, &pos)
                                           : ReadJsonNumber(line, &pos);
      if (key == "ph") event.ph = value;
      if (key == "name") event.name = value;
      if (key == "cat") event.cat = value;
      if (key == "tid") event.tid = std::stoull(value);
      if (key == "ts") event.ts = std::stod(value);
      if (key == "dur") event.dur = std::stod(value);
    }
  }
  return event;
}

std::vector<ParsedEvent> ParseTraceFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<ParsedEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '{') continue;
    if (line.find("\"traceEvents\"") != std::string::npos) continue;
    events.push_back(ParseEventLine(line.substr(first)));
  }
  return events;
}

/// True iff `inner` lies within `outer` on the time axis (with a little
/// slack for the sub-microsecond rounding of the exporter).
bool Contains(const ParsedEvent& outer, const ParsedEvent& inner) {
  constexpr double kSlackUs = 2.0;
  return outer.ts - kSlackUs <= inner.ts &&
         inner.ts + inner.dur <= outer.ts + outer.dur + kSlackUs;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// --- sink semantics --------------------------------------------------------

TEST(TraceTest, DisabledTracingIsInert) {
  ASSERT_FALSE(adgraph::trace::GlobalActive());
  EXPECT_FALSE(adgraph::trace::Enabled());
  {
    Span span(0, "should_not_emit", "test");
    EXPECT_FALSE(span.active());
    span.ArgNum("x", uint64_t{1});
  }
  // Nothing reaches the global ring while no window is open.
  Collector probe;
  EXPECT_TRUE(adgraph::trace::Enabled()) << "a collector is a sink";
  EXPECT_TRUE(probe.Events().empty());
}

TEST(TraceTest, CollectorBoundedRingDropsOldest) {
  Collector collector(/*ring_capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    Span span(0, "span" + std::to_string(i), "test");
    span.End();
  }
  auto events = collector.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(collector.dropped(), 2u);
  // Oldest-first order with the two oldest evicted.
  EXPECT_EQ(events[0].name, "span2");
  EXPECT_EQ(events[2].name, "span4");
}

TEST(TraceTest, GlobalWindowLifecycle) {
  adgraph::trace::TraceOptions options;
  options.enabled = true;
  ASSERT_TRUE(adgraph::trace::Start(options).ok());
  EXPECT_TRUE(adgraph::trace::GlobalActive());
  EXPECT_FALSE(adgraph::trace::Start(options).ok())
      << "second Start while open must fail (kAlreadyExists)";
  {
    Span span(0, "global_span", "test");
    span.ArgNum("answer", uint64_t{42});
  }
  ASSERT_TRUE(adgraph::trace::Stop().ok());
  EXPECT_FALSE(adgraph::trace::GlobalActive());
  auto events = adgraph::trace::GlobalEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "global_span");
  EXPECT_TRUE(adgraph::trace::Stop().ok()) << "Stop is idempotent";
}

// --- golden export: single-device algorithm run ----------------------------

TEST(TraceTest, KernelSpansCarryCycleBreakdown) {
  const std::string path = TempPath("trace_bfs.json");
  adgraph::trace::TraceOptions options;
  options.enabled = true;
  options.path = path;
  ASSERT_TRUE(adgraph::trace::Start(options).ok());

  auto g = TestGraph(31);
  adgraph::vgpu::Device device(adgraph::vgpu::A100Config());
  adgraph::core::BfsOptions bfs;
  bfs.source = 0;
  ASSERT_TRUE(adgraph::core::RunBfs(&device, g, bfs).ok());
  ASSERT_TRUE(adgraph::trace::Stop().ok());

  auto events = ParseTraceFile(path);
  std::remove(path.c_str());
  ASSERT_FALSE(events.empty());

  // Every kernel launch produced a span with the modeled cycle breakdown.
  std::vector<ParsedEvent> kernels;
  for (const auto& e : events) {
    if (e.ph == "X" && e.cat == "kernel") kernels.push_back(e);
  }
  ASSERT_FALSE(kernels.empty());
  for (const auto& k : kernels) {
    EXPECT_EQ(k.args.count("cycles"), 1u) << k.name;
    EXPECT_EQ(k.args.count("dram_cycles"), 1u) << k.name;
    EXPECT_EQ(k.args.count("valu_cycles"), 1u) << k.name;
    EXPECT_EQ(k.args.count("modeled_ms"), 1u) << k.name;
    EXPECT_EQ(k.args.count("achieved_occupancy"), 1u) << k.name;
  }

  // The algorithm span exists and contains every kernel span in time.
  const ParsedEvent* algo = nullptr;
  for (const auto& e : events) {
    if (e.ph == "X" && e.name == "algo:bfs") algo = &e;
  }
  ASSERT_NE(algo, nullptr);
  for (const auto& k : kernels) {
    EXPECT_TRUE(Contains(*algo, k)) << k.name;
  }
}

// --- golden export: serve pool ---------------------------------------------

TEST(TraceTest, ServeTraceNestsJobAlgoKernelWithPerDeviceTracks) {
  const std::string path = TempPath("trace_serve.json");
  adgraph::serve::Scheduler::Options options;
  options.devices.push_back({.arch = &adgraph::vgpu::A100Config()});
  options.devices.push_back({.arch = &adgraph::vgpu::V100Config()});
  options.trace.enabled = true;
  options.trace.path = path;
  auto scheduler = adgraph::serve::Scheduler::Create(std::move(options));
  ASSERT_TRUE(scheduler.ok());

  auto shared = std::make_shared<const adgraph::graph::CsrGraph>(TestGraph(32));
  std::vector<std::future<adgraph::serve::JobOutcome>> futures;
  for (const char* arch : {"A100", "V100"}) {
    adgraph::serve::JobSpec spec;
    spec.graph = shared;
    adgraph::core::BfsOptions bfs;
    bfs.source = 0;
    spec.params = bfs;
    spec.arch_preference = arch;
    auto submitted = (*scheduler)->Submit(std::move(spec));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());

  // The in-memory summary works while the session is still live.
  std::string summary =
      adgraph::prof::FormatTraceSummary((*scheduler)->TraceEvents());
  EXPECT_NE(summary.find("Trace summary:"), std::string::npos);

  (*scheduler)->Shutdown();  // joins workers and writes the JSON
  auto events = ParseTraceFile(path);
  std::remove(path.c_str());
  ASSERT_FALSE(events.empty());

  // Track names, from the metadata events.
  std::map<uint64_t, std::string> track_names;
  for (const auto& e : events) {
    if (e.ph == "M" && e.name == "thread_name") {
      ASSERT_EQ(track_names.count(e.tid), 0u)
          << "duplicate thread_name for tid " << e.tid;
      track_names[e.tid] = e.args.at("name");
    }
  }

  // One device track and one worker track per pooled GPU, all distinct.
  std::set<uint64_t> kernel_tracks;
  std::set<uint64_t> job_tracks;
  for (const auto& e : events) {
    if (e.ph != "X") continue;
    if (e.cat == "kernel") kernel_tracks.insert(e.tid);
    if (e.cat == "serve" && e.name.rfind("job:", 0) == 0) {
      job_tracks.insert(e.tid);
    }
  }
  EXPECT_EQ(kernel_tracks.size(), 2u) << "one device track per pooled GPU";
  EXPECT_EQ(job_tracks.size(), 2u) << "one worker track per worker thread";
  for (uint64_t t : kernel_tracks) {
    EXPECT_EQ(track_names.at(t).rfind("device ", 0), 0u) << track_names.at(t);
    EXPECT_EQ(job_tracks.count(t), 0u)
        << "device and worker spans must live on different tracks";
  }
  for (uint64_t t : job_tracks) {
    EXPECT_EQ(track_names.at(t).rfind("worker ", 0), 0u) << track_names.at(t);
  }

  // Nesting: every algo span sits inside some job span, and every kernel
  // span inside some algo span (time containment; tracks differ by design).
  std::vector<ParsedEvent> jobs, algos, kernels;
  for (const auto& e : events) {
    if (e.ph != "X") continue;
    if (e.name.rfind("job:", 0) == 0) jobs.push_back(e);
    if (e.name.rfind("algo:", 0) == 0) algos.push_back(e);
    if (e.cat == "kernel") kernels.push_back(e);
  }
  ASSERT_EQ(jobs.size(), 2u);
  ASSERT_EQ(algos.size(), 2u);
  ASSERT_FALSE(kernels.empty());
  for (const auto& a : algos) {
    bool contained = false;
    for (const auto& j : jobs) contained |= Contains(j, a);
    EXPECT_TRUE(contained) << "algo span outside every job span";
  }
  for (const auto& k : kernels) {
    bool contained = false;
    for (const auto& a : algos) contained |= Contains(a, k);
    EXPECT_TRUE(contained) << k.name << " outside every algo span";
  }

  // Each job also left a queue_wait span on its worker track.
  size_t queue_waits = 0;
  for (const auto& e : events) {
    if (e.ph == "X" && e.name == "queue_wait") {
      ++queue_waits;
      EXPECT_EQ(job_tracks.count(e.tid), 1u);
    }
  }
  EXPECT_EQ(queue_waits, 2u);
}

// --- per-job trace context (§2.14) -----------------------------------------

TEST(TraceTest, TraceIdMintAndHexRoundTrip) {
  const uint64_t id = adgraph::trace::MintTraceId();
  EXPECT_NE(id, 0u);
  EXPECT_NE(adgraph::trace::MintTraceId(), id) << "ids are unique";
  const std::string hex = adgraph::trace::TraceIdHex(id);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(adgraph::trace::ParseTraceIdHex(hex), id);
  // Malformed spellings parse to 0, which is never minted.
  EXPECT_EQ(adgraph::trace::ParseTraceIdHex(""), 0u);
  EXPECT_EQ(adgraph::trace::ParseTraceIdHex("not-hex!"), 0u);
  EXPECT_EQ(adgraph::trace::ParseTraceIdHex("00112233445566778"), 0u)
      << "17 digits overflow";
}

TEST(TraceTest, ScopedContextStampsIdentityAndFeedsCapture) {
  ASSERT_FALSE(adgraph::trace::GlobalActive());
  auto capture = std::make_shared<adgraph::trace::SpanCapture>();
  const uint64_t id = adgraph::trace::MintTraceId();
  EXPECT_FALSE(adgraph::trace::Enabled());
  {
    adgraph::trace::ScopedTraceContext scope(
        adgraph::trace::TraceContext{id, 7, 9, capture});
    EXPECT_TRUE(adgraph::trace::Enabled())
        << "a per-job capture is a sink even with global tracing off";
    Span span(0, "ctx_span", "test");
    span.End();
  }
  EXPECT_FALSE(adgraph::trace::Enabled()) << "context restored on exit";
  EXPECT_EQ(adgraph::trace::CurrentContext().trace_id, 0u);

  auto events = capture->Events();
  ASSERT_EQ(events.size(), 1u);
  std::map<std::string, std::string> args;
  for (const auto& arg : events[0].args) args[arg.key] = arg.value;
  EXPECT_EQ(args.at("trace_id"), adgraph::trace::TraceIdHex(id));
  EXPECT_EQ(args.at("wire_job_id"), "7");
  EXPECT_EQ(args.at("sched_job_id"), "9");
}

TEST(TraceTest, SpanCaptureDropsNewestWhenFull) {
  auto capture = std::make_shared<adgraph::trace::SpanCapture>(2);
  {
    adgraph::trace::ScopedTraceContext scope(adgraph::trace::TraceContext{
        adgraph::trace::MintTraceId(), 0, 1, capture});
    for (int i = 0; i < 4; ++i) {
      Span span(0, "span" + std::to_string(i), "test");
      span.End();
    }
  }
  auto events = capture->Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(capture->dropped(), 2u);
  // The *oldest* spans survive: a job's opening spans (wire, queue,
  // admission) are the part an operator can least afford to lose.
  EXPECT_EQ(events[0].name, "span0");
  EXPECT_EQ(events[1].name, "span1");
}

TEST(TraceTest, TraceSummaryRanksSpans) {
  Collector collector;
  {
    Span a(0, "slow", "test");
    Span b(0, "fast", "test");
    b.End();
    a.End();
  }
  std::string summary = adgraph::prof::FormatTraceSummary(collector.Events());
  EXPECT_NE(summary.find("2 spans"), std::string::npos) << summary;
  EXPECT_NE(summary.find("test:slow"), std::string::npos) << summary;
  EXPECT_EQ(
      adgraph::prof::FormatTraceSummary({}).find("no spans recorded"), 15u);
}

}  // namespace
