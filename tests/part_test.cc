// Tests of src/part/: the interconnect model, 1-D partition plans, shard
// graph materialization, the partitioned engine's validation, and the
// partitioned BFS / PageRank drivers — including the load-bearing property
// that partitioned BFS levels are byte-identical to the single-device run
// and partitioned PageRank matches within floating-point re-association
// error, across shard counts (2 / 3 / 8) and with empty shards.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/bfs.h"
#include "core/pagerank.h"
#include "graph/csr.h"
#include "graph/generate.h"
#include "part/engine.h"
#include "part/part_bfs.h"
#include "part/part_pagerank.h"
#include "part/partition.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"
#include "vgpu/interconnect.h"

namespace adgraph::part {
namespace {

using graph::CsrGraph;
using graph::vid_t;

CsrGraph TestGraph(uint32_t scale = 9, uint64_t seed = 42) {
  auto coo = graph::GenerateRmat(
                 {.scale = scale, .edge_factor = 8.0, .seed = seed})
                 .value();
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  options.make_undirected = true;
  return CsrGraph::FromCoo(coo, options).value();
}

/// Hub 0 connected to everyone else — maximal degree skew for the
/// degree-balanced strategy to chew on.
CsrGraph StarGraph(vid_t n) {
  graph::CooGraph coo;
  coo.num_vertices = n;
  for (vid_t v = 1; v < n; ++v) {
    coo.AddEdge(0, v);
    coo.AddEdge(v, 0);
  }
  return CsrGraph::FromCoo(coo, {}).value();
}

// ---------------------------------------------------------------------------
// Interconnect model
// ---------------------------------------------------------------------------

TEST(InterconnectTest, PresetsParseByName) {
  auto pcie = vgpu::InterconnectPresetByName("pcie");
  ASSERT_TRUE(pcie.ok());
  EXPECT_EQ(pcie->name, "pcie");
  auto nvlink = vgpu::InterconnectPresetByName("nvlink");
  ASSERT_TRUE(nvlink.ok());
  EXPECT_GT(nvlink->link_gbps, pcie->link_gbps);
  EXPECT_LT(nvlink->latency_us, pcie->latency_us);
  EXPECT_FALSE(vgpu::InterconnectPresetByName("infiniband").ok());
}

TEST(InterconnectTest, ValidateRejectsDegenerateConfigs) {
  vgpu::InterconnectConfig config = vgpu::NvlinkPreset();
  EXPECT_TRUE(vgpu::ValidateInterconnectConfig(config).ok());
  config.link_gbps = 0;
  EXPECT_EQ(vgpu::ValidateInterconnectConfig(config).code(),
            StatusCode::kInvalidArgument);
  config = vgpu::NvlinkPreset();
  config.link_gbps = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(vgpu::ValidateInterconnectConfig(config).ok());
  config = vgpu::NvlinkPreset();
  config.latency_us = -1;
  EXPECT_FALSE(vgpu::ValidateInterconnectConfig(config).ok());
  config = vgpu::NvlinkPreset();
  config.latency_us = std::nan("");
  EXPECT_FALSE(vgpu::ValidateInterconnectConfig(config).ok());
}

TEST(InterconnectTest, RoundTimingIsLatencyPlusBusiestLink) {
  vgpu::InterconnectConfig config;
  config.name = "test";
  config.link_gbps = 1.0;   // 1e9 B/s: 1e6 bytes == 1 ms
  config.latency_us = 10.0;
  vgpu::Interconnect ic(3, config);

  ic.AccountTransfer(0, 1, 1'000'000);  // busiest link
  ic.AccountTransfer(0, 2, 250'000);
  ic.AccountTransfer(2, 1, 500'000);
  auto round = ic.EndRound("test-round");
  EXPECT_EQ(round.bytes, 1'750'000u);
  EXPECT_NEAR(round.modeled_ms, 0.01 + 1.0, 1e-9);

  EXPECT_EQ(ic.total_bytes(), 1'750'000u);
  EXPECT_EQ(ic.total_rounds(), 1u);
  EXPECT_EQ(ic.pair_bytes()[0 * 3 + 1], 1'000'000u);
  EXPECT_EQ(ic.pair_bytes()[2 * 3 + 1], 500'000u);
}

TEST(InterconnectTest, EmptyRoundCostsNothingAndLocalTrafficIsFree) {
  vgpu::Interconnect ic(2, vgpu::NvlinkPreset());
  ic.AccountTransfer(1, 1, 12345);  // src == dst: never crosses a link
  auto round = ic.EndRound("empty");
  EXPECT_EQ(round.bytes, 0u);
  EXPECT_EQ(round.modeled_ms, 0.0);
  EXPECT_EQ(ic.total_bytes(), 0u);
}

TEST(InterconnectTest, CounterRecordMirrorsTotals) {
  vgpu::Interconnect ic(2, vgpu::NvlinkPreset());
  ic.AccountTransfer(0, 1, 4096);
  ic.EndRound("r1");
  ic.AccountTransfer(1, 0, 1024);
  ic.EndRound("r2");
  auto record = ic.CounterRecord();
  EXPECT_EQ(record.peer_bytes_sent, 5120u);
  EXPECT_EQ(record.peer_bytes_received, 5120u);
  EXPECT_EQ(record.peer_exchanges, 2u);
}

// ---------------------------------------------------------------------------
// Partition plans and shard graphs
// ---------------------------------------------------------------------------

TEST(PartitionPlanTest, UniformCoversRangeEvenly) {
  CsrGraph g = TestGraph();
  auto plan = MakePartitionPlan(g, 3, PartitionStrategy::kUniform);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->num_shards(), 3u);
  EXPECT_EQ(plan->boundaries.front(), 0u);
  EXPECT_EQ(plan->boundaries.back(), g.num_vertices());
  vid_t min_size = g.num_vertices();
  vid_t max_size = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    min_size = std::min(min_size, plan->shard_size(s));
    max_size = std::max(max_size, plan->shard_size(s));
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(PartitionPlanTest, DegreeBalancedTamesSkew) {
  CsrGraph star = StarGraph(1000);
  auto uniform = MakePartitionPlan(star, 4, PartitionStrategy::kUniform);
  auto degree = MakePartitionPlan(star, 4, PartitionStrategy::kDegreeBalanced);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(degree.ok());
  auto shard_edges = [&](const PartitionPlan& plan, uint32_t s) {
    uint64_t edges = 0;
    for (vid_t v = plan.lo(s); v < plan.hi(s); ++v) edges += star.degree(v);
    return edges;
  };
  auto max_edges = [&](const PartitionPlan& plan) {
    uint64_t most = 0;
    for (uint32_t s = 0; s < plan.num_shards(); ++s) {
      most = std::max(most, shard_edges(plan, s));
    }
    return most;
  };
  // Uniform parks the hub plus a quarter of the spokes on shard 0; the
  // degree-balanced split must do strictly better on the busiest shard.
  EXPECT_LT(max_edges(*degree), max_edges(*uniform));
}

TEST(PartitionPlanTest, OwnerOfMatchesBoundaries) {
  CsrGraph g = TestGraph();
  auto plan = MakePartitionPlan(g, 5, PartitionStrategy::kDegreeBalanced);
  ASSERT_TRUE(plan.ok());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const uint32_t owner = plan->OwnerOf(v);
    EXPECT_GE(v, plan->lo(owner));
    EXPECT_LT(v, plan->hi(owner));
  }
}

TEST(PartitionPlanTest, MoreShardsThanVerticesLeavesEmptyShards) {
  CsrGraph tiny = StarGraph(5);
  auto plan = MakePartitionPlan(tiny, 8, PartitionStrategy::kUniform);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_shards(), 8u);
  uint32_t empty = 0;
  vid_t covered = 0;
  for (uint32_t s = 0; s < 8; ++s) {
    covered += plan->shard_size(s);
    if (plan->shard_size(s) == 0) ++empty;
  }
  EXPECT_EQ(covered, 5u);
  EXPECT_GE(empty, 3u);
}

TEST(PartitionPlanTest, ZeroShardsRejected) {
  CsrGraph g = StarGraph(5);
  EXPECT_FALSE(MakePartitionPlan(g, 0, PartitionStrategy::kUniform).ok());
}

TEST(BuildShardGraphTest, OwnedRowsKeepGlobalAdjacency) {
  CsrGraph g = TestGraph(8);
  auto plan = MakePartitionPlan(g, 3, PartitionStrategy::kUniform);
  ASSERT_TRUE(plan.ok());
  for (uint32_t s = 0; s < 3; ++s) {
    auto shard = BuildShardGraph(g, *plan, s);
    ASSERT_TRUE(shard.ok());
    ASSERT_EQ(shard->num_vertices(), g.num_vertices());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (v >= plan->lo(s) && v < plan->hi(s)) {
        ASSERT_EQ(shard->degree(v), g.degree(v)) << "owned row " << v;
        auto mine = shard->neighbors(v);
        auto theirs = g.neighbors(v);
        EXPECT_TRUE(std::equal(mine.begin(), mine.end(), theirs.begin()));
      } else {
        EXPECT_EQ(shard->degree(v), 0u) << "foreign row " << v;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine validation
// ---------------------------------------------------------------------------

TEST(EngineTest, CreateValidatesDeviceCount) {
  PartitionedEngine::Options options;
  options.num_devices = 0;
  EXPECT_FALSE(PartitionedEngine::Create(vgpu::A100Config(), options).ok());
}

TEST(EngineTest, CreateRejectsPathologicalArch) {
  PartitionedEngine::Options options;
  vgpu::ArchConfig broken = vgpu::A100Config();
  broken.num_sms = 0;
  auto engine = PartitionedEngine::Create(broken, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);

  broken = vgpu::A100Config();
  broken.clock_ghz = 0;
  EXPECT_FALSE(PartitionedEngine::Create(broken, options).ok());
}

TEST(EngineTest, CreateRejectsDegenerateInterconnect) {
  PartitionedEngine::Options options;
  options.interconnect.link_gbps = 0;
  EXPECT_FALSE(PartitionedEngine::Create(vgpu::A100Config(), options).ok());
}

TEST(EngineTest, CreateBuildsPool) {
  PartitionedEngine::Options options;
  options.num_devices = 4;
  auto engine = PartitionedEngine::Create(vgpu::A100Config(), options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->num_devices(), 4u);
  for (uint32_t d = 0; d < 4; ++d) {
    EXPECT_NE((*engine)->device(d), nullptr);
  }
  EXPECT_EQ((*engine)->interconnect().num_devices(), 4u);
  EXPECT_EQ((*engine)->ElapsedSnapshot().size(), 4u);
}

// ---------------------------------------------------------------------------
// Partitioned BFS: byte-identity property
// ---------------------------------------------------------------------------

core::BfsResult ReferenceBfs(const CsrGraph& g, vid_t source) {
  vgpu::Device device(vgpu::A100Config());
  core::BfsOptions options;
  options.source = source;
  options.direction_optimizing = false;
  return core::RunBfs(&device, g, options).value();
}

TEST(PartBfsTest, ByteIdenticalAcrossShardCountsAndStrategies) {
  CsrGraph g = TestGraph(9);
  const vid_t source = 3;
  core::BfsResult reference = ReferenceBfs(g, source);

  for (uint32_t num_devices : {2u, 3u, 8u}) {
    for (auto strategy : {PartitionStrategy::kUniform,
                          PartitionStrategy::kDegreeBalanced}) {
      PartitionedEngine::Options options;
      options.num_devices = num_devices;
      options.strategy = strategy;
      auto engine = PartitionedEngine::Create(vgpu::A100Config(), options);
      ASSERT_TRUE(engine.ok());
      auto plan = MakePartitionPlan(g, num_devices, strategy);
      ASSERT_TRUE(plan.ok());

      PartBfsOptions bfs_options;
      bfs_options.source = source;
      auto bfs = RunPartitionedBfs(engine->get(), g, *plan, bfs_options);
      ASSERT_TRUE(bfs.ok()) << bfs.status().ToString();

      ASSERT_EQ(bfs->levels.size(), reference.levels.size());
      EXPECT_EQ(std::memcmp(bfs->levels.data(), reference.levels.data(),
                            bfs->levels.size() * sizeof(uint32_t)),
                0)
          << num_devices << " devices, "
          << PartitionStrategyName(strategy);
      EXPECT_EQ(bfs->depth, reference.depth);
      EXPECT_EQ(bfs->vertices_visited, reference.vertices_visited);
      EXPECT_EQ(bfs->rounds, bfs->round_exchange_bytes.size());
      EXPECT_GT(bfs->exchange_bytes, 0u) << "cut edges must move bytes";
      EXPECT_GT(bfs->time_ms, 0.0);
      EXPECT_NEAR(bfs->time_ms, bfs->compute_ms + bfs->exchange_ms, 1e-12);
    }
  }
}

TEST(PartBfsTest, EmptyShardsAndUnreachableVertices) {
  // 5-vertex star plus two isolated vertices, split 8 ways: most shards are
  // empty and vertices 5/6 stay unreached.
  graph::CooGraph coo;
  coo.num_vertices = 7;
  for (vid_t v = 1; v < 5; ++v) {
    coo.AddEdge(0, v);
    coo.AddEdge(v, 0);
  }
  CsrGraph g = CsrGraph::FromCoo(coo, {}).value();
  core::BfsResult reference = ReferenceBfs(g, 0);

  PartitionedEngine::Options options;
  options.num_devices = 8;
  auto engine = PartitionedEngine::Create(vgpu::A100Config(), options);
  ASSERT_TRUE(engine.ok());
  auto plan = MakePartitionPlan(g, 8, PartitionStrategy::kUniform);
  ASSERT_TRUE(plan.ok());

  PartBfsOptions bfs_options;
  bfs_options.source = 0;
  auto bfs = RunPartitionedBfs(engine->get(), g, *plan, bfs_options);
  ASSERT_TRUE(bfs.ok()) << bfs.status().ToString();
  EXPECT_EQ(bfs->levels, reference.levels);
  EXPECT_EQ(bfs->vertices_visited, 5u);
  EXPECT_EQ(bfs->levels[5], core::kUnreachedLevel);
  EXPECT_EQ(bfs->levels[6], core::kUnreachedLevel);
}

TEST(PartBfsTest, ValidatesInputs) {
  CsrGraph g = StarGraph(10);
  PartitionedEngine::Options options;
  options.num_devices = 2;
  auto engine = PartitionedEngine::Create(vgpu::A100Config(), options);
  ASSERT_TRUE(engine.ok());
  auto plan = MakePartitionPlan(g, 2, PartitionStrategy::kUniform);
  ASSERT_TRUE(plan.ok());

  PartBfsOptions bfs_options;
  bfs_options.source = 10;  // out of range
  EXPECT_FALSE(RunPartitionedBfs(engine->get(), g, *plan, bfs_options).ok());

  auto wrong_plan = MakePartitionPlan(g, 3, PartitionStrategy::kUniform);
  ASSERT_TRUE(wrong_plan.ok());
  bfs_options.source = 0;
  EXPECT_FALSE(
      RunPartitionedBfs(engine->get(), g, *wrong_plan, bfs_options).ok())
      << "plan shard count must match the engine";
}

// ---------------------------------------------------------------------------
// Partitioned PageRank: numeric equivalence property
// ---------------------------------------------------------------------------

TEST(PartPageRankTest, MatchesSingleDeviceWithinReassociationError) {
  CsrGraph g = TestGraph(9);

  core::PageRankOptions ref_options;
  ref_options.max_iterations = 20;
  ref_options.tolerance = 0;  // fixed iteration count on both sides
  vgpu::Device reference_device(vgpu::A100Config());
  auto reference = core::RunPageRank(&reference_device, g, ref_options);
  ASSERT_TRUE(reference.ok());

  for (uint32_t num_devices : {2u, 3u, 8u}) {
    PartitionedEngine::Options options;
    options.num_devices = num_devices;
    options.strategy = PartitionStrategy::kDegreeBalanced;
    auto engine = PartitionedEngine::Create(vgpu::A100Config(), options);
    ASSERT_TRUE(engine.ok());
    auto plan = MakePartitionPlan(g, num_devices, options.strategy);
    ASSERT_TRUE(plan.ok());

    PartPageRankOptions pr_options;
    pr_options.max_iterations = 20;
    pr_options.tolerance = 0;
    auto pr = RunPartitionedPageRank(engine->get(), g, *plan, pr_options);
    ASSERT_TRUE(pr.ok()) << pr.status().ToString();
    ASSERT_EQ(pr->iterations, reference->iterations);
    ASSERT_EQ(pr->ranks.size(), reference->ranks.size());

    double max_diff = 0;
    double sum = 0;
    for (size_t v = 0; v < pr->ranks.size(); ++v) {
      max_diff = std::max(max_diff,
                          std::abs(pr->ranks[v] - reference->ranks[v]));
      sum += pr->ranks[v];
    }
    EXPECT_LT(max_diff, 1e-10) << num_devices << " devices";
    EXPECT_NEAR(sum, 1.0, 1e-6) << "rank mass must be conserved";
    EXPECT_GT(pr->exchange_bytes, 0u);
  }
}

TEST(PartPageRankTest, EmptyShardsAreHarmless) {
  CsrGraph g = StarGraph(5);

  core::PageRankOptions ref_options;
  ref_options.max_iterations = 10;
  ref_options.tolerance = 0;
  vgpu::Device reference_device(vgpu::A100Config());
  auto reference = core::RunPageRank(&reference_device, g, ref_options);
  ASSERT_TRUE(reference.ok());

  PartitionedEngine::Options options;
  options.num_devices = 8;
  auto engine = PartitionedEngine::Create(vgpu::A100Config(), options);
  ASSERT_TRUE(engine.ok());
  auto plan = MakePartitionPlan(g, 8, PartitionStrategy::kUniform);
  ASSERT_TRUE(plan.ok());

  PartPageRankOptions pr_options;
  pr_options.max_iterations = 10;
  pr_options.tolerance = 0;
  auto pr = RunPartitionedPageRank(engine->get(), g, *plan, pr_options);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  for (size_t v = 0; v < pr->ranks.size(); ++v) {
    EXPECT_NEAR(pr->ranks[v], reference->ranks[v], 1e-10);
  }
}

TEST(PartPageRankTest, ValidatesAlpha) {
  CsrGraph g = StarGraph(10);
  PartitionedEngine::Options options;
  auto engine = PartitionedEngine::Create(vgpu::A100Config(), options);
  ASSERT_TRUE(engine.ok());
  auto plan = MakePartitionPlan(g, 2, PartitionStrategy::kUniform);
  ASSERT_TRUE(plan.ok());
  PartPageRankOptions pr_options;
  pr_options.alpha = 1.5;
  EXPECT_FALSE(
      RunPartitionedPageRank(engine->get(), g, *plan, pr_options).ok());
}

}  // namespace
}  // namespace adgraph::part
