#include <gtest/gtest.h>

#include <algorithm>

#include "core/bfs.h"
#include "core/host_ref.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generate.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"

namespace adgraph::core {
namespace {

using graph::CsrGraph;
using graph::GraphBuilder;
using vgpu::A100Config;
using vgpu::Device;
using vgpu::Z100LConfig;

CsrGraph Symmetrize(const CsrGraph& g) {
  graph::CsrBuildOptions options;
  options.make_undirected = true;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return CsrGraph::FromCoo(g.ToCoo(), options).value();
}

void ExpectBfsMatchesReference(Device* dev, const CsrGraph& g,
                               graph::vid_t source,
                               bool assume_symmetric = false) {
  BfsOptions options;
  options.source = source;
  options.assume_symmetric = assume_symmetric;
  auto result = RunBfs(dev, g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected = host_ref::BfsLevels(g, source);
  ASSERT_EQ(result->levels.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(result->levels[v], expected[v]) << "vertex " << v;
  }
}

TEST(BfsTest, ChainGraphLevels) {
  GraphBuilder b;
  for (graph::vid_t v = 0; v + 1 < 10; ++v) b.AddEdge(v, v + 1);
  Device dev(A100Config());
  auto g = b.Build().value();
  BfsOptions options;
  options.source = 0;
  auto result = RunBfs(&dev, g, options).value();
  for (uint32_t v = 0; v < 10; ++v) EXPECT_EQ(result.levels[v], v);
  EXPECT_EQ(result.depth, 9u);
  EXPECT_EQ(result.vertices_visited, 10u);
}

TEST(BfsTest, DisconnectedVerticesUnreached) {
  GraphBuilder b(6);
  b.AddEdge(0, 1).AddEdge(1, 2);
  Device dev(A100Config());
  auto result = RunBfs(&dev, b.Build().value(), {.source = 0}).value();
  EXPECT_EQ(result.levels[3], kUnreachedLevel);
  EXPECT_EQ(result.levels[5], kUnreachedLevel);
  EXPECT_EQ(result.vertices_visited, 3u);
}

TEST(BfsTest, StarGraphOneLevel) {
  GraphBuilder b;
  for (graph::vid_t v = 1; v <= 100; ++v) b.AddEdge(0, v);
  Device dev(A100Config());
  auto result = RunBfs(&dev, b.Build().value(), {.source = 0}).value();
  EXPECT_EQ(result.depth, 1u);
  EXPECT_EQ(result.vertices_visited, 101u);
}

TEST(BfsTest, SourceValidation) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Device dev(A100Config());
  auto result = RunBfs(&dev, b.Build().value(), {.source = 99});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(BfsTest, MatchesReferenceOnRmatDirected) {
  Device dev(A100Config());
  auto coo = graph::GenerateRmat({.scale = 10, .edge_factor = 8, .seed = 21})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  ExpectBfsMatchesReference(&dev, g, 0);
  ExpectBfsMatchesReference(&dev, g, 123);
}

TEST(BfsTest, MatchesReferenceOnSymmetrizedRmat) {
  Device dev(A100Config());
  auto coo = graph::GenerateRmat({.scale = 11, .edge_factor = 6, .seed = 22})
                 .value();
  auto g = Symmetrize(CsrGraph::FromCoo(coo).value());
  ExpectBfsMatchesReference(&dev, g, 7, /*assume_symmetric=*/true);
}

TEST(BfsTest, MatchesReferenceOnAmdLikeDevice) {
  Device dev(Z100LConfig());
  auto coo = graph::GenerateRmat({.scale = 10, .edge_factor = 8, .seed = 23})
                 .value();
  auto g = Symmetrize(CsrGraph::FromCoo(coo).value());
  ExpectBfsMatchesReference(&dev, g, 0, /*assume_symmetric=*/true);
}

TEST(BfsTest, TopDownOnlyAgreesWithDirectionOptimizing) {
  Device dev(A100Config());
  auto coo = graph::GenerateRmat({.scale = 10, .edge_factor = 10, .seed = 24})
                 .value();
  auto g = Symmetrize(CsrGraph::FromCoo(coo).value());
  // Start from the max-degree vertex so the frontier grows dense quickly.
  graph::vid_t source = 0;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(source)) source = v;
  }
  BfsOptions td_only;
  td_only.source = source;
  td_only.direction_optimizing = false;
  auto a = RunBfs(&dev, g, td_only).value();
  BfsOptions dir_opt;
  dir_opt.source = source;
  dir_opt.assume_symmetric = true;
  auto b = RunBfs(&dev, g, dir_opt).value();
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.bottom_up_iterations, 0u);
  EXPECT_GT(b.bottom_up_iterations, 0u)
      << "a dense symmetrized R-MAT should trigger bottom-up sweeps";
}

TEST(BfsTest, BottomUpUsedOnDenseFrontiers) {
  // Star + clique: the frontier after level 0 is nearly the whole graph.
  GraphBuilder b;
  for (graph::vid_t v = 1; v < 600; ++v) {
    b.AddEdge(0, v);
    b.AddEdge(v, 0);
  }
  Device dev(A100Config());
  auto g = b.Build().value();
  BfsOptions options;
  options.source = 0;
  options.alpha = 16;
  options.assume_symmetric = true;
  auto result = RunBfs(&dev, g, options).value();
  EXPECT_GT(result.bottom_up_iterations, 0u);
  EXPECT_EQ(result.vertices_visited, 600u);
}


TEST(BfsTest, ParentsFormValidShortestPathTree) {
  Device dev(A100Config());
  auto coo = graph::GenerateRmat({.scale = 10, .edge_factor = 8, .seed = 25})
                 .value();
  auto g = Symmetrize(CsrGraph::FromCoo(coo).value());
  BfsOptions options;
  options.source = 0;
  options.assume_symmetric = true;
  options.compute_parents = true;
  auto result = RunBfs(&dev, g, options).value();
  ASSERT_EQ(result.parents.size(), g.num_vertices());
  EXPECT_EQ(result.parents[0], graph::kInvalidVertex) << "source";
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v == 0) continue;
    if (result.levels[v] == kUnreachedLevel) {
      EXPECT_EQ(result.parents[v], graph::kInvalidVertex);
      continue;
    }
    graph::vid_t p = result.parents[v];
    ASSERT_LT(p, g.num_vertices()) << "vertex " << v;
    // Parent is one level closer and actually adjacent.
    EXPECT_EQ(result.levels[p] + 1, result.levels[v]) << "vertex " << v;
    auto adj = g.neighbors(p);
    EXPECT_TRUE(std::binary_search(adj.begin(), adj.end(), v))
        << "parent " << p << " not adjacent to " << v;
  }
}

TEST(BfsTest, ParentsOffByDefault) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Device dev(A100Config());
  auto result = RunBfs(&dev, b.Build().value(), {.source = 0}).value();
  EXPECT_TRUE(result.parents.empty());
}

TEST(BfsTest, DeviceTimeNonzeroAndOrdered) {
  Device dev(A100Config());
  auto small = graph::GenerateRmat({.scale = 8, .edge_factor = 4, .seed = 1})
                   .value();
  auto large = graph::GenerateRmat({.scale = 12, .edge_factor = 8, .seed = 1})
                   .value();
  auto gs = Symmetrize(CsrGraph::FromCoo(small).value());
  auto gl = Symmetrize(CsrGraph::FromCoo(large).value());
  auto rs = RunBfs(&dev, gs, {.source = 0}).value();
  auto rl = RunBfs(&dev, gl, {.source = 0}).value();
  EXPECT_GT(rs.time_ms, 0.0);
  EXPECT_GT(rl.time_ms, rs.time_ms) << "16x more edges must cost more time";
}

TEST(BfsTest, WorksOnProxyDataset) {
  Device dev(Z100LConfig());
  auto spec = graph::FindDataset("web-Stanford").value();
  auto g = Symmetrize(graph::Materialize(spec, 8).value());
  ExpectBfsMatchesReference(&dev, g, 1, /*assume_symmetric=*/true);
}

}  // namespace
}  // namespace adgraph::core
