#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"

namespace adgraph {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::OutOfMemory("device full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s.message(), "device full");
  EXPECT_EQ(s.ToString(), "Out of memory: device full");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::InvalidArgument("bad");
  Status t = s;
  EXPECT_TRUE(t.IsInvalidArgument());
  EXPECT_EQ(t.message(), "bad");
  // Source unchanged.
  EXPECT_EQ(s.message(), "bad");
}

TEST(StatusTest, MoveLeavesOkBehindAndAssignWorks) {
  Status s = Status::NotFound("x");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsNotFound());
  Status u;
  u = t;
  EXPECT_TRUE(u.IsNotFound());
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfMemory("").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Deadlock("").code(), StatusCode::kDeadlock);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<std::string> bad = Status::NotFound("x");
  EXPECT_EQ(std::move(bad).ValueOr("fallback"), "fallback");
  Result<std::string> good = std::string("real");
  EXPECT_EQ(std::move(good).ValueOr("fallback"), "real");
}

Status FailsThrough() {
  ADGRAPH_RETURN_NOT_OK(Status::IOError("inner"));
  return Status::OK();
}

Result<int> AssignsOrReturns(bool fail) {
  Result<int> source = fail ? Result<int>(Status::NotFound("gone"))
                            : Result<int>(7);
  ADGRAPH_ASSIGN_OR_RETURN(int v, source);
  return v + 1;
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kIOError);
}

TEST(StatusMacroTest, AssignOrReturnBothPaths) {
  EXPECT_EQ(AssignsOrReturns(false).value(), 8);
  EXPECT_TRUE(AssignsOrReturns(true).status().IsNotFound());
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversSmallRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCasesAndRate) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(15);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// ---------------------------------------------------------------- Table

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "22"});
  std::ostringstream out;
  t.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Borders present.
  EXPECT_EQ(s.front(), '+');
}

TEST(TableTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  std::ostringstream out;
  t.Print(out);  // must not crash
}

TEST(TableTest, CsvEscapesSpecials) {
  TablePrinter t({"a", "b"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"quote\"inside", "line\nbreak"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrips) {
  TablePrinter t({"h1"});
  t.AddRow({"v1"});
  std::string path = testing::TempDir() + "/adgraph_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1");
  std::getline(in, line);
  EXPECT_EQ(line, "v1");
  std::remove(path.c_str());
}

TEST(FormatTest, FormatFixedTrimsZeros) {
  EXPECT_EQ(FormatFixed(12.340, 2), "12.34");
  EXPECT_EQ(FormatFixed(0.5, 3), "0.5");
  EXPECT_EQ(FormatFixed(7.0, 2), "7");
}

TEST(FormatTest, FormatRateUsesSuffixes) {
  EXPECT_EQ(FormatRate(18.57e6), "18.57M/ms");
  EXPECT_EQ(FormatRate(5.18e3), "5.18K/ms");
  EXPECT_EQ(FormatRate(773.22), "773.22/ms");
}

TEST(FormatTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1963263821ull), "1,963,263,821");
}

// ---------------------------------------------------------------- Flags

Result<Flags> ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyEqualsValue) {
  auto flags = ParseArgs({"--scale=4", "--name=bfs"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("scale", 0), 4);
  EXPECT_EQ(flags->GetString("name", ""), "bfs");
}

TEST(FlagsTest, ParsesSeparatedValueAndBareFlag) {
  auto flags = ParseArgs({"--out", "dir", "--verbose"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("out", ""), "dir");
  EXPECT_TRUE(flags->GetBool("verbose", false));
}

TEST(FlagsTest, PositionalsCollected) {
  auto flags = ParseArgs({"pos1", "--k=1", "pos2"});
  ASSERT_TRUE(flags.ok());
  ASSERT_EQ(flags->positional().size(), 2u);
  EXPECT_EQ(flags->positional()[0], "pos1");
  EXPECT_EQ(flags->positional()[1], "pos2");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  auto flags = ParseArgs({});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("missing", -5), -5);
  EXPECT_EQ(flags->GetDouble("missing", 2.5), 2.5);
  EXPECT_FALSE(flags->GetBool("missing", false));
  EXPECT_FALSE(flags->Has("missing"));
}

TEST(FlagsTest, MalformedFlagRejected) {
  EXPECT_FALSE(ParseArgs({"--=x"}).ok());
  EXPECT_FALSE(ParseArgs({"--"}).ok());
}

TEST(FlagsTest, BoolSpellings) {
  auto flags = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=off"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("a", false));
  EXPECT_TRUE(flags->GetBool("b", false));
  EXPECT_TRUE(flags->GetBool("c", false));
  EXPECT_FALSE(flags->GetBool("d", true));
}

// Regression: GetInt/GetDouble used strtoll/strtod with a null end pointer,
// so any unparsable value silently became 0 (and out-of-range input the
// clamped extreme) instead of the caller's default.

TEST(FlagsTest, GetIntRejectsEmptyValue) {
  auto flags = ParseArgs({"--n="});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 7), 7);
}

TEST(FlagsTest, GetIntRejectsNonNumeric) {
  auto flags = ParseArgs({"--n=abc"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 7), 7);
}

TEST(FlagsTest, GetIntRejectsPartialParse) {
  auto flags = ParseArgs({"--n=12x"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 7), 7);
}

TEST(FlagsTest, GetIntRejectsOutOfRange) {
  auto flags = ParseArgs({"--n=99999999999999999999999999"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 7), 7);
}

TEST(FlagsTest, GetIntAcceptsValidIncludingNegative) {
  auto flags = ParseArgs({"--n=-42"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 7), -42);
}

TEST(FlagsTest, GetDoubleRejectsEmptyValue) {
  auto flags = ParseArgs({"--x="});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 2.5), 2.5);
}

TEST(FlagsTest, GetDoubleRejectsNonNumeric) {
  auto flags = ParseArgs({"--x=fast"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 2.5), 2.5);
}

TEST(FlagsTest, GetDoubleRejectsPartialParse) {
  auto flags = ParseArgs({"--x=3.5gb"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 2.5), 2.5);
}

TEST(FlagsTest, GetDoubleRejectsOutOfRange) {
  auto flags = ParseArgs({"--x=1e999"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 2.5), 2.5);
}

TEST(FlagsTest, GetDoubleAcceptsScientific) {
  auto flags = ParseArgs({"--x=1.25e2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 0), 125.0);
}

}  // namespace
}  // namespace adgraph
