// Parameterized property sweeps: algorithm results must match the host
// reference on every (architecture x generator x seed) combination, and
// substrate invariants must hold across randomized inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "core/bfs.h"
#include "core/host_ref.h"
#include "core/spmv.h"
#include "core/subgraph.h"
#include "core/triangle_count.h"
#include "graph/csr.h"
#include "graph/generate.h"
#include "graph/stats.h"
#include "util/random.h"
#include "vgpu/arch.h"
#include "vgpu/device.h"
#include "vgpu/mem/coalescer.h"

namespace adgraph {
namespace {

using core::kUnreachedLevel;
using graph::CsrGraph;

const vgpu::ArchConfig& ArchByName(const std::string& name) {
  for (const auto* gpu : vgpu::PaperGpus()) {
    if (gpu->name == name) return *gpu;
  }
  ADGRAPH_CHECK(false);
  return vgpu::A100Config();
}

CsrGraph MakeGraph(const std::string& flavor, uint64_t seed) {
  graph::CooGraph coo;
  if (flavor == "rmat") {
    coo = graph::GenerateRmat({.scale = 9, .edge_factor = 8, .seed = seed})
              .value();
  } else if (flavor == "er") {
    coo = graph::GenerateErdosRenyi(500, 4000, seed).value();
  } else {
    coo = graph::GenerateWattsStrogatz(400, 6, 0.2, seed).value();
  }
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  return CsrGraph::FromCoo(coo, options).value();
}

// ------------------------------------------------ algorithm consistency

using AlgoParam = std::tuple<std::string, std::string, uint64_t>;

class AlgoConsistencyTest : public ::testing::TestWithParam<AlgoParam> {};

TEST_P(AlgoConsistencyTest, BfsMatchesHostReference) {
  auto [arch_name, flavor, seed] = GetParam();
  CsrGraph g = MakeGraph(flavor, seed);
  vgpu::Device dev(ArchByName(arch_name));
  core::BfsOptions options;
  options.source = static_cast<graph::vid_t>(seed % g.num_vertices());
  auto result = core::RunBfs(&dev, g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->levels, core::host_ref::BfsLevels(g, options.source));
}

TEST_P(AlgoConsistencyTest, TriangleCountBothModesMatchReference) {
  auto [arch_name, flavor, seed] = GetParam();
  CsrGraph g = MakeGraph(flavor, seed);
  vgpu::Device dev(ArchByName(arch_name));
  uint64_t expected = core::host_ref::TriangleCount(g);
  core::TcOptions oriented;
  auto a = core::RunTriangleCount(&dev, g, oriented);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->triangles, expected);
  core::TcOptions unoriented;
  unoriented.orient = false;
  auto b = core::RunTriangleCount(&dev, g, unoriented);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->triangles, expected);
}

TEST_P(AlgoConsistencyTest, EsbvEdgeAndVertexCountsMatchReference) {
  auto [arch_name, flavor, seed] = GetParam();
  CsrGraph g = MakeGraph(flavor, seed).WithUniformWeights(1.0);
  vgpu::Device dev(ArchByName(arch_name));
  core::EsbvOptions options;
  options.vertices =
      core::SelectPseudoCluster(g.num_vertices(), 0.5, seed);
  auto result = core::ExtractSubgraphByVertex(&dev, g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expected = core::host_ref::ExtractSubgraph(g, options.vertices);
  EXPECT_EQ(result->subgraph_vertices, expected.num_vertices());
  EXPECT_EQ(result->subgraph_edges, expected.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    ArchGeneratorSeedSweep, AlgoConsistencyTest,
    ::testing::Combine(::testing::Values("Z100", "V100", "Z100L", "A100"),
                       ::testing::Values("rmat", "er", "ws"),
                       ::testing::Values(1u, 7u)),
    [](const ::testing::TestParamInfo<AlgoParam>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

// ------------------------------------------------- determinism property

class DeterminismTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, RepeatedRunsAreBitIdentical) {
  const auto& arch = ArchByName(GetParam());
  CsrGraph g = MakeGraph("rmat", 3);
  auto run = [&]() {
    vgpu::Device dev(arch);
    auto r = core::RunBfs(&dev, g, {.source = 0}).value();
    const auto& k = dev.kernel_log().back();
    return std::make_tuple(r.levels, r.time_ms,
                           k.counters.warp_inst_issued, k.counters.l1_hits);
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(AllGpus, DeterminismTest,
                         ::testing::Values("Z100", "V100", "Z100L", "A100"));

// ----------------------------------------------- graph-structure sweeps

class RmatSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RmatSweepTest, CsrInvariantsHold) {
  uint64_t seed = GetParam();
  auto coo = graph::GenerateRmat({.scale = 10, .edge_factor = 6, .seed = seed})
                 .value();
  graph::CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  auto g = CsrGraph::FromCoo(coo, options).value();
  // Row offsets monotone and consistent with degrees.
  const auto& row = g.row_offsets();
  ASSERT_EQ(row.size(), g.num_vertices() + 1u);
  EXPECT_EQ(row.front(), 0u);
  EXPECT_EQ(row.back(), g.num_edges());
  uint64_t degree_sum = 0;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LE(row[v], row[v + 1]);
    degree_sum += g.degree(v);
    auto adj = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
    EXPECT_TRUE(std::adjacent_find(adj.begin(), adj.end()) == adj.end())
        << "duplicates survived";
    for (graph::vid_t w : adj) {
      EXPECT_NE(w, v) << "self loop survived";
      EXPECT_LT(w, g.num_vertices());
    }
  }
  EXPECT_EQ(degree_sum, g.num_edges());
}

TEST_P(RmatSweepTest, TransposePreservesEdgeMultiset) {
  uint64_t seed = GetParam();
  auto coo = graph::GenerateRmat({.scale = 9, .edge_factor = 5, .seed = seed})
                 .value();
  auto g = CsrGraph::FromCoo(coo).value();
  auto t = g.Transpose();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  // Every edge (u,v) of g appears as (v,u) in t.
  uint64_t matched = 0;
  for (graph::vid_t u = 0; u < g.num_vertices(); ++u) {
    for (graph::vid_t v : g.neighbors(u)) {
      auto adj = t.neighbors(v);
      matched += std::count(adj.begin(), adj.end(), u) > 0;
    }
  }
  EXPECT_EQ(matched, g.num_edges());
}

TEST_P(RmatSweepTest, SymmetrizeIsInvolutionFixedPoint) {
  uint64_t seed = GetParam();
  auto g = MakeGraph("rmat", seed);
  auto sym1 = core::SymmetrizeForTc(g).value();
  auto sym2 = core::SymmetrizeForTc(sym1).value();
  EXPECT_EQ(sym1.row_offsets(), sym2.row_offsets());
  EXPECT_EQ(sym1.col_indices(), sym2.col_indices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmatSweepTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ------------------------------------------------- coalescer properties

class CoalescerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalescerPropertyTest, TransferredCoversRequestedAndIsMinimal) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    vgpu::Lanes<uint64_t> addrs;
    uint32_t width = rng.Bernoulli(0.5) ? 32 : 64;
    for (uint32_t i = 0; i < width; ++i) {
      addrs[i] = rng.Uniform(1 << 16) * 4;
    }
    uint32_t access = rng.Bernoulli(0.5) ? 4 : 8;
    auto result = vgpu::Coalesce(addrs, vgpu::FullMask(width), access, 32);
    // Transferred bytes cover the requested bytes.
    EXPECT_GE(result.bytes_transferred, (result.bytes_requested + 31) / 32 * 32 / 32);
    EXPECT_EQ(result.bytes_requested, uint64_t{width} * access);
    // Segments sorted, unique, aligned.
    for (uint32_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i] % 32, 0u);
      if (i > 0) EXPECT_LT(result[i - 1], result[i]);
    }
    // Every lane's access is covered by some segment.
    for (uint32_t lane = 0; lane < width; ++lane) {
      for (uint64_t b = addrs[lane] / 32; b <= (addrs[lane] + access - 1) / 32;
           ++b) {
        bool covered = false;
        for (uint32_t s = 0; s < result.size(); ++s) {
          covered |= result[s] == b * 32;
        }
        EXPECT_TRUE(covered);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescerPropertyTest,
                         ::testing::Values(101u, 202u, 303u));

// --------------------------------------------------- SpMV linearity

class SpmvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpmvPropertyTest, PlusTimesIsLinear) {
  uint64_t seed = GetParam();
  auto coo = graph::GenerateRmat({.scale = 8, .edge_factor = 6, .seed = seed})
                 .value();
  graph::AttachRandomWeights(&coo, 0.0, 1.0, seed + 1);
  auto g = CsrGraph::FromCoo(coo).value();
  Rng rng(seed + 2);
  std::vector<double> x(g.num_vertices()), y(g.num_vertices());
  for (auto& v : x) v = rng.NextDouble();
  for (auto& v : y) v = rng.NextDouble();
  vgpu::Device dev(vgpu::A100Config());
  auto ax = core::RunSpmv(&dev, g, x, {}).value();
  auto ay = core::RunSpmv(&dev, g, y, {}).value();
  std::vector<double> xy(g.num_vertices());
  for (size_t i = 0; i < xy.size(); ++i) xy[i] = 2 * x[i] + 3 * y[i];
  auto axy = core::RunSpmv(&dev, g, xy, {}).value();
  for (size_t i = 0; i < xy.size(); ++i) {
    EXPECT_NEAR(axy[i], 2 * ax[i] + 3 * ay[i], 1e-8) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmvPropertyTest,
                         ::testing::Values(5u, 6u, 8u));

}  // namespace
}  // namespace adgraph
