// Smoke tests of the shared bench harness (bench/bench_common): the MTEPS
// cell computation must never emit inf/nan into CSV rows — a zero-edge
// proxy or a zero measured time produces a 0.0 rate with the `skipped`
// marker, and the table formatter prints "skipped" instead of a fake rate.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "graph/datasets.h"
#include "vgpu/arch.h"

namespace adgraph::bench {
namespace {

TEST(CellFormatTest, SkippedAndOomMarkersWinOverNumbers) {
  CellResult cell;
  cell.time_ms = 1.5;
  cell.mteps = 123.456;
  EXPECT_EQ(FormatMtepsCell(cell), "123.46");

  cell.skipped = true;
  EXPECT_EQ(FormatMtepsCell(cell), "skipped");

  cell.skipped = false;
  cell.oom = true;
  EXPECT_EQ(FormatMtepsCell(cell), "OOM");
  EXPECT_EQ(FormatTimeCell(cell), "OOM");
}

TEST(CellRunnerTest, ZeroEdgeProxyIsSkippedNotNan) {
  // A spec whose proxy materializes with vertices but (after dedup) zero
  // edges: paper_edges / scale_divisor rounds the edge factor to nothing.
  graph::DatasetSpec spec;
  spec.name = "zero-edge-proxy";
  spec.category = "test";
  spec.paper_vertices = 512;
  spec.paper_edges = 4;
  spec.paper_max_degree = 1;
  spec.scale_divisor = 1000;
  spec.recipe.seed = 7;

  BenchConfig config;
  config.out_dir = ::testing::TempDir() + "bench_common_test";
  EnsureOutDir(config);
  CellRunner runner(config);

  auto cell = runner.Run(vgpu::A100Config(), spec, Algo::kBfs);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  EXPECT_TRUE(cell->skipped);
  EXPECT_DOUBLE_EQ(cell->mteps, 0.0);
  EXPECT_TRUE(std::isfinite(cell->mteps));
  EXPECT_TRUE(std::isfinite(cell->time_ms));
  EXPECT_EQ(FormatMtepsCell(*cell), "skipped");
}

TEST(CellRunnerTest, NormalProxyIsNotSkipped) {
  graph::DatasetSpec spec = graph::FindDataset("web-Stanford").value();
  BenchConfig config;
  config.extra_divisor = 16;  // keep the unit test fast
  config.out_dir = ::testing::TempDir() + "bench_common_test";
  EnsureOutDir(config);
  CellRunner runner(config);

  auto cell = runner.Run(vgpu::A100Config(), spec, Algo::kBfs);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  EXPECT_FALSE(cell->skipped);
  EXPECT_GT(cell->mteps, 0.0);
  EXPECT_TRUE(std::isfinite(cell->mteps));
}

}  // namespace
}  // namespace adgraph::bench
