#include <gtest/gtest.h>

#include <vector>

#include "vgpu/arch.h"
#include "vgpu/ctx.h"
#include "vgpu/device.h"
#include "vgpu/kernel.h"

namespace adgraph::vgpu {
namespace {

// A compact test GPU so counter arithmetic stays easy to reason about.
ArchConfig TestArch(Paradigm paradigm, uint32_t warp_width) {
  ArchConfig c;
  c.name = "TestGPU";
  c.vendor = paradigm == Paradigm::kSimt ? "NVIDIA" : "AMD-like";
  c.paradigm = paradigm;
  c.shared_path = paradigm == Paradigm::kSimt
                      ? SharedMemPath::kUnifiedWithL1
                      : SharedMemPath::kIndependentLds;
  c.warp_width = warp_width;
  c.num_sms = 4;
  c.max_warps_per_sm = 16;
  c.clock_ghz = 1.0;
  c.dram_capacity_bytes = 64 << 20;
  c.l1_size_bytes = 16 << 10;
  c.l2_size_bytes = 256 << 10;
  c.smem_bytes_per_sm = 48 << 10;
  return c;
}

class ExecTest : public ::testing::Test {
 protected:
  Device& dev() {
    if (!device_) device_ = std::make_unique<Device>(TestArch(Paradigm::kSimt, 32));
    return *device_;
  }
  std::unique_ptr<Device> device_;
};

template <typename T>
DevPtr<T> Upload(Device* d, const std::vector<T>& host) {
  auto ptr = d->Alloc<T>(host.size()).value();
  EXPECT_TRUE(d->CopyToDevice(ptr, host.data(), host.size()).ok());
  return ptr;
}

template <typename T>
std::vector<T> Download(Device* d, DevPtr<T> ptr, uint64_t n) {
  std::vector<T> out(n);
  EXPECT_TRUE(d->CopyToHost(out.data(), ptr, n).ok());
  return out;
}

// ------------------------------------------------------------ arithmetic

TEST_F(ExecTest, ArithmeticOpsComputeLaneWise) {
  std::vector<int32_t> a{1, 2, 3, 4}, b{10, 20, 30, 40};
  auto da = Upload(&dev(), a);
  auto db = Upload(&dev(), b);
  auto dout = dev().Alloc<int32_t>(4 * 6).value();
  auto stats = dev().Launch("arith", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto x = c.Load(da, tid);
    auto y = c.Load(db, tid);
    c.Store(dout, tid, c.Add(x, y));
    c.Store(dout, c.Add(tid, 4u), c.Sub(y, x));
    c.Store(dout, c.Add(tid, 8u), c.Mul(x, y));
    c.Store(dout, c.Add(tid, 12u), c.Div(y, x));
    c.Store(dout, c.Add(tid, 16u), c.Min(x, c.Splat<int32_t>(2)));
    c.Store(dout, c.Add(tid, 20u), c.Max(x, c.Splat<int32_t>(2)));
    co_return;
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto out = Download(&dev(), dout, 24);
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[3], 44);
  EXPECT_EQ(out[4], 9);
  EXPECT_EQ(out[8], 10);
  EXPECT_EQ(out[11], 160);
  EXPECT_EQ(out[12], 10);
  EXPECT_EQ(out[15], 10);
  EXPECT_EQ(out[16], 1);
  EXPECT_EQ(out[17], 2);
  EXPECT_EQ(out[18], 2);
  EXPECT_EQ(out[20], 2);
  EXPECT_EQ(out[23], 4);
}

TEST_F(ExecTest, IntegerOpsAndCast) {
  std::vector<uint32_t> a{0b1100, 7, 1, 256};
  auto da = Upload(&dev(), a);
  auto dout = dev().Alloc<uint32_t>(16).value();
  auto ddbl = dev().Alloc<double>(4).value();
  auto stats = dev().Launch("intops", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto x = c.Load(da, tid);
    c.Store(dout, tid, c.BitAnd(x, 0b1010u));
    c.Store(dout, c.Add(tid, 4u), c.BitOr(x, 1u));
    c.Store(dout, c.Add(tid, 8u), c.Shl(x, 1u));
    c.Store(dout, c.Add(tid, 12u), c.Rem(x, 5u));
    c.Store(ddbl, tid, c.Cast<double>(x));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 16);
  EXPECT_EQ(out[0], 0b1000u);
  EXPECT_EQ(out[4], 0b1101u);
  EXPECT_EQ(out[8], 0b11000u);
  EXPECT_EQ(out[12], 2u);  // 12 % 5
  EXPECT_EQ(out[15], 1u);  // 256 % 5
  auto dbl = Download(&dev(), ddbl, 4);
  EXPECT_EQ(dbl[3], 256.0);
}

TEST_F(ExecTest, DivisionByZeroYieldsZeroNotCrash) {
  std::vector<int32_t> a{5};
  auto da = Upload(&dev(), a);
  auto dout = dev().Alloc<int32_t>(1).value();
  auto stats = dev().Launch("div0", {1, 1}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto x = c.Load(da, tid);
    c.Store(dout, tid, c.Div(x, c.Splat<int32_t>(0)));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Download(&dev(), dout, 1)[0], 0);
}

// --------------------------------------------------------- control flow

TEST_F(ExecTest, IfMasksLanes) {
  auto dout = dev().Alloc<uint32_t>(8).value();
  ASSERT_TRUE(dev().Memset(dout, 0, 8).ok());
  auto stats = dev().Launch("if", {1, 8}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.If(c.Lt(tid, 3u), [&](Ctx& c) {
      c.Store(dout, tid, c.Splat<uint32_t>(7));
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 8);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], i < 3 ? 7u : 0u);
  EXPECT_EQ(stats->counters.divergent_branches, 1u);
}

TEST_F(ExecTest, IfElseBothSidesRun) {
  auto dout = dev().Alloc<uint32_t>(8).value();
  auto stats = dev().Launch("ifelse", {1, 8}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto odd = c.Eq(c.Rem(tid, 2u), 1u);
    c.IfElse(
        odd, [&](Ctx& c) { c.Store(dout, tid, c.Splat<uint32_t>(1)); },
        [&](Ctx& c) { c.Store(dout, tid, c.Splat<uint32_t>(2)); });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 8);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], i % 2 ? 1u : 2u);
}

TEST_F(ExecTest, EmptyBranchSkipped) {
  auto stats = dev().Launch("empty", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.If(c.Gt(tid, 100u), [&](Ctx& c) {
      // Never runs; a store here would fault (null pointer).
      c.Store(DevPtr<uint32_t>{0}, tid, tid);
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->counters.divergent_branches, 0u);
  EXPECT_EQ(stats->counters.global_store_inst, 0u);
}

TEST_F(ExecTest, NestedIfRestoresMasks) {
  auto dout = dev().Alloc<uint32_t>(8).value();
  ASSERT_TRUE(dev().Memset(dout, 0, 8).ok());
  auto stats = dev().Launch("nested", {1, 8}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.If(c.Lt(tid, 6u), [&](Ctx& c) {
      c.If(c.Ge(tid, 2u), [&](Ctx& c) {
        c.Store(dout, tid, c.Splat<uint32_t>(9));
      });
      // After the inner If, all 6 lanes must be active again.
      c.Store(dout, tid, c.Add(c.Load(dout, tid), c.Splat<uint32_t>(1)));
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 8);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(out[2], 10u);
  EXPECT_EQ(out[5], 10u);
  EXPECT_EQ(out[6], 0u);
}

TEST_F(ExecTest, ForRunsPerLaneTripCounts) {
  // Lane i accumulates i iterations.
  std::vector<uint32_t> ends{0, 1, 3, 7};
  auto dend = Upload(&dev(), ends);
  auto dout = dev().Alloc<uint32_t>(4).value();
  ASSERT_TRUE(dev().Memset(dout, 0, 4).ok());
  auto stats = dev().Launch("for", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto end = c.Load(dend, tid);
    auto acc = c.Splat<uint32_t>(0);
    c.For(c.Splat<uint32_t>(0), end, [&](Ctx& c, const Lanes<uint32_t>& i) {
      c.Assign(&acc, c.Add(acc, i));
    });
    c.Store(dout, tid, acc);
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 4);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0u);       // sum 0..0
  EXPECT_EQ(out[2], 0u + 1 + 2);
  EXPECT_EQ(out[3], 21u);      // sum 0..6
  // Imbalance bookkeeping: max trip 7 x 4 lanes possible, 11 useful.
  EXPECT_EQ(stats->counters.loop_lane_iters_possible, 7u * 4u);
  EXPECT_EQ(stats->counters.loop_lane_iters_useful, 0u + 1u + 3u + 7u);
}

TEST_F(ExecTest, WhileTerminatesPerLane) {
  // Collatz-ish: halve until 1; lane values need different trip counts.
  std::vector<uint32_t> vals{1, 2, 8, 64};
  auto dv = Upload(&dev(), vals);
  auto dout = dev().Alloc<uint32_t>(4).value();
  auto stats = dev().Launch("while", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto x = c.Load(dv, tid);
    auto steps = c.Splat<uint32_t>(0);
    c.While([&](Ctx& c) { return c.Gt(x, 1u); },
            [&](Ctx& c) {
              c.Assign(&x, c.Shr(x, 1u));
              c.Assign(&steps, c.Add(steps, 1u));
            });
    c.Store(dout, tid, steps);
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 4);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(out[2], 3u);
  EXPECT_EQ(out[3], 6u);
}

TEST_F(ExecTest, SelectPredicatesWithoutBranch) {
  auto dout = dev().Alloc<uint32_t>(4).value();
  auto stats = dev().Launch("select", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto big = c.Ge(tid, 2u);
    c.Store(dout, tid,
            c.Select(big, c.Splat<uint32_t>(100), c.Splat<uint32_t>(200)));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 4);
  EXPECT_EQ(out[0], 200u);
  EXPECT_EQ(out[3], 100u);
  EXPECT_EQ(stats->counters.branches, 0u);
}

// ------------------------------------------------------------ collectives

TEST_F(ExecTest, ReductionsAndVotes) {
  auto dout = dev().Alloc<uint32_t>(4).value();
  auto stats = dev().Launch("reduce", {1, 8}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    uint32_t sum = c.ReduceAdd(tid);
    uint32_t mx = c.ReduceMax(tid);
    uint32_t mn = c.ReduceMin(c.Add(tid, 3u));
    bool any_big = c.Any(c.Gt(tid, 6u));
    bool all_big = c.All(c.Gt(tid, 6u));
    c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
      c.Store(dout, c.Splat<uint32_t>(0), c.Splat(sum));
      c.Store(dout, c.Splat<uint32_t>(1), c.Splat(mx));
      c.Store(dout, c.Splat<uint32_t>(2), c.Splat(mn));
      c.Store(dout, c.Splat<uint32_t>(3),
              c.Splat<uint32_t>((any_big ? 1u : 0u) | (all_big ? 2u : 0u)));
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 4);
  EXPECT_EQ(out[0], 28u);  // 0+..+7
  EXPECT_EQ(out[1], 7u);
  EXPECT_EQ(out[2], 3u);
  EXPECT_EQ(out[3], 1u);  // any but not all
}

TEST_F(ExecTest, RankAmongAndBroadcast) {
  auto dout = dev().Alloc<uint32_t>(8).value();
  ASSERT_TRUE(dev().Memset(dout, 0xFF, 8).ok());
  auto stats = dev().Launch("rank", {1, 8}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto odd = c.Eq(c.Rem(tid, 2u), 1u);
    auto rank = c.RankAmong(odd);
    c.If(odd, [&](Ctx& c) { c.Store(dout, tid, rank); });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 8);
  EXPECT_EQ(out[1], 0u);
  EXPECT_EQ(out[3], 1u);
  EXPECT_EQ(out[5], 2u);
  EXPECT_EQ(out[7], 3u);
  EXPECT_EQ(out[0], 0xFFFFFFFFu);  // untouched
}

// -------------------------------------------------------------- atomics

TEST_F(ExecTest, AtomicAddSerializesSameAddress) {
  auto counter = dev().Alloc<uint32_t>(1).value();
  ASSERT_TRUE(dev().Memset(counter, 0, 1).ok());
  auto stats = dev().Launch("atomic", {4, 64}, [&](Ctx& c) -> KernelTask {
    c.AtomicAdd(counter, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Download(&dev(), counter, 1)[0], 256u);
}

TEST_F(ExecTest, AtomicAddReturnsUniqueOldValues) {
  auto counter = dev().Alloc<uint32_t>(1).value();
  ASSERT_TRUE(dev().Memset(counter, 0, 1).ok());
  auto slots = dev().Alloc<uint32_t>(32).value();
  auto stats = dev().Launch("ticket", {1, 32}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto ticket = c.AtomicAdd(counter, c.Splat<uint32_t>(0),
                              c.Splat<uint32_t>(1));
    c.Store(slots, ticket, tid);
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), slots, 32);
  std::vector<bool> seen(32, false);
  for (uint32_t v : out) {
    ASSERT_LT(v, 32u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST_F(ExecTest, AtomicCasAndMin) {
  std::vector<uint32_t> init{100, 100};
  auto data = Upload(&dev(), init);
  auto stats = dev().Launch("casmin", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    // All four lanes CAS slot 0 from 100 -> tid; only lane 0 wins.
    c.AtomicCas(data, c.Splat<uint32_t>(0), c.Splat<uint32_t>(100), tid);
    // Min over lane values on slot 1.
    c.AtomicMin(data, c.Splat<uint32_t>(1), c.Add(tid, 5u));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), data, 2);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 5u);
}

TEST_F(ExecTest, AtomicExchAndOr) {
  std::vector<uint32_t> init{0, 0};
  auto data = Upload(&dev(), init);
  auto stats = dev().Launch("exchor", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.AtomicOr(data, c.Splat<uint32_t>(0), c.Shl(c.Splat<uint32_t>(1), tid));
    c.AtomicExch(data, c.Splat<uint32_t>(1), c.Add(tid, 1u));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), data, 2);
  EXPECT_EQ(out[0], 0b1111u);
  EXPECT_EQ(out[1], 4u);  // lane order: last lane wins
}

// ---------------------------------------------------- shared mem + sync

TEST_F(ExecTest, SharedMemoryReverseWithBarrier) {
  auto dout = dev().Alloc<uint32_t>(64).value();
  vgpu::LaunchDims dims{1, 64, 64 * 4};
  auto stats = dev().Launch("reverse", dims, [&](Ctx& c) -> KernelTask {
    SmemPtr<uint32_t> buf{0};
    auto tid = c.BlockThreadId();
    c.SharedStore(buf, tid, tid);
    co_await c.Sync();
    auto rev = c.Sub(c.Splat<uint32_t>(63), tid);
    c.Store(dout, tid, c.SharedLoad(buf, rev));
    co_return;
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto out = Download(&dev(), dout, 64);
  for (uint32_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], 63 - i);
  EXPECT_GT(stats->counters.barriers, 0u);
  EXPECT_EQ(stats->counters.shared_store_inst, 2u);  // 2 warps x 1 store
  EXPECT_EQ(stats->counters.shared_load_inst, 2u);
}

TEST_F(ExecTest, SharedAtomicsAccumulate) {
  auto dout = dev().Alloc<uint32_t>(1).value();
  vgpu::LaunchDims dims{1, 64, 16};
  auto stats = dev().Launch("satomic", dims, [&](Ctx& c) -> KernelTask {
    SmemPtr<uint32_t> acc{0};
    auto zero = c.Splat<uint32_t>(0);
    c.If(c.Eq(c.BlockThreadId(), 0u), [&](Ctx& c) {
      c.SharedStore(acc, zero, c.Splat<uint32_t>(0));
    });
    co_await c.Sync();
    c.SharedAtomicAdd(acc, zero, c.Splat<uint32_t>(2));
    co_await c.Sync();
    c.If(c.Eq(c.BlockThreadId(), 0u), [&](Ctx& c) {
      c.Store(dout, zero, c.SharedLoad(acc, zero));
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Download(&dev(), dout, 1)[0], 128u);
}

TEST_F(ExecTest, SharedAtomicCasInsertsOnce) {
  auto dout = dev().Alloc<uint32_t>(2).value();
  vgpu::LaunchDims dims{1, 32, 16};
  auto stats = dev().Launch("scas", dims, [&](Ctx& c) -> KernelTask {
    SmemPtr<uint32_t> slot{0};
    auto zero = c.Splat<uint32_t>(0);
    c.SharedStore(slot, zero, c.Splat<uint32_t>(0xFFFFFFFFu));
    auto tid = c.BlockThreadId();
    auto old = c.SharedAtomicCas(slot, zero, c.Splat<uint32_t>(0xFFFFFFFFu),
                                 c.Add(tid, 1u));
    // Exactly one lane sees EMPTY.
    auto winner = c.Eq(old, 0xFFFFFFFFu);
    auto wins = c.Select(winner, c.Splat<uint32_t>(1), c.Splat<uint32_t>(0));
    uint32_t total = c.ReduceAdd(wins);
    c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
      c.Store(dout, zero, c.Splat(total));
      c.Store(dout, c.Splat<uint32_t>(1), c.SharedLoad(slot, zero));
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 2);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 1u);  // lane 0 won (lane order)
}

TEST_F(ExecTest, BarrierDeadlockDetected) {
  // Warp 0 exits early; warp 1 waits at a barrier -> deadlock.
  vgpu::LaunchDims dims{1, 64, 16};
  auto stats = dev().Launch("deadlock", dims, [&](Ctx& c) -> KernelTask {
    if (c.warp_in_block() == 0) co_return;
    co_await c.Sync();
    co_return;
  });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlock);
}

// --------------------------------------------------- launch shapes/masks

TEST_F(ExecTest, PartialWarpMasksTailLanes) {
  auto counter = dev().Alloc<uint32_t>(1).value();
  ASSERT_TRUE(dev().Memset(counter, 0, 1).ok());
  // 70 threads = 2 full warps + 6 lanes.
  auto stats = dev().Launch("partial", {1, 70}, [&](Ctx& c) -> KernelTask {
    c.AtomicAdd(counter, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Download(&dev(), counter, 1)[0], 70u);
  EXPECT_EQ(stats->counters.warps_launched, 3u);
}

TEST_F(ExecTest, GridSpansBlocks) {
  auto dout = dev().Alloc<uint32_t>(1024).value();
  auto stats = dev().Launch("grid", {8, 128}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.Store(dout, tid, c.Mul(tid, 2u));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 1024);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1023], 2046u);
  EXPECT_EQ(stats->counters.blocks_launched, 8u);
}

TEST_F(ExecTest, InvalidLaunchesRejected) {
  auto nop = [](Ctx&) -> KernelTask { co_return; };
  EXPECT_FALSE(dev().Launch("bad", {0, 32}, nop).ok());
  EXPECT_FALSE(dev().Launch("bad", {1, 0}, nop).ok());
  EXPECT_FALSE(dev().Launch("bad", {1, 2048}, nop).ok());
  vgpu::LaunchDims huge_smem{1, 32, 10 << 20};
  EXPECT_FALSE(dev().Launch("bad", huge_smem, nop).ok());
}


TEST_F(ExecTest, DoubleArithmeticAndCompare) {
  std::vector<double> a{1.5, -2.25, 1e12, 0.0};
  auto da = Upload(&dev(), a);
  auto dout = dev().Alloc<double>(8).value();
  auto flags = dev().Alloc<uint32_t>(4).value();
  auto stats = dev().Launch("dbl", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto x = c.Load(da, tid);
    c.Store(dout, tid, c.Mul(x, 2.0));
    c.Store(dout, c.Add(tid, 4u), c.Max(x, 0.5));
    auto positive = c.Gt(x, 0.0);
    c.Store(flags, tid,
            c.Select(positive, c.Splat<uint32_t>(1), c.Splat<uint32_t>(0)));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 8);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], -4.5);
  EXPECT_DOUBLE_EQ(out[2], 2e12);
  EXPECT_DOUBLE_EQ(out[4], 1.5);
  EXPECT_DOUBLE_EQ(out[5], 0.5);
  auto f = Download(&dev(), flags, 4);
  EXPECT_EQ(f[0], 1u);
  EXPECT_EQ(f[1], 0u);
  EXPECT_EQ(f[3], 0u);
}

TEST_F(ExecTest, AtomicMaxTakesLargest) {
  std::vector<uint32_t> init{10};
  auto data = Upload(&dev(), init);
  auto stats = dev().Launch("amax", {1, 32}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.AtomicMax(data, c.Splat<uint32_t>(0), c.Mul(tid, 3u));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Download(&dev(), data, 1)[0], 93u);  // max(10, 31*3)
}

TEST_F(ExecTest, CtzAndBitNot) {
  std::vector<uint64_t> a{0b1000, 1, 0, ~uint64_t{0}};
  auto da = Upload(&dev(), a);
  auto dout = dev().Alloc<uint32_t>(8).value();
  auto stats = dev().Launch("ctz", {1, 4}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    auto x = c.Load(da, tid);
    c.Store(dout, tid, c.Ctz(x));
    c.Store(dout, c.Add(tid, 4u), c.Ctz(c.BitNot(x)));
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 8);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 0u);
  EXPECT_EQ(out[2], 64u);   // ctz(0) = width
  EXPECT_EQ(out[3], 0u);
  EXPECT_EQ(out[6], 0u);    // ~0 has bit 0 set
  EXPECT_EQ(out[7], 64u);   // ~~0 = 0
}

TEST_F(ExecTest, WhileInsideDivergentIf) {
  // Only lanes >= 4 run the loop; others' values stay untouched.
  auto dout = dev().Alloc<uint32_t>(8).value();
  ASSERT_TRUE(dev().Memset(dout, 0, 8).ok());
  auto stats = dev().Launch("nestwhile", {1, 8}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.If(c.Ge(tid, 4u), [&](Ctx& c) {
      auto x = tid;
      c.While([&](Ctx& c) { return c.Lt(x, 16u); },
              [&](Ctx& c) { c.Assign(&x, c.Shl(x, 1u)); });
      c.Store(dout, tid, x);
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev(), dout, 8);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[3], 0u);
  EXPECT_EQ(out[4], 16u);  // 4 -> 8 -> 16
  EXPECT_EQ(out[5], 20u);  // 5 -> 10 -> 20
  EXPECT_EQ(out[7], 28u);  // 7 -> 14 -> 28
}

TEST(WideWarpTest, PartialWavefrontMasksAndReduces) {
  Device dev(TestArch(Paradigm::kSimd, 64));
  auto dout = dev.Alloc<uint32_t>(2).value();
  // 80 threads on width 64: warp 0 full, warp 1 has 16 lanes.
  auto stats = dev.Launch("partial64", {1, 80}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    uint32_t sum = c.ReduceAdd(tid);
    c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
      auto idx = c.Splat<uint32_t>(c.warp_in_block());
      c.Store(dout, idx, c.Splat(sum));
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto out = Download(&dev, dout, 2);
  EXPECT_EQ(out[0], 64u * 63u / 2u);                 // 0..63
  EXPECT_EQ(out[1], (64u + 79u) * 16u / 2u);         // 64..79
  EXPECT_EQ(stats->counters.warps_launched, 2u);
}

TEST_F(ExecTest, GridThreadsAndRemInLoop) {
  auto counter = dev().Alloc<uint32_t>(1).value();
  ASSERT_TRUE(dev().Memset(counter, 0, 1).ok());
  auto stats = dev().Launch("gridthreads", {4, 96}, [&](Ctx& c) -> KernelTask {
    // Every thread checks the host-visible grid size.
    if (c.GridThreads() == 4 * 96) {
      c.AtomicAdd(counter, c.Splat<uint32_t>(0), c.Splat<uint32_t>(1));
    }
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Download(&dev(), counter, 1)[0], 4u * 96u);
}

// ------------------------------------------------ paradigm counter deltas

TEST(ParadigmTest, WiderWavefrontDivergesWhereWarp32DoesNot) {
  // Condition tid < 32 splits a 64-wide wavefront but no 32-wide warp.
  for (auto [paradigm, width, expect_divergent] :
       {std::tuple{Paradigm::kSimt, 32u, 0u},
        std::tuple{Paradigm::kSimd, 64u, 1u}}) {
    Device dev(TestArch(paradigm, width));
    auto dout = dev.Alloc<uint32_t>(64).value();
    auto stats = dev.Launch("halfsplit", {1, 64}, [&](Ctx& c) -> KernelTask {
      auto tid = c.GlobalThreadId();
      c.If(c.Lt(tid, 32u), [&](Ctx& c) {
        c.Store(dout, tid, c.Splat<uint32_t>(1));
      });
      co_return;
    });
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->counters.divergent_branches, expect_divergent)
        << "paradigm width " << width;
  }
}

TEST(ParadigmTest, SimdChargesScalarMaskOps) {
  auto run = [](Paradigm paradigm) {
    Device dev(TestArch(paradigm, paradigm == Paradigm::kSimd ? 64 : 32));
    auto dout = dev.Alloc<uint32_t>(64).value();
    auto stats = dev.Launch("diverge", {1, 32}, [&](Ctx& c) -> KernelTask {
      auto tid = c.GlobalThreadId();
      c.If(c.Lt(tid, 16u), [&](Ctx& c) {
        c.Store(dout, tid, c.Splat<uint32_t>(1));
      });
      co_return;
    });
    return stats->counters.scalar_inst;
  };
  EXPECT_EQ(run(Paradigm::kSimt), 0u);
  EXPECT_GT(run(Paradigm::kSimd), 0u);
}

TEST(ParadigmTest, SimtOverlapsDivergentLatencySimdDoesNot) {
  auto saved = [](Paradigm paradigm) {
    Device dev(TestArch(paradigm, 32));
    auto data = dev.Alloc<uint32_t>(1 << 16).value();
    auto stats = dev.Launch("latency", {1, 32}, [&](Ctx& c) -> KernelTask {
      auto tid = c.GlobalThreadId();
      c.If(c.Lt(tid, 16u), [&](Ctx& c) {
        // Scattered loads inside a divergent region.
        auto idx = c.Mul(tid, 999u);
        c.Load(data, c.Rem(idx, c.Splat(1u << 16)));
      });
      co_return;
    });
    return stats->counters.simt_overlap_saved_cycles;
  };
  EXPECT_GT(saved(Paradigm::kSimt), 0.0);
  EXPECT_EQ(saved(Paradigm::kSimd), 0.0);
}

// --------------------------------------------------------- memory counters

TEST_F(ExecTest, CoalescingReflectedInGldEfficiency) {
  auto data = dev().Alloc<uint32_t>(1 << 16).value();
  auto seq = dev().Launch("seq", {1, 32}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.Load(data, tid);
    co_return;
  });
  ASSERT_TRUE(seq.ok());
  EXPECT_NEAR(seq->counters.gld_efficiency(), 1.0, 1e-9);

  auto scat = dev().Launch("scat", {1, 32}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    c.Load(data, c.Mul(tid, 512u));
    co_return;
  });
  ASSERT_TRUE(scat.ok());
  EXPECT_LT(scat->counters.gld_efficiency(), 0.2);
  EXPECT_EQ(scat->counters.global_ld_transactions, 32u);
}

TEST_F(ExecTest, CacheHitsWarmAcrossLaunches) {
  auto data = dev().Alloc<uint32_t>(64).value();
  auto once = [&]() {
    return dev().Launch("touch", {1, 32}, [&](Ctx& c) -> KernelTask {
      c.Load(data, c.GlobalThreadId());
      co_return;
    });
  };
  dev().ClearCaches();
  auto cold = once();
  auto warm = once();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(cold->counters.l1_misses, 0u);
  EXPECT_EQ(warm->counters.l1_misses, 0u);
  EXPECT_GT(warm->counters.l1_hits, 0u);
}

TEST_F(ExecTest, InstructionCountersTrackClasses) {
  auto data = dev().Alloc<uint32_t>(256).value();
  vgpu::LaunchDims dims{1, 32, 256};
  auto stats = dev().Launch("classes", dims, [&](Ctx& c) -> KernelTask {
    SmemPtr<uint32_t> buf{0};
    auto tid = c.GlobalThreadId();
    auto x = c.Load(data, tid);                    // 1 global load
    auto y = c.Add(x, 1u);                         // 1 valu
    c.SharedStore(buf, c.LaneId(), y);             // 1 shared store
    auto z = c.SharedLoad(buf, c.LaneId());        // 1 shared load
    c.Store(data, tid, z);                         // 1 global store
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  const auto& k = stats->counters;
  EXPECT_EQ(k.global_load_inst, 1u);
  EXPECT_EQ(k.global_store_inst, 1u);
  EXPECT_EQ(k.shared_store_inst, 1u);
  EXPECT_EQ(k.shared_load_inst, 1u);
  EXPECT_GE(k.valu_warp_inst, 1u);
  EXPECT_EQ(k.warp_inst_issued,
            k.valu_warp_inst + k.global_load_inst + k.global_store_inst +
                k.shared_load_inst + k.shared_store_inst);
}

// ------------------------------------------------------------ job reuse

TEST_F(ExecTest, ResetCountersGivesFreshProfilingState) {
  auto data = dev().Alloc<uint32_t>(64).value();
  auto run_one = [&]() -> KernelStats {
    auto stats = dev().Launch("touch", {1, 32}, [&](Ctx& c) -> KernelTask {
      auto v = c.Load(data, c.GlobalThreadId());
      c.Store(data, c.GlobalThreadId(), c.Add(v, 1u));
      co_return;
    });
    EXPECT_TRUE(stats.ok());
    return std::move(stats).ValueOr(KernelStats{});
  };

  KernelStats first = run_one();
  ASSERT_GT(dev().elapsed_ms(), 0);
  ASSERT_EQ(dev().kernel_log().size(), 1u);
  std::vector<uint32_t> host(64, 7);
  ASSERT_TRUE(dev().CopyToDevice(data, host.data(), host.size()).ok());
  ASSERT_GT(dev().transfer_ms(), 0);
  uint64_t used_before = dev().memory_used_bytes();

  dev().ResetCounters();
  // Clocks, log, and caches are fresh; allocations survive.
  EXPECT_EQ(dev().elapsed_ms(), 0);
  EXPECT_EQ(dev().transfer_ms(), 0);
  EXPECT_TRUE(dev().kernel_log().empty());
  EXPECT_EQ(dev().memory_used_bytes(), used_before);

  // A second, identical job sees exactly the first job's profile — no
  // cache warmth or clock carry-over from the previous run (the
  // scheduler-reuse contract).
  KernelStats second = run_one();
  ASSERT_EQ(dev().kernel_log().size(), 1u);
  EXPECT_EQ(second.time_ms, first.time_ms);
  EXPECT_EQ(second.counters.l1_hits, first.counters.l1_hits);
  EXPECT_EQ(second.counters.l1_misses, first.counters.l1_misses);
  EXPECT_EQ(second.counters.warp_inst_issued, first.counters.warp_inst_issued);
  EXPECT_EQ(dev().elapsed_ms(), second.time_ms);
}

}  // namespace
}  // namespace adgraph::vgpu
