#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runtime/runtime.h"
#include "util/random.h"
#include "vgpu/arch.h"
#include "vgpu/ctx.h"
#include "vgpu/device.h"
#include "vgpu/kernel.h"

namespace adgraph::vgpu {
namespace {

constexpr uint32_t kEmpty = 0xFFFFFFFFu;
constexpr uint32_t kMult = 2654435761u;

ArchConfig SmallArch() {
  ArchConfig c = A100Config();
  c.name = "TestGPU";
  c.num_sms = 4;
  return c;
}

template <typename T>
std::vector<T> Download(Device* d, DevPtr<T> ptr, uint64_t n) {
  std::vector<T> out(n);
  EXPECT_TRUE(d->CopyToHost(out.data(), ptr, n).ok());
  return out;
}

// Inserts `keys` via the fused op and probes `queries`; returns per-query
// found flags.
std::vector<uint32_t> InsertAndProbe(Device* dev,
                                     const std::vector<uint32_t>& keys,
                                     const std::vector<uint32_t>& queries,
                                     uint32_t capacity) {
  auto dkeys = rt::DeviceBuffer<uint32_t>::FromHost(dev, keys).value();
  auto dqueries = rt::DeviceBuffer<uint32_t>::FromHost(dev, queries).value();
  auto dfound =
      rt::DeviceBuffer<uint32_t>::CreateZeroed(dev, queries.size()).value();
  LaunchDims dims{1, 64, capacity * 4};
  uint64_t nk = keys.size();
  uint64_t nq = queries.size();
  auto kp = dkeys.ptr();
  auto qp = dqueries.ptr();
  auto fp = dfound.ptr();
  auto stats = dev->Launch("fused", dims, [&](Ctx& c) -> KernelTask {
    SmemPtr<uint32_t> table{0};
    c.SharedBlockFill(table, capacity, kEmpty);
    co_await c.Sync();
    auto local = c.BlockThreadId();
    auto stride = c.Splat(c.block_dim());
    auto cursor = local;
    c.While([&](Ctx& c) { return c.Lt(cursor, c.Splat<uint32_t>(nk)); },
            [&](Ctx& c) {
              auto k = c.Load(kp, cursor);
              c.SharedHashInsert(table, capacity, k, kMult, kEmpty);
              c.Assign(&cursor, c.Add(cursor, stride));
            });
    co_await c.Sync();
    c.Assign(&cursor, local);
    c.While([&](Ctx& c) { return c.Lt(cursor, c.Splat<uint32_t>(nq)); },
            [&](Ctx& c) {
              auto q = c.Load(qp, cursor);
              LaneMask found =
                  c.SharedHashProbe(table, capacity, q, kMult, kEmpty);
              c.Store(fp, cursor,
                      c.Select(found, c.Splat<uint32_t>(1),
                               c.Splat<uint32_t>(0)));
              c.Assign(&cursor, c.Add(cursor, stride));
            });
    co_return;
  });
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return dfound.ToHost().value();
}

TEST(FusedHashTest, InsertThenProbeFindsExactlyInsertedKeys) {
  Device dev(SmallArch());
  std::vector<uint32_t> keys{5, 17, 99, 1024, 77777};
  std::vector<uint32_t> queries{5, 6, 17, 18, 99, 100, 1024, 77777, 0};
  auto found = InsertAndProbe(&dev, keys, queries, 64);
  std::set<uint32_t> key_set(keys.begin(), keys.end());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(found[i], key_set.count(queries[i]) ? 1u : 0u)
        << "query " << queries[i];
  }
}

TEST(FusedHashTest, CollidingKeysProbeLinearly) {
  Device dev(SmallArch());
  // Keys engineered to hash to the same slot modulo a tiny capacity.
  const uint32_t capacity = 8;
  std::vector<uint32_t> keys;
  uint32_t base_slot = (3 * kMult) % capacity;
  for (uint32_t k = 3; keys.size() < 5; ++k) {
    if ((k * kMult) % capacity == base_slot) keys.push_back(k);
  }
  auto found = InsertAndProbe(&dev, keys, keys, capacity);
  for (uint32_t f : found) EXPECT_EQ(f, 1u);
}

TEST(FusedHashTest, DuplicateInsertsAreIdempotent) {
  Device dev(SmallArch());
  std::vector<uint32_t> keys{42, 42, 42, 42, 42, 42, 42, 42};
  auto found = InsertAndProbe(&dev, keys, {42, 43}, 16);
  EXPECT_EQ(found[0], 1u);
  EXPECT_EQ(found[1], 0u);
}

TEST(FusedHashTest, LargeRandomSetAgainstStdSet) {
  Device dev(SmallArch());
  Rng rng(31);
  std::vector<uint32_t> keys(400);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.Uniform(1 << 20));
  std::vector<uint32_t> queries(600);
  for (auto& q : queries) q = static_cast<uint32_t>(rng.Uniform(1 << 20));
  std::set<uint32_t> key_set(keys.begin(), keys.end());
  auto found = InsertAndProbe(&dev, keys, queries, 1024);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(found[i], key_set.count(queries[i]) ? 1u : 0u);
  }
}

TEST(FusedHashTest, CountsInstructionClasses) {
  Device dev(SmallArch());
  InsertAndProbe(&dev, {1, 2, 3}, {1, 9}, 32);
  const auto& stats = dev.kernel_log().back();
  EXPECT_GT(stats.counters.shared_store_inst, 0u) << "fill + insert rounds";
  EXPECT_GT(stats.counters.shared_load_inst, 0u) << "probe rounds";
  EXPECT_GT(stats.counters.valu_warp_inst, 0u);
  EXPECT_GT(stats.counters.smem_bytes, 0u);
}

TEST(SharedBlockFillTest, CoversWholeRangeAcrossWarps) {
  Device dev(SmallArch());
  const uint32_t count = 777;  // not a multiple of anything convenient
  auto out = rt::DeviceBuffer<uint32_t>::CreateZeroed(&dev, count).value();
  auto op = out.ptr();
  LaunchDims dims{1, 128, count * 4};
  auto stats = dev.Launch("fillcheck", dims, [&](Ctx& c) -> KernelTask {
    SmemPtr<uint32_t> buf{0};
    c.SharedBlockFill(buf, count, 0xABCDu);
    co_await c.Sync();
    // Copy shared to global for verification (strided).
    auto local = c.BlockThreadId();
    auto stride = c.Splat(c.block_dim());
    auto cursor = local;
    c.While([&](Ctx& c) { return c.Lt(cursor, c.Splat(count)); },
            [&](Ctx& c) {
              c.Store(op, cursor, c.SharedLoad(buf, cursor));
              c.Assign(&cursor, c.Add(cursor, stride));
            });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  for (uint32_t v : Download(&dev, op, count)) EXPECT_EQ(v, 0xABCDu);
}

TEST(WorkReplicationTest, ScalesCountersAndTiming) {
  Device dev(SmallArch());
  auto data = dev.Alloc<uint32_t>(4096).value();
  auto run = [&](uint32_t replication) {
    LaunchDims dims{8, 128};
    dims.work_replication = replication;
    return dev
        .Launch("sampled", dims,
                [&](Ctx& c) -> KernelTask {
                  auto tid = c.GlobalThreadId();
                  c.Load(data, tid);
                  c.Store(data, tid, c.Add(tid, 1u));
                  co_return;
                })
        .value();
  };
  auto base = run(1);
  dev.ClearCaches();
  auto scaled = run(4);
  EXPECT_EQ(scaled.counters.warp_inst_issued,
            4 * base.counters.warp_inst_issued);
  EXPECT_EQ(scaled.counters.global_load_inst,
            4 * base.counters.global_load_inst);
  EXPECT_EQ(scaled.counters.warps_launched, 4 * base.counters.warps_launched);
  EXPECT_GT(scaled.time_ms, base.time_ms);
}

TEST(CriticalPathTest, ImbalancedBlocksRaiseMaxSmInst) {
  Device dev(SmallArch());
  auto data = dev.Alloc<uint32_t>(1 << 16).value();
  // Block 0 does 100x the work of the others.
  auto stats = dev.Launch("imbalanced", {8, 64}, [&](Ctx& c) -> KernelTask {
    uint32_t reps = c.block_id() == 0 ? 200 : 2;
    auto tid = c.GlobalThreadId();
    auto acc = c.Splat<uint32_t>(0);
    for (uint32_t r = 0; r < reps; ++r) {
      c.Assign(&acc, c.Add(acc, tid));
    }
    c.Store(data, tid, acc);
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  // The busiest SM holds far more than the per-SM average.
  double avg = static_cast<double>(stats->counters.warp_inst_issued) /
               dev.arch().num_sms;
  EXPECT_GT(static_cast<double>(stats->max_sm_inst), 2.0 * avg);
}

TEST(ScalarOfTest, ReadsFirstActiveLane) {
  Device dev(SmallArch());
  auto out = dev.Alloc<uint32_t>(2).value();
  auto stats = dev.Launch("scalarof", {1, 32}, [&](Ctx& c) -> KernelTask {
    auto tid = c.GlobalThreadId();
    uint32_t whole = c.ScalarOf(tid);  // lane 0
    uint32_t masked = 0;
    c.If(c.Ge(tid, 5u), [&](Ctx& c) { masked = c.ScalarOf(tid); });
    c.If(c.Eq(c.LaneId(), 0u), [&](Ctx& c) {
      c.Store(out, c.Splat<uint32_t>(0), c.Splat(whole));
      c.Store(out, c.Splat<uint32_t>(1), c.Splat(masked));
    });
    co_return;
  });
  ASSERT_TRUE(stats.ok());
  auto host = Download(&dev, out, 2);
  EXPECT_EQ(host[0], 0u);
  EXPECT_EQ(host[1], 5u) << "first lane satisfying the mask";
}

}  // namespace
}  // namespace adgraph::vgpu
