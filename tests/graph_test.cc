#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <utility>

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/generate.h"
#include "graph/io.h"
#include "graph/stats.h"

namespace adgraph::graph {
namespace {

// ------------------------------------------------------------ CSR build

TEST(CsrTest, FromCooBasic) {
  CooGraph coo;
  coo.num_vertices = 4;
  coo.AddEdge(0, 1);
  coo.AddEdge(0, 2);
  coo.AddEdge(2, 3);
  coo.AddEdge(1, 0);
  auto g = CsrGraph::FromCoo(coo).value();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 0u);
  auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(CsrTest, NeighborsSortedByDefault) {
  CooGraph coo;
  coo.num_vertices = 3;
  coo.AddEdge(0, 2);
  coo.AddEdge(0, 1);
  coo.AddEdge(0, 0);
  auto g = CsrGraph::FromCoo(coo).value();
  auto n = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(CsrTest, RemoveDuplicatesAndSelfLoops) {
  CooGraph coo;
  coo.num_vertices = 3;
  coo.AddEdge(0, 1);
  coo.AddEdge(0, 1);
  coo.AddEdge(1, 1);
  coo.AddEdge(1, 2);
  CsrBuildOptions options;
  options.remove_duplicates = true;
  options.remove_self_loops = true;
  auto g = CsrGraph::FromCoo(coo, options).value();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(CsrTest, MakeUndirectedMirrorsEdges) {
  CooGraph coo;
  coo.num_vertices = 3;
  coo.AddEdge(0, 1);
  coo.AddEdge(1, 2);
  CsrBuildOptions options;
  options.make_undirected = true;
  auto g = CsrGraph::FromCoo(coo, options).value();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(1), 2u);
  auto n1 = g.neighbors(1);
  EXPECT_EQ(n1[0], 0u);
  EXPECT_EQ(n1[1], 2u);
}

TEST(CsrTest, WeightsFollowEdgesThroughSort) {
  CooGraph coo;
  coo.num_vertices = 2;
  coo.AddEdge(0, 1, 2.5);
  coo.AddEdge(0, 0, 1.5);
  auto g = CsrGraph::FromCoo(coo).value();
  ASSERT_TRUE(g.has_weights());
  auto n = g.neighbors(0);
  auto w = g.edge_weights(0);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0], 0u);
  EXPECT_EQ(w[0], 1.5);
  EXPECT_EQ(n[1], 1u);
  EXPECT_EQ(w[1], 2.5);
}

TEST(CsrTest, RejectsOutOfRangeVertices) {
  CooGraph coo;
  coo.num_vertices = 2;
  coo.AddEdge(0, 5);
  EXPECT_FALSE(CsrGraph::FromCoo(coo).ok());
}

TEST(CsrTest, RejectsMismatchedArrays) {
  CooGraph coo;
  coo.num_vertices = 2;
  coo.src = {0};
  coo.dst = {1, 0};
  EXPECT_FALSE(CsrGraph::FromCoo(coo).ok());
  coo.dst = {1};
  coo.weights = {1.0, 2.0};
  EXPECT_FALSE(CsrGraph::FromCoo(coo).ok());
}

TEST(CsrTest, FromArraysValidates) {
  EXPECT_TRUE(CsrGraph::FromArrays(2, {0, 1, 2}, {1, 0}).ok());
  EXPECT_FALSE(CsrGraph::FromArrays(2, {0, 1}, {1, 0}).ok());      // short
  EXPECT_FALSE(CsrGraph::FromArrays(2, {0, 2, 1}, {1, 0}).ok());   // non-monotone
  EXPECT_FALSE(CsrGraph::FromArrays(2, {0, 1, 2}, {1, 9}).ok());   // col range
  EXPECT_TRUE(CsrGraph::FromArrays(2, {0, 1, 1}, {1}).ok());  // empty row ok
  EXPECT_FALSE(CsrGraph::FromArrays(2, {0, 1, 0}, {1}).ok()); // bad endpoint
  EXPECT_FALSE(CsrGraph::FromArrays(2, {0, 1, 2}, {1, 0}, {1.0}).ok());
}

TEST(CsrTest, TransposeReversesEdges) {
  CooGraph coo;
  coo.num_vertices = 3;
  coo.AddEdge(0, 1, 1.0);
  coo.AddEdge(0, 2, 2.0);
  coo.AddEdge(2, 1, 3.0);
  auto g = CsrGraph::FromCoo(coo).value();
  auto t = g.Transpose();
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_EQ(t.degree(1), 2u);
  EXPECT_EQ(t.degree(0), 0u);
  // Weight of (2->1) must follow to (1<-2).
  auto n1 = t.neighbors(1);
  auto w1 = t.edge_weights(1);
  for (size_t i = 0; i < n1.size(); ++i) {
    if (n1[i] == 2) EXPECT_EQ(w1[i], 3.0);
    if (n1[i] == 0) EXPECT_EQ(w1[i], 1.0);
  }
}

TEST(CsrTest, TransposeTwiceIsIdentity) {
  auto coo = GenerateRmat({.scale = 8, .edge_factor = 4, .seed = 5}).value();
  auto g = CsrGraph::FromCoo(coo).value();
  auto tt = g.Transpose().Transpose();
  EXPECT_EQ(tt.row_offsets(), g.row_offsets());
  EXPECT_EQ(tt.col_indices(), g.col_indices());
}

TEST(CsrTest, ToCooRoundTrips) {
  CooGraph coo;
  coo.num_vertices = 3;
  coo.AddEdge(0, 1, 4.0);
  coo.AddEdge(2, 0, 5.0);
  auto g = CsrGraph::FromCoo(coo).value();
  auto back = g.ToCoo();
  auto g2 = CsrGraph::FromCoo(back).value();
  EXPECT_EQ(g2.row_offsets(), g.row_offsets());
  EXPECT_EQ(g2.col_indices(), g.col_indices());
  EXPECT_EQ(g2.weights(), g.weights());
}

TEST(CsrTest, WithUniformWeights) {
  CooGraph coo;
  coo.num_vertices = 2;
  coo.AddEdge(0, 1);
  auto g = CsrGraph::FromCoo(coo).value();
  EXPECT_FALSE(g.has_weights());
  auto w = g.WithUniformWeights(3.0);
  ASSERT_TRUE(w.has_weights());
  EXPECT_EQ(w.weights()[0], 3.0);
}

TEST(CsrTest, DeviceFootprintCountsArrays) {
  CooGraph coo;
  coo.num_vertices = 2;
  coo.AddEdge(0, 1, 1.0);
  auto g = CsrGraph::FromCoo(coo).value();
  EXPECT_EQ(g.DeviceFootprintBytes(),
            3 * sizeof(eid_t) + 1 * sizeof(vid_t) + 1 * sizeof(weight_t));
}

// -------------------------------------------------------------- builder

TEST(BuilderTest, GrowsVertexCount) {
  GraphBuilder b;
  b.AddEdge(0, 5).AddEdge(2, 1);
  EXPECT_EQ(b.num_vertices(), 6u);
  EXPECT_EQ(b.num_edges(), 2u);
  auto g = b.Build().value();
  EXPECT_EQ(g.num_vertices(), 6u);
}

TEST(BuilderTest, MixedWeightBackfill) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2, 9.0);
  b.AddEdge(2, 0);
  auto g = b.Build().value();
  ASSERT_TRUE(g.has_weights());
  EXPECT_EQ(g.edge_weights(0)[0], 1.0);   // backfilled default
  EXPECT_EQ(g.edge_weights(1)[0], 9.0);
  EXPECT_EQ(g.edge_weights(2)[0], 1.0);
}

// ------------------------------------------------------------ generators

TEST(GenerateTest, RmatShapeAndDeterminism) {
  RmatParams params{.scale = 10, .edge_factor = 8, .seed = 42};
  auto a = GenerateRmat(params).value();
  auto b = GenerateRmat(params).value();
  EXPECT_EQ(a.num_vertices, 1024u);
  EXPECT_EQ(a.num_edges(), 8192u);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
}

TEST(GenerateTest, RmatIsSkewed) {
  RmatParams params{.scale = 12, .edge_factor = 16, .seed = 1};
  params.a = 0.57;
  auto coo = GenerateRmat(params).value();
  auto g = CsrGraph::FromCoo(coo).value();
  auto stats = ComputeDegreeStats(g);
  EXPECT_GT(stats.skew(), 10.0) << "R-MAT 0.57 should be heavy-tailed";
}

TEST(GenerateTest, RmatValidatesParams) {
  RmatParams params;
  params.scale = 0;
  EXPECT_FALSE(GenerateRmat(params).ok());
  params.scale = 8;
  params.a = 0.9;  // sum > 1
  EXPECT_FALSE(GenerateRmat(params).ok());
}

TEST(GenerateTest, ErdosRenyiUniformish) {
  auto coo = GenerateErdosRenyi(1000, 10000, 3).value();
  EXPECT_EQ(coo.num_edges(), 10000u);
  auto g = CsrGraph::FromCoo(coo).value();
  auto stats = ComputeDegreeStats(g);
  EXPECT_LT(stats.skew(), 4.0) << "ER should not be heavy-tailed";
}

TEST(GenerateTest, WattsStrogatzDegreeSum) {
  auto coo = GenerateWattsStrogatz(100, 4, 0.1, 7).value();
  // 100 * 4/2 undirected edges, each emitted twice.
  EXPECT_EQ(coo.num_edges(), 400u);
  EXPECT_FALSE(GenerateWattsStrogatz(100, 3, 0.1, 7).ok()) << "odd k";
  EXPECT_FALSE(GenerateWattsStrogatz(100, 4, 1.5, 7).ok()) << "bad beta";
}

TEST(GenerateTest, WattsStrogatzIsDeterministicPerSeed) {
  // Partition tests feed on generated proxies, so generation must be
  // bit-reproducible for a fixed seed and differ across seeds.
  auto a = GenerateWattsStrogatz(500, 6, 0.3, 11).value();
  auto b = GenerateWattsStrogatz(500, 6, 0.3, 11).value();
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  auto c = GenerateWattsStrogatz(500, 6, 0.3, 12).value();
  EXPECT_TRUE(a.src != c.src || a.dst != c.dst);
}

TEST(GenerateTest, WattsStrogatzRewireNeverDuplicatesEdges) {
  // Regression: the rewire loop used to accept targets already adjacent to
  // u (and lattice fallbacks an earlier rewire had landed on), emitting
  // duplicate undirected edges that CSR dedup silently collapsed —
  // skewing the degree distribution the model is supposed to preserve.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (double beta : {0.0, 0.3, 1.0}) {
      auto coo = GenerateWattsStrogatz(200, 8, beta, seed).value();
      std::set<std::pair<vid_t, vid_t>> seen;
      for (size_t e = 0; e < coo.src.size(); ++e) {
        vid_t u = coo.src[e];
        vid_t v = coo.dst[e];
        EXPECT_NE(u, v) << "self loop at seed " << seed;
        EXPECT_TRUE(seen.insert({u, v}).second)
            << "duplicate edge " << u << "->" << v << " at seed " << seed
            << " beta " << beta;
      }
    }
  }
}

TEST(GenerateTest, WattsStrogatzBetaZeroIsTheRingLattice) {
  auto coo = GenerateWattsStrogatz(50, 4, 0.0, 9).value();
  EXPECT_EQ(coo.num_edges(), 200u);
  auto g = CsrGraph::FromCoo(coo).value();
  for (vid_t v = 0; v < 50; ++v) {
    EXPECT_EQ(g.degree(v), 4u) << "lattice vertex " << v;
  }
}

TEST(GenerateTest, BarabasiAlbertGrowsHubs) {
  auto coo = GenerateBarabasiAlbert(500, 3, 11).value();
  auto g = CsrGraph::FromCoo(coo).value();
  auto stats = ComputeDegreeStats(g);
  EXPECT_GT(stats.max_degree, 20u);
  EXPECT_FALSE(GenerateBarabasiAlbert(3, 3, 1).ok());
}

TEST(GenerateTest, AttachRandomWeightsInRange) {
  auto coo = GenerateErdosRenyi(100, 500, 3).value();
  AttachRandomWeights(&coo, 2.0, 5.0, 99);
  ASSERT_EQ(coo.weights.size(), 500u);
  for (double w : coo.weights) {
    EXPECT_GE(w, 2.0);
    EXPECT_LT(w, 5.0);
  }
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, ComputesDegreeSummary) {
  GraphBuilder b(5);
  b.AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).AddEdge(1, 2);
  auto g = b.Build().value();
  auto stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.num_vertices, 5u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_EQ(stats.isolated_vertices, 3u);  // 2,3,4 have out-degree 0
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.8);
}


TEST(StatsTest, DegreeDistributionPercentiles) {
  GraphBuilder b(10);
  // Degrees: 0,0,0,0,0,1,2,3,4,10 (vertex 9 has 10 out-edges).
  b.AddEdge(5, 0);
  for (vid_t i = 0; i < 2; ++i) b.AddEdge(6, i);
  for (vid_t i = 0; i < 3; ++i) b.AddEdge(7, i);
  for (vid_t i = 0; i < 4; ++i) b.AddEdge(8, i);
  for (vid_t i = 0; i < 10 - 1; ++i) b.AddEdge(9, i);
  b.AddEdge(9, 9);
  auto g = b.Build().value();
  auto dist = ComputeDegreeDistribution(g);
  EXPECT_EQ(dist.p0, 0u);
  EXPECT_EQ(dist.p100, 10u);
  EXPECT_LE(dist.p50, dist.p90);
  EXPECT_LE(dist.p90, dist.p99);
  // Histogram buckets sum to the vertex count.
  uint64_t total = 0;
  for (uint64_t c : dist.log2_bins) total += c;
  EXPECT_EQ(total, 10u);
}

TEST(StatsTest, PowerLawAlphaDetectsSkew) {
  auto skewed = GenerateRmat({.scale = 13, .edge_factor = 16, .seed = 44});
  auto g = CsrGraph::FromCoo(skewed.value()).value();
  auto dist = ComputeDegreeDistribution(g);
  EXPECT_GT(dist.powerlaw_alpha, 1.0);
  EXPECT_LT(dist.powerlaw_alpha, 6.0);
  // Uniform ER has a much thinner tail -> larger alpha estimate.
  auto er = GenerateErdosRenyi(1 << 13, 16u << 13, 45).value();
  auto ger = CsrGraph::FromCoo(er).value();
  auto dist_er = ComputeDegreeDistribution(ger);
  EXPECT_GT(dist_er.powerlaw_alpha, dist.powerlaw_alpha);
}

TEST(StatsTest, EmptyGraphDistribution) {
  CooGraph coo;
  coo.num_vertices = 0;
  auto g = CsrGraph::FromCoo(coo).value();
  auto dist = ComputeDegreeDistribution(g);
  EXPECT_EQ(dist.p100, 0u);
  EXPECT_TRUE(dist.log2_bins.empty());
}

// ------------------------------------------------------------------- IO

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(IoTest, EdgeListRoundTrip) {
  CooGraph coo;
  coo.num_vertices = 4;
  coo.AddEdge(0, 1, 1.5);
  coo.AddEdge(3, 2, 2.5);
  std::string path = TempPath("adgraph_el.txt");
  ASSERT_TRUE(WriteEdgeList(coo, path).ok());
  auto back = ReadEdgeList(path).value();
  EXPECT_EQ(back.num_vertices, 4u);
  EXPECT_EQ(back.src, coo.src);
  EXPECT_EQ(back.dst, coo.dst);
  EXPECT_EQ(back.weights, coo.weights);
  std::remove(path.c_str());
}

TEST(IoTest, EdgeListSkipsComments) {
  std::string path = TempPath("adgraph_el2.txt");
  {
    std::ofstream out(path);
    out << "# comment\n% other comment\n1 2\n\n0 1 3.5\n";
  }
  auto coo = ReadEdgeList(path).value();
  EXPECT_EQ(coo.num_edges(), 2u);
  EXPECT_EQ(coo.num_vertices, 3u);
  ASSERT_TRUE(coo.has_weights());
  EXPECT_EQ(coo.weights[0], 1.0) << "unweighted line backfilled";
  EXPECT_EQ(coo.weights[1], 3.5);
  std::remove(path.c_str());
}

TEST(IoTest, EdgeListMissingFileFails) {
  EXPECT_FALSE(ReadEdgeList("/nonexistent/path/graph.txt").ok());
}

TEST(IoTest, MatrixMarketRoundTrip) {
  CooGraph coo;
  coo.num_vertices = 3;
  coo.AddEdge(0, 1, 0.5);
  coo.AddEdge(2, 2, 1.5);
  std::string path = TempPath("adgraph_mm.mtx");
  ASSERT_TRUE(WriteMatrixMarket(coo, path).ok());
  auto back = ReadMatrixMarket(path).value();
  EXPECT_EQ(back.num_vertices, 3u);
  EXPECT_EQ(back.src, coo.src);
  EXPECT_EQ(back.dst, coo.dst);
  EXPECT_EQ(back.weights, coo.weights);
  std::remove(path.c_str());
}

TEST(IoTest, MatrixMarketSymmetricMirrors) {
  std::string path = TempPath("adgraph_mm2.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "% a comment\n"
        << "3 3 2\n"
        << "2 1\n"
        << "3 3\n";
  }
  auto coo = ReadMatrixMarket(path).value();
  // (2,1) mirrored to (1,2); diagonal (3,3) not mirrored.
  EXPECT_EQ(coo.num_edges(), 3u);
  EXPECT_FALSE(coo.has_weights());
  std::remove(path.c_str());
}

TEST(IoTest, MatrixMarketRejectsGarbage) {
  std::string path = TempPath("adgraph_mm3.mtx");
  {
    std::ofstream out(path);
    out << "not a matrix market file\n";
  }
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
  std::remove(path.c_str());
}

// Regression: corrupt input used to be silently mis-read — vertex ids
// beyond the 32-bit vid_t range were truncated by the cast and trailing
// junk on edge lines was dropped.  All of these must now fail with
// kInvalidArgument.

Result<CooGraph> ReadEdgeListText(const char* name, const std::string& text) {
  std::string path = TempPath(name);
  {
    std::ofstream out(path);
    out << text;
  }
  auto result = ReadEdgeList(path);
  std::remove(path.c_str());
  return result;
}

Result<CooGraph> ReadMtxText(const char* name, const std::string& text) {
  std::string path = TempPath(name);
  {
    std::ofstream out(path);
    out << text;
  }
  auto result = ReadMatrixMarket(path);
  std::remove(path.c_str());
  return result;
}

TEST(IoTest, EdgeListRejectsMalformedLine) {
  auto result = ReadEdgeListText("adgraph_bad1.txt", "0 1\nfoo bar\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status().ToString();
}

TEST(IoTest, EdgeListRejectsTrailingJunk) {
  auto result = ReadEdgeListText("adgraph_bad2.txt", "0 1 junk\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // Junk *after* a valid weight is rejected too.
  auto result2 = ReadEdgeListText("adgraph_bad3.txt", "0 1 2.5 extra\n");
  ASSERT_FALSE(result2.ok());
  EXPECT_TRUE(result2.status().IsInvalidArgument());
}

TEST(IoTest, EdgeListRejectsOutOfRangeVertexId) {
  // 2^33: far beyond vid_t; the old loader wrapped it to a small id.
  auto result = ReadEdgeListText("adgraph_bad4.txt", "0 8589934592\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(IoTest, MatrixMarketRejectsMalformedSizeLine) {
  auto result = ReadMtxText("adgraph_bad5.mtx",
                            "%%MatrixMarket matrix coordinate pattern "
                            "general\n3 three 2\n1 2\n2 3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(IoTest, MatrixMarketRejectsTruncatedEntries) {
  auto result = ReadMtxText("adgraph_bad6.mtx",
                            "%%MatrixMarket matrix coordinate pattern "
                            "general\n3 3 2\n1 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(IoTest, MatrixMarketRejectsOutOfBoundsIndex) {
  auto result = ReadMtxText("adgraph_bad7.mtx",
                            "%%MatrixMarket matrix coordinate pattern "
                            "general\n3 3 1\n4 1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  auto zero = ReadMtxText("adgraph_bad8.mtx",
                          "%%MatrixMarket matrix coordinate pattern "
                          "general\n3 3 1\n0 1\n");
  ASSERT_FALSE(zero.ok());
  EXPECT_TRUE(zero.status().IsInvalidArgument());
}

TEST(IoTest, MatrixMarketRejectsOversizedDimensions) {
  auto result = ReadMtxText("adgraph_bad9.mtx",
                            "%%MatrixMarket matrix coordinate pattern "
                            "general\n8589934592 2 1\n1 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(IoTest, BinaryCsrRoundTripsExactly) {
  auto coo = GenerateRmat({.scale = 9, .edge_factor = 6, .seed = 17}).value();
  AttachRandomWeights(&coo, 0.0, 1.0, 18);
  auto g = CsrGraph::FromCoo(coo).value();
  std::string path = TempPath("adgraph_bin.csr");
  ASSERT_TRUE(WriteBinaryCsr(g, path).ok());
  auto back = ReadBinaryCsr(path).value();
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.row_offsets(), g.row_offsets());
  EXPECT_EQ(back.col_indices(), g.col_indices());
  EXPECT_EQ(back.weights(), g.weights());
  std::remove(path.c_str());
}

TEST(IoTest, BinaryCsrRejectsWrongMagic) {
  std::string path = TempPath("adgraph_bad.csr");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage bytes here";
  }
  EXPECT_FALSE(ReadBinaryCsr(path).ok());
  std::remove(path.c_str());
}

// Synthetic overflow: a well-formed header whose section counts claim
// orders of magnitude more data than the file holds.  Both loaders must
// bounds-check the declared counts against the file size *before* sizing
// any allocation — the old path handed the count straight to resize() and
// died attempting a multi-terabyte vector.

void WriteBinaryCsrHeader(std::ofstream& out, vid_t num_vertices) {
  const uint64_t magic = 0x4852474441ull;  // "ADGRH"
  const uint32_t version = 2;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&num_vertices),
            sizeof(num_vertices));
}

TEST(IoTest, BinaryCsrRejectsHugeDeclaredCountsWithoutAllocating) {
  std::string path = TempPath("adgraph_huge.csr");
  {
    std::ofstream out(path, std::ios::binary);
    WriteBinaryCsrHeader(out, 0xFFFFFFFFu);
    // row_offsets section claiming 2^61 entries (16 EiB) with no payload.
    const uint64_t huge_count = 1ull << 61;
    out.write(reinterpret_cast<const char*>(&huge_count),
              sizeof(huge_count));
  }
  auto read = ReadBinaryCsr(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError)
      << read.status().ToString();
  auto mapped = MappedCsr::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIOError)
      << mapped.status().ToString();
  std::remove(path.c_str());
}

TEST(IoTest, BinaryCsrRejectsOverflowingEdgeCount) {
  // Structurally complete tiny file whose final row offset claims 2^40
  // edges: the col_indices section cannot back that claim, and neither
  // loader may size a buffer from it.
  std::string path = TempPath("adgraph_overflow.csr");
  {
    std::ofstream out(path, std::ios::binary);
    WriteBinaryCsrHeader(out, 1);
    const eid_t offsets[2] = {0, 1ull << 40};
    const uint64_t row_count = 2;
    const uint64_t empty = 0;
    out.write(reinterpret_cast<const char*>(&row_count), sizeof(row_count));
    out.write(reinterpret_cast<const char*>(offsets), sizeof(offsets));
    out.write(reinterpret_cast<const char*>(&empty), sizeof(empty));  // w
    out.write(reinterpret_cast<const char*>(&empty), sizeof(empty));  // col
  }
  EXPECT_FALSE(ReadBinaryCsr(path).ok());
  auto mapped = MappedCsr::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIOError)
      << mapped.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adgraph::graph
